//! Traditional buffer management: least-recently-used replacement.
//!
//! This is the baseline every figure of the paper compares against. The
//! implementation keeps an explicit recency order with O(1) amortized
//! updates (a monotonically increasing access stamp per page plus a queue
//! with lazy deletion), and ignores all scan-level information for its
//! *eviction* decisions.
//!
//! For *prefetching* LRU implements classic sequential readahead: it
//! remembers each registered scan's page plan and, when asked for
//! [`prefetch_hints`](ReplacementPolicy::prefetch_hints), proposes the next
//! non-resident pages directly ahead of each scan's furthest access — the
//! traditional counterpart to PBM's prediction-ranked prefetching.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use scanshare_common::{PageId, ScanId, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

use crate::policy::{ReplacementPolicy, ScanInfo};

/// Sequential-readahead state for one registered scan.
#[derive(Debug)]
struct ScanReadahead {
    /// Distinct pages in first-consumption order (the interleaved plan order
    /// with duplicates removed).
    pages: Vec<PageId>,
    /// Position of each page in `pages`.
    index: HashMap<PageId, usize>,
    /// One past the furthest plan position the scan has accessed.
    cursor: usize,
}

/// Least-recently-used replacement policy.
#[derive(Debug, Default)]
pub struct LruPolicy {
    /// Current stamp of each resident page.
    resident: HashMap<PageId, u64>,
    /// Recency queue, oldest first; entries whose stamp is stale are skipped.
    queue: VecDeque<(PageId, u64)>,
    next_stamp: u64,
    /// Readahead cursors, keyed by scan id (ordered for determinism).
    scans: BTreeMap<ScanId, ScanReadahead>,
}

impl LruPolicy {
    /// Creates an LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, page: PageId) {
        if !self.resident.contains_key(&page) {
            return;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.resident.insert(page, stamp);
        self.queue.push_back((page, stamp));
        self.maybe_compact();
    }

    fn maybe_compact(&mut self) {
        // Keep the queue from growing unboundedly due to lazy deletion.
        if self.queue.len() > 4 * self.resident.len().max(16) {
            let resident = &self.resident;
            self.queue.retain(|(p, s)| resident.get(p) == Some(s));
        }
    }

    /// Number of resident pages the policy tracks.
    pub fn tracked_pages(&self) -> usize {
        self.resident.len()
    }

    /// The resident pages ordered from least to most recently used.
    /// (Primarily for tests and diagnostics; O(n log n).)
    pub fn recency_order(&self) -> Vec<PageId> {
        let mut pages: Vec<(u64, PageId)> = self.resident.iter().map(|(&p, &s)| (s, p)).collect();
        pages.sort_unstable();
        pages.into_iter().map(|(_, p)| p).collect()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn register_scan(&mut self, info: &ScanInfo, plan: &ScanPagePlan, _now: VirtualInstant) {
        // Remember the plan for sequential readahead (eviction stays
        // oblivious to scans). Duplicates keep their first consumption slot.
        let mut pages = Vec::with_capacity(plan.pages.len());
        let mut index = HashMap::with_capacity(plan.pages.len());
        for desc in plan.interleaved() {
            if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(desc.page) {
                slot.insert(pages.len());
                pages.push(desc.page);
            }
        }
        self.scans.insert(
            info.id,
            ScanReadahead {
                pages,
                index,
                cursor: 0,
            },
        );
    }

    fn report_scan_position(&mut self, _scan: ScanId, _tuples: u64, _now: VirtualInstant) {}

    fn unregister_scan(&mut self, scan: ScanId, _now: VirtualInstant) {
        self.scans.remove(&scan);
    }

    fn on_access(&mut self, page: PageId, scan: Option<ScanId>, _now: VirtualInstant) {
        self.touch(page);
        // Advance the owning scan's readahead cursor past the accessed page.
        // Driving the cursor off the access stream (rather than off progress
        // reports) keeps readahead in lockstep with the actual reference
        // string, however often the scan reports.
        if let Some(ra) = scan.and_then(|s| self.scans.get_mut(&s)) {
            if let Some(&idx) = ra.index.get(&page) {
                ra.cursor = ra.cursor.max(idx + 1);
            }
        }
    }

    fn on_admit(&mut self, page: PageId, _now: VirtualInstant) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.resident.insert(page, stamp);
        self.queue.push_back((page, stamp));
        self.maybe_compact();
    }

    fn on_evict(&mut self, page: PageId) {
        self.resident.remove(&page);
    }

    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        _now: VirtualInstant,
    ) -> Vec<PageId> {
        let mut victims = Vec::with_capacity(count);
        let mut skipped = Vec::new();
        while victims.len() < count {
            let Some((page, stamp)) = self.queue.pop_front() else {
                break;
            };
            if self.resident.get(&page) != Some(&stamp) {
                continue; // stale entry
            }
            if exclude.contains(&page) {
                skipped.push((page, stamp));
                continue;
            }
            victims.push(page);
        }
        // Entries we skipped (pinned pages) keep their recency position at
        // the front of the queue.
        for entry in skipped.into_iter().rev() {
            self.queue.push_front(entry);
        }
        victims
    }

    /// Sequential readahead: the next non-resident pages directly ahead of
    /// each registered scan's furthest access, scans visited in id order.
    fn prefetch_hints(&mut self, _now: VirtualInstant, budget: usize) -> Vec<PageId> {
        let mut hints = Vec::with_capacity(budget);
        let mut seen: HashSet<PageId> = HashSet::new();
        let resident = &self.resident;
        for ra in self.scans.values_mut() {
            // Fast-forward past resident pages at the cursor: on a warm pool
            // this makes the steady state O(1) instead of re-walking the
            // whole remaining plan on every call. Skipped pages that later
            // get evicted are simply served by demand misses.
            while ra.cursor < ra.pages.len() && resident.contains_key(&ra.pages[ra.cursor]) {
                ra.cursor += 1;
            }
            for &page in &ra.pages[ra.cursor..] {
                if hints.len() >= budget {
                    return hints;
                }
                if !resident.contains_key(&page) && seen.insert(page) {
                    hints.push(page);
                }
            }
        }
        hints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = LruPolicy::new();
        for i in 0..4 {
            lru.on_admit(p(i), now());
        }
        lru.on_access(p(0), None, now()); // 0 becomes most recent
        let victims = lru.choose_victims(2, &HashSet::new(), now());
        assert_eq!(victims, vec![p(1), p(2)]);
        lru.on_evict(p(1));
        lru.on_evict(p(2));
        assert_eq!(lru.recency_order(), vec![p(3), p(0)]);
    }

    #[test]
    fn excluded_pages_are_skipped_but_keep_their_position() {
        let mut lru = LruPolicy::new();
        for i in 0..3 {
            lru.on_admit(p(i), now());
        }
        let mut exclude = HashSet::new();
        exclude.insert(p(0));
        assert_eq!(lru.choose_victims(1, &exclude, now()), vec![p(1)]);
        lru.on_evict(p(1));
        // Page 0 is still the oldest once unpinned.
        assert_eq!(lru.choose_victims(1, &HashSet::new(), now()), vec![p(0)]);
    }

    #[test]
    fn accessing_unknown_pages_is_a_no_op() {
        let mut lru = LruPolicy::new();
        lru.on_access(p(42), None, now());
        assert_eq!(lru.tracked_pages(), 0);
        assert!(lru.choose_victims(1, &HashSet::new(), now()).is_empty());
    }

    #[test]
    fn eviction_removes_tracking() {
        let mut lru = LruPolicy::new();
        lru.on_admit(p(1), now());
        lru.on_evict(p(1));
        assert_eq!(lru.tracked_pages(), 0);
        assert!(lru.choose_victims(4, &HashSet::new(), now()).is_empty());
    }

    #[test]
    fn repeated_touches_do_not_leak_queue_entries() {
        let mut lru = LruPolicy::new();
        for i in 0..8 {
            lru.on_admit(p(i), now());
        }
        for _ in 0..10_000 {
            lru.on_access(p(3), None, now());
        }
        assert!(lru.queue.len() <= 4 * lru.resident.len().max(16) + 8);
        // Behaviour is still correct: 3 is the most recent.
        let order = lru.recency_order();
        assert_eq!(*order.last().unwrap(), p(3));
    }

    #[test]
    fn scan_callbacks_are_ignored_gracefully() {
        let mut lru = LruPolicy::new();
        let info = ScanInfo {
            id: ScanId::new(1),
            total_tuples: 10,
            distinct_pages: 2,
        };
        let plan = ScanPagePlan {
            table: scanshare_common::TableId::new(0),
            total_tuples: 10,
            pages: vec![],
        };
        lru.register_scan(&info, &plan, now());
        lru.report_scan_position(ScanId::new(1), 5, now());
        lru.unregister_scan(ScanId::new(1), now());
        assert_eq!(lru.name(), "lru");
    }

    fn plan_over(pages: &[u64], tuples_per_page: u64) -> ScanPagePlan {
        use scanshare_common::{ColumnId, TupleRange};
        use scanshare_storage::layout::PageDescriptor;
        let descs = pages
            .iter()
            .enumerate()
            .map(|(i, &page)| PageDescriptor {
                page: p(page),
                column: ColumnId::new(0),
                column_index: 0,
                sid_range: TupleRange::new(
                    i as u64 * tuples_per_page,
                    (i as u64 + 1) * tuples_per_page,
                ),
                tuples_behind: i as u64 * tuples_per_page,
                tuple_count: tuples_per_page,
            })
            .collect();
        ScanPagePlan {
            table: scanshare_common::TableId::new(0),
            total_tuples: pages.len() as u64 * tuples_per_page,
            pages: descs,
        }
    }

    fn register(lru: &mut LruPolicy, id: u64, plan: &ScanPagePlan) -> ScanId {
        let sid = ScanId::new(id);
        let info = ScanInfo {
            id: sid,
            total_tuples: plan.total_tuples,
            distinct_pages: plan.distinct_pages(),
        };
        lru.register_scan(&info, plan, now());
        sid
    }

    #[test]
    fn readahead_follows_the_scan_cursor() {
        let mut lru = LruPolicy::new();
        let scan = register(&mut lru, 1, &plan_over(&[10, 11, 12, 13, 14], 100));
        // Cold scan: the hints are the head of the plan.
        assert_eq!(lru.prefetch_hints(now(), 2), vec![p(10), p(11)]);
        // Accessing a page moves the cursor past it.
        lru.on_admit(p(10), now());
        lru.on_access(p(10), Some(scan), now());
        lru.on_admit(p(11), now());
        lru.on_access(p(11), Some(scan), now());
        assert_eq!(lru.prefetch_hints(now(), 2), vec![p(12), p(13)]);
        // Resident pages ahead of the cursor are skipped.
        lru.on_admit(p(12), now());
        assert_eq!(lru.prefetch_hints(now(), 2), vec![p(13), p(14)]);
        // The budget truncates; unregistering clears the readahead state.
        assert_eq!(lru.prefetch_hints(now(), 1), vec![p(13)]);
        lru.unregister_scan(scan, now());
        assert!(lru.prefetch_hints(now(), 4).is_empty());
    }

    #[test]
    fn readahead_merges_multiple_scans_without_duplicates() {
        let mut lru = LruPolicy::new();
        register(&mut lru, 1, &plan_over(&[1, 2, 3], 100));
        register(&mut lru, 2, &plan_over(&[2, 3, 4], 100));
        // Scans are visited in id order and shared pages appear once.
        assert_eq!(lru.prefetch_hints(now(), 10), vec![p(1), p(2), p(3), p(4)]);
    }
}
