//! PBM/LRU: frequency-based estimates for pages no active scan wants.
//!
//! Basic PBM treats every page that is not requested by a registered scan as
//! having the lowest priority, which penalizes small, frequently re-read
//! dimension tables (Section 3, "PBM/LRU"). The paper sketches a refinement:
//! estimate the next consumption of such pages from their *access history*
//! (e.g. the average distance between their last four uses) and age that
//! estimate as time passes, evicting from the far end of both timelines.
//!
//! [`PbmLruPolicy`] implements that refinement as a composition over
//! [`PbmPolicy`]: the scan-registered side is untouched, while pages without
//! an interested scan are kept in a history structure ordered by their
//! estimated next use (last access + average historical gap). Eviction takes
//! the history page with the furthest estimated next use first and only then
//! falls back to PBM's own victim selection. Compared to the paper's sketch
//! this uses an ordered map rather than a second set of counter-rotating
//! buckets, trading O(1) for O(log n) in exchange for a much smaller
//! implementation — the *policy decisions* are the same.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use scanshare_common::{PageId, ScanId, VirtualDuration, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

use crate::pbm::{PbmConfig, PbmPolicy};
use crate::policy::{ReplacementPolicy, ScanInfo};

/// Configuration of the PBM/LRU extension.
#[derive(Debug, Clone, PartialEq)]
pub struct PbmLruConfig {
    /// Configuration of the underlying PBM policy.
    pub pbm: PbmConfig,
    /// How many past access timestamps are kept per page (the paper suggests
    /// the last four uses).
    pub history_window: usize,
    /// Estimate used for a page seen only once (it has no gap history yet).
    pub default_reuse_interval: VirtualDuration,
}

impl Default for PbmLruConfig {
    fn default() -> Self {
        Self {
            pbm: PbmConfig::default(),
            history_window: 4,
            default_reuse_interval: VirtualDuration::from_secs(10),
        }
    }
}

#[derive(Debug, Default)]
struct PageHistory {
    /// Recent access times, newest last.
    accesses: VecDeque<u64>,
    /// Key currently stored in the order structure, if the page is resident
    /// and unrequested.
    order_key: Option<(u64, PageId)>,
}

/// The PBM/LRU replacement policy.
#[derive(Debug)]
pub struct PbmLruPolicy {
    config: PbmLruConfig,
    pbm: PbmPolicy,
    history: HashMap<PageId, PageHistory>,
    /// Resident, unrequested pages ordered by estimated next use
    /// (largest = evict first).
    order: BTreeSet<(u64, PageId)>,
    resident: HashSet<PageId>,
}

impl Default for PbmLruPolicy {
    fn default() -> Self {
        Self::new(PbmLruConfig::default())
    }
}

impl PbmLruPolicy {
    /// Creates a PBM/LRU policy.
    pub fn new(config: PbmLruConfig) -> Self {
        Self {
            pbm: PbmPolicy::new(config.pbm.clone()),
            config,
            history: HashMap::new(),
            order: BTreeSet::new(),
            resident: HashSet::new(),
        }
    }

    /// Number of resident pages currently tracked on the history side.
    pub fn history_tracked(&self) -> usize {
        self.order.len()
    }

    /// The estimated next use of a page based on its access history: last
    /// access plus the average gap between its recent accesses.
    pub fn estimated_next_use(&self, page: PageId) -> Option<VirtualInstant> {
        let history = self.history.get(&page)?;
        let last = *history.accesses.back()?;
        let gap = if history.accesses.len() >= 2 {
            let first = *history.accesses.front().expect("non-empty");
            (last - first) / (history.accesses.len() as u64 - 1)
        } else {
            self.config.default_reuse_interval.as_nanos()
        };
        Some(VirtualInstant::from_nanos(last + gap.max(1)))
    }

    fn record_access(&mut self, page: PageId, now: VirtualInstant) {
        let history = self.history.entry(page).or_default();
        history.accesses.push_back(now.as_nanos());
        while history.accesses.len() > self.config.history_window {
            history.accesses.pop_front();
        }
    }

    /// Places (or removes) the page on the history side depending on whether
    /// any registered scan still wants it.
    fn reclassify(&mut self, page: PageId) {
        // Remove any stale entry first.
        if let Some(history) = self.history.get_mut(&page) {
            if let Some(key) = history.order_key.take() {
                self.order.remove(&key);
            }
        }
        if !self.resident.contains(&page) {
            return;
        }
        if self.pbm.next_consumption(page).is_some() {
            return; // the scan-registered side owns it
        }
        let Some(estimate) = self.estimated_next_use(page) else {
            return;
        };
        let key = (estimate.as_nanos(), page);
        self.order.insert(key);
        self.history.entry(page).or_default().order_key = Some(key);
    }
}

impl ReplacementPolicy for PbmLruPolicy {
    fn name(&self) -> &'static str {
        "pbm-lru"
    }

    fn register_scan(&mut self, info: &ScanInfo, plan: &ScanPagePlan, now: VirtualInstant) {
        self.pbm.register_scan(info, plan, now);
        // Pages the new scan wants leave the history side.
        for desc in &plan.pages {
            self.reclassify(desc.page);
        }
    }

    fn report_scan_position(&mut self, scan: ScanId, tuples_consumed: u64, now: VirtualInstant) {
        self.pbm.report_scan_position(scan, tuples_consumed, now);
    }

    fn unregister_scan(&mut self, scan: ScanId, now: VirtualInstant) {
        self.pbm.unregister_scan(scan, now);
        // Pages may have become unrequested; reclassify the resident ones.
        let resident: Vec<PageId> = self.resident.iter().copied().collect();
        for page in resident {
            self.reclassify(page);
        }
    }

    fn on_access(&mut self, page: PageId, scan: Option<ScanId>, now: VirtualInstant) {
        self.pbm.on_access(page, scan, now);
        self.record_access(page, now);
        self.reclassify(page);
    }

    fn on_admit(&mut self, page: PageId, now: VirtualInstant) {
        self.pbm.on_admit(page, now);
        self.resident.insert(page);
        self.record_access(page, now);
        self.reclassify(page);
    }

    fn on_evict(&mut self, page: PageId) {
        self.pbm.on_evict(page);
        self.resident.remove(&page);
        if let Some(history) = self.history.get_mut(&page) {
            if let Some(key) = history.order_key.take() {
                self.order.remove(&key);
            }
            // Keep the access history itself: if the page comes back we still
            // know its reuse interval (that is the whole point of PBM/LRU).
        }
    }

    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        now: VirtualInstant,
    ) -> Vec<PageId> {
        let mut victims = Vec::with_capacity(count);
        // 1. Unrequested pages with the furthest estimated next use.
        for &(_, page) in self.order.iter().rev() {
            if victims.len() >= count {
                break;
            }
            if !exclude.contains(&page) {
                victims.push(page);
            }
        }
        // 2. Whatever the scan-registered side would evict, skipping what we
        //    already picked.
        if victims.len() < count {
            let mut extended = exclude.clone();
            extended.extend(victims.iter().copied());
            victims.extend(
                self.pbm
                    .choose_victims(count - victims.len(), &extended, now),
            );
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{ColumnId, TableId, TupleRange};
    use scanshare_storage::layout::PageDescriptor;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn at(ms: u64) -> VirtualInstant {
        VirtualInstant::from_nanos(ms * 1_000_000)
    }

    fn plan(pages: &[u64], tuples_per_page: u64) -> ScanPagePlan {
        ScanPagePlan {
            table: TableId::new(0),
            total_tuples: pages.len() as u64 * tuples_per_page,
            pages: pages
                .iter()
                .enumerate()
                .map(|(i, &page)| PageDescriptor {
                    page: p(page),
                    column: ColumnId::new(0),
                    column_index: 0,
                    sid_range: TupleRange::new(
                        i as u64 * tuples_per_page,
                        (i as u64 + 1) * tuples_per_page,
                    ),
                    tuples_behind: i as u64 * tuples_per_page,
                    tuple_count: tuples_per_page,
                })
                .collect(),
        }
    }

    fn register(
        policy: &mut PbmLruPolicy,
        id: u64,
        plan: &ScanPagePlan,
        now: VirtualInstant,
    ) -> ScanId {
        let sid = ScanId::new(id);
        let info = ScanInfo {
            id: sid,
            total_tuples: plan.total_tuples,
            distinct_pages: plan.distinct_pages(),
        };
        policy.register_scan(&info, plan, now);
        sid
    }

    #[test]
    fn frequently_reused_pages_outlive_cold_ones() {
        let mut policy = PbmLruPolicy::default();
        // Three unrequested pages: 10 is touched often (hot dimension table),
        // 11 and 12 are touched once.
        for page in [10, 11, 12] {
            policy.on_admit(p(page), at(0));
        }
        for t in 1..=4 {
            policy.on_access(p(10), None, at(t * 10));
        }
        assert_eq!(policy.history_tracked(), 3);
        let victims = policy.choose_victims(2, &HashSet::new(), at(50));
        assert!(
            !victims.contains(&p(10)),
            "the frequently reused page survives: {victims:?}"
        );
        assert_eq!(victims.len(), 2);
    }

    #[test]
    fn estimated_next_use_follows_the_observed_period() {
        let mut policy = PbmLruPolicy::default();
        policy.on_admit(p(1), at(0));
        policy.on_access(p(1), None, at(100));
        policy.on_access(p(1), None, at(200));
        policy.on_access(p(1), None, at(300));
        let estimate = policy.estimated_next_use(p(1)).unwrap();
        // Average gap is 100ms, last access at 300ms.
        assert_eq!(estimate, at(400));
        // A page seen once uses the default reuse interval.
        policy.on_admit(p(2), at(300));
        let cold = policy.estimated_next_use(p(2)).unwrap();
        assert!(cold > at(300));
        assert_eq!(policy.estimated_next_use(p(99)), None);
    }

    #[test]
    fn scan_registered_pages_stay_on_the_pbm_side() {
        let mut policy = PbmLruPolicy::default();
        let pl = plan(&[1, 2], 100);
        let scan = register(&mut policy, 1, &pl, at(0));
        policy.on_admit(p(1), at(0));
        policy.on_admit(p(2), at(0));
        policy.on_admit(p(50), at(0)); // unrequested
        assert_eq!(
            policy.history_tracked(),
            1,
            "only the unrequested page is history-tracked"
        );
        // Eviction prefers the unrequested page even though it was admitted
        // at the same time.
        let victims = policy.choose_victims(1, &HashSet::new(), at(1));
        assert_eq!(victims, vec![p(50)]);
        // Once the scan finishes, its pages move to the history side.
        policy.unregister_scan(scan, at(2));
        assert_eq!(policy.history_tracked(), 3);
    }

    #[test]
    fn eviction_falls_back_to_pbm_for_requested_pages() {
        // A slow default scan speed (1000 tuples/s) spreads the pages of the
        // plan over distinct buckets so the furthest-needed page is distinct.
        let mut policy = PbmLruPolicy::new(PbmLruConfig {
            pbm: PbmConfig {
                default_scan_speed: 1000.0,
                ..PbmConfig::default()
            },
            ..PbmLruConfig::default()
        });
        let pl = plan(&[1, 2, 3], 100);
        register(&mut policy, 1, &pl, at(0));
        for page in [1, 2, 3] {
            policy.on_admit(p(page), at(0));
        }
        // No unrequested pages exist; victims must come from the PBM side,
        // furthest-needed first.
        let victims = policy.choose_victims(2, &HashSet::new(), at(0));
        assert_eq!(victims.len(), 2);
        assert!(victims.contains(&p(3)));
        assert!(!victims.contains(&p(1)));
    }

    #[test]
    fn excluded_pages_are_skipped_and_history_survives_eviction() {
        let mut policy = PbmLruPolicy::default();
        policy.on_admit(p(7), at(0));
        policy.on_access(p(7), None, at(10));
        let mut exclude = HashSet::new();
        exclude.insert(p(7));
        assert!(policy.choose_victims(1, &exclude, at(20)).is_empty());
        policy.on_evict(p(7));
        assert_eq!(policy.history_tracked(), 0);
        // Reuse history survives the eviction, so a re-admitted page keeps
        // its estimated period.
        policy.on_admit(p(7), at(30));
        let estimate = policy.estimated_next_use(p(7)).unwrap();
        assert!(estimate > at(30));
    }
}
