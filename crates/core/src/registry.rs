//! A by-name registry of replacement policies.
//!
//! The engine used to hard-code the `PolicyKind -> ReplacementPolicy` match;
//! the registry turns that into data so that downstream code can plug in a
//! custom [`ReplacementPolicy`] without editing the engine: register a
//! factory under a name and select it via
//! [`ScanShareConfig::custom_policy`](scanshare_common::ScanShareConfig).
//!
//! Factories receive the full [`ScanShareConfig`] so that policies can
//! derive their tuning from the engine configuration (PBM, for example,
//! seeds its scan-speed estimates from `cpu_tuples_per_sec`).

use std::collections::HashMap;
use std::sync::Arc;

use scanshare_common::{Error, PolicyKind, Result, ScanShareConfig};

use crate::clock::ClockPolicy;
use crate::lru::LruPolicy;
use crate::pbm::{PbmConfig, PbmPolicy};
use crate::pbm_lru::{PbmLruConfig, PbmLruPolicy};
use crate::policy::ReplacementPolicy;
use crate::sieve::SievePolicy;

/// A factory producing a replacement policy from the engine configuration.
pub type PolicyFactory = Arc<dyn Fn(&ScanShareConfig) -> Box<dyn ReplacementPolicy> + Send + Sync>;

/// Maps policy names to factories.
#[derive(Clone)]
pub struct PolicyRegistry {
    factories: HashMap<String, PolicyFactory>,
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// The PBM configuration the engine has always used: scan-speed estimates
/// seeded from the configured CPU processing rate.
pub fn pbm_config_for(config: &ScanShareConfig) -> PbmConfig {
    PbmConfig {
        default_scan_speed: config.cpu_tuples_per_sec as f64,
        ..PbmConfig::default()
    }
}

/// The registry name the page-level policy of an engine or simulation
/// resolves to: `config.custom_policy` when set, otherwise the built-in
/// name for `policy`. `PolicyKind::Opt` (and, in the simulator's OPT
/// replay, `CScan` never reaches this) runs under PBM, exactly like the
/// paper's trace-recording methodology. Both the execution engine and the
/// discrete-event simulator resolve through this function so they can never
/// drift apart.
pub fn pooled_policy_name(config: &ScanShareConfig, policy: PolicyKind) -> &str {
    config.custom_policy.as_deref().unwrap_or(match policy {
        PolicyKind::Lru => "lru",
        PolicyKind::Pbm | PolicyKind::Opt | PolicyKind::CScan => "pbm",
    })
}

impl PolicyRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        Self {
            factories: HashMap::new(),
        }
    }

    /// A registry with the built-in page-level policies registered:
    /// `"lru"`, `"pbm"`, `"pbm-lru"`, `"clock"` and `"sieve"`.
    pub fn with_defaults() -> Self {
        let mut registry = Self::empty();
        registry.register("lru", |_| Box::new(LruPolicy::new()));
        registry.register("clock", |_| Box::new(ClockPolicy::new()));
        registry.register("sieve", |_| Box::new(SievePolicy::new()));
        registry.register("pbm", |config| {
            Box::new(PbmPolicy::new(pbm_config_for(config)))
        });
        registry.register("pbm-lru", |config| {
            Box::new(PbmLruPolicy::new(PbmLruConfig {
                pbm: pbm_config_for(config),
                ..PbmLruConfig::default()
            }))
        });
        registry
    }

    /// Registers (or replaces) a factory under `name`. Names are matched
    /// case-insensitively.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F) -> &mut Self
    where
        F: Fn(&ScanShareConfig) -> Box<dyn ReplacementPolicy> + Send + Sync + 'static,
    {
        self.factories
            .insert(name.into().to_ascii_lowercase(), Arc::new(factory));
        self
    }

    /// Whether `name` resolves to a registered factory.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(&name.to_ascii_lowercase())
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Builds the policy registered under `name`.
    pub fn build(
        &self,
        name: &str,
        config: &ScanShareConfig,
    ) -> Result<Box<dyn ReplacementPolicy>> {
        match self.factories.get(&name.to_ascii_lowercase()) {
            Some(factory) => Ok(factory(config)),
            None => Err(Error::config(format!(
                "unknown replacement policy {name:?}; registered: {}",
                self.names().join(", ")
            ))),
        }
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{PageId, ScanId, VirtualInstant};
    use scanshare_storage::layout::ScanPagePlan;
    use std::collections::HashSet;

    use crate::policy::ScanInfo;

    #[test]
    fn defaults_cover_the_builtin_policies() {
        let registry = PolicyRegistry::default();
        assert_eq!(
            registry.names(),
            vec!["clock", "lru", "pbm", "pbm-lru", "sieve"]
        );
        let config = ScanShareConfig::default();
        for name in [
            "lru", "pbm", "pbm-lru", "clock", "sieve", "LRU", "Pbm", "PBM-LRU", "Clock", "SIEVE",
        ] {
            assert!(registry.contains(name), "{name}");
            let policy = registry.build(name, &config).unwrap();
            assert_eq!(policy.name(), name.to_ascii_lowercase(), "{name}");
        }
    }

    #[test]
    fn unknown_names_produce_a_descriptive_error() {
        let registry = PolicyRegistry::default();
        let err = registry
            .build("mru", &ScanShareConfig::default())
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("mru"), "{message}");
        assert!(
            message.contains("lru") && message.contains("pbm"),
            "{message}"
        );
        assert!(PolicyRegistry::empty()
            .build("lru", &ScanShareConfig::default())
            .is_err());
    }

    #[derive(Debug)]
    struct Fifo {
        order: Vec<PageId>,
    }

    impl ReplacementPolicy for Fifo {
        fn name(&self) -> &'static str {
            "fifo"
        }
        fn register_scan(&mut self, _: &ScanInfo, _: &ScanPagePlan, _: VirtualInstant) {}
        fn report_scan_position(&mut self, _: ScanId, _: u64, _: VirtualInstant) {}
        fn unregister_scan(&mut self, _: ScanId, _: VirtualInstant) {}
        fn on_access(&mut self, _: PageId, _: Option<ScanId>, _: VirtualInstant) {}
        fn on_admit(&mut self, page: PageId, _: VirtualInstant) {
            self.order.push(page);
        }
        fn on_evict(&mut self, page: PageId) {
            self.order.retain(|&p| p != page);
        }
        fn choose_victims(
            &mut self,
            count: usize,
            exclude: &HashSet<PageId>,
            _: VirtualInstant,
        ) -> Vec<PageId> {
            self.order
                .iter()
                .copied()
                .filter(|p| !exclude.contains(p))
                .take(count)
                .collect()
        }
    }

    #[test]
    fn custom_policies_can_be_registered_and_built() {
        let mut registry = PolicyRegistry::default();
        registry.register("fifo", |_| Box::new(Fifo { order: Vec::new() }));
        assert!(registry.contains("FIFO"));
        let policy = registry.build("fifo", &ScanShareConfig::default()).unwrap();
        assert_eq!(policy.name(), "fifo");
        // Re-registering replaces the factory.
        registry.register("fifo", |_| Box::new(LruPolicy::new()));
        let policy = registry.build("fifo", &ScanShareConfig::default()).unwrap();
        assert_eq!(policy.name(), "lru");
    }

    #[test]
    fn pbm_factories_inherit_the_configured_scan_speed() {
        let config = ScanShareConfig {
            cpu_tuples_per_sec: 123_456,
            ..Default::default()
        };
        assert_eq!(pbm_config_for(&config).default_scan_speed, 123_456.0);
    }
}
