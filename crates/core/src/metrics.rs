//! Buffer-manager statistics.

/// Counters maintained by the buffer pool (and by the ABM for Cooperative
/// Scans). `io_bytes` is the "total volume of performed I/O" reported in all
/// of the paper's figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests satisfied from the pool.
    pub hits: u64,
    /// Page requests that required a load.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Pages loaded from the I/O subsystem.
    pub pages_loaded: u64,
    /// Bytes loaded from the I/O subsystem (demand misses *and* prefetches:
    /// the total performed I/O volume).
    pub io_bytes: u64,
    /// Pages loaded speculatively by the prefetcher (a subset of
    /// `pages_loaded`).
    pub prefetched_pages: u64,
    /// Bytes loaded speculatively by the prefetcher (a subset of
    /// `io_bytes`).
    pub prefetch_io_bytes: u64,
    /// Pages dropped by an explicit invalidation (a checkpoint replacing a
    /// table's stable image), **not** counted as evictions: the pages were
    /// not displaced by a replacement decision, their data simply ceased to
    /// exist in the live snapshot.
    pub invalidated_pages: u64,
    /// Tuples that registered scans skipped via zone-map pruning: the
    /// backend never saw a page request, an ABM chunk interest or a PBM
    /// consumption prediction for them. Tuple-granular (not chunk-granular)
    /// because parallel query parts split ranges at arbitrary boundaries.
    pub pruned_tuples: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// I/O volume in (decimal) megabytes.
    pub fn io_megabytes(&self) -> f64 {
        self.io_bytes as f64 / 1_000_000.0
    }

    /// Merges another stats snapshot into this one.
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.pages_loaded += other.pages_loaded;
        self.io_bytes += other.io_bytes;
        self.prefetched_pages += other.prefetched_pages;
        self.prefetch_io_bytes += other.prefetch_io_bytes;
        self.invalidated_pages += other.invalidated_pages;
        self.pruned_tuples += other.pruned_tuples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_empty_and_counts() {
        let mut s = BufferStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let a = BufferStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            pages_loaded: 4,
            io_bytes: 5,
            prefetched_pages: 6,
            prefetch_io_bytes: 7,
            invalidated_pages: 8,
            pruned_tuples: 9,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.misses, 4);
        assert_eq!(b.evictions, 6);
        assert_eq!(b.pages_loaded, 8);
        assert_eq!(b.io_bytes, 10);
        assert_eq!(b.prefetched_pages, 12);
        assert_eq!(b.prefetch_io_bytes, 14);
        assert_eq!(b.invalidated_pages, 16);
        assert_eq!(b.pruned_tuples, 18);
        assert!((a.io_megabytes() - 5e-6).abs() < 1e-15);
    }
}
