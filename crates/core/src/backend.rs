//! The scan-backend abstraction unifying page-level buffer pools and the
//! Active Buffer Manager behind one interface.
//!
//! The paper's central observation is that Predictive Buffer Management
//! delivers most of Cooperative Scans' benefit *without* forking the system
//! architecture. The execution layer mirrors that: a scan operator talks to
//! a [`ScanBackend`] and never needs to know whether the engine runs a
//! passive page buffer (a [`ShardedPool`] with a pluggable replacement
//! policy, [`PooledBackend`]) or the chunk-dispatching [`Abm`]
//! ([`CScanBackend`]).
//!
//! The protocol is the paper's buffer-manager interface (Figure 3 /
//! Section 2):
//!
//! 1. [`ScanBackend::register_scan`] — `RegisterScan` / `RegisterCScan`:
//!    announce the stable (SID) ranges and columns the scan will read;
//! 2. [`ScanBackend::next_chunk`] — the backend schedules the next SID range
//!    the scan should produce: sequential for pooled backends, the ABM's
//!    `GetChunk` choice (generally out of table order) for Cooperative
//!    Scans. The backend performs and accounts any I/O this requires;
//! 3. [`ScanBackend::request_page`] — page-granular requests issued while
//!    producing a delivered range (pooled backends count hits/misses and
//!    charge misses to the device; the ABM already loaded the chunk);
//! 4. [`ScanBackend::report_position`] — `ReportScanPosition`: progress
//!    feedback that PBM turns into next-consumption estimates;
//! 5. [`ScanBackend::finish_scan`] — `UnregisterScan` / `UnregisterCScan`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scanshare_common::sync::{Mutex, RwLock};
use scanshare_common::{
    Error, PageId, PolicyKind, RangeList, Result, ScanId, TableId, TupleRange, VirtualClock,
    VirtualInstant,
};
use scanshare_iosim::{BlockDevice, IoKind, ReadSpec};
use scanshare_storage::layout::TableLayout;
use scanshare_storage::snapshot::Snapshot;

use crate::abm::{Abm, CScanRequest, LoadScheduler, PumpOutcome};
use crate::metrics::BufferStats;
use crate::sharded::ShardedPool;

/// What a scan announces to a backend when it registers: the stable data it
/// is going to read.
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// Table being scanned.
    pub table: TableId,
    /// Storage snapshot the scan's transaction works on.
    pub snapshot: Arc<Snapshot>,
    /// Layout of the table.
    pub layout: Arc<TableLayout>,
    /// Column indices the scan reads.
    pub columns: Vec<usize>,
    /// Stable (SID) ranges the scan must cover.
    pub ranges: RangeList,
    /// Whether delivery must follow table order even on backends that prefer
    /// to reorder (the "CScan as drop-in replacement for Scan" mode of
    /// Section 2.3). Pooled backends always deliver in order.
    pub in_order: bool,
}

/// One scheduling step handed to a scan operator by [`ScanBackend::next_chunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStep {
    /// Produce the rows of this stable (SID) range next. Any I/O needed to
    /// make the range available has already been performed and accounted.
    Deliver(TupleRange),
    /// Every registered range has been delivered.
    Finished,
}

/// A concurrent-scan buffer-management backend.
///
/// Implementations use interior mutability: one backend instance is shared
/// by every scan of an engine, across the worker threads of parallel plans.
pub trait ScanBackend: Send + Sync + std::fmt::Debug {
    /// Short name of the backing policy ("lru", "pbm", "cscan", ...).
    fn name(&self) -> &'static str;

    /// Which policy family the backend implements.
    fn kind(&self) -> PolicyKind;

    /// Registers a scan and its data interest; returns the scan id used in
    /// all subsequent calls.
    fn register_scan(&self, request: ScanRequest) -> Result<ScanId>;

    /// Schedules the next SID range `scan` should produce, loading data (and
    /// charging the I/O device in virtual time) as required.
    fn next_chunk(&self, scan: ScanId) -> Result<ScanStep>;

    /// A page-granular request issued while producing a delivered range.
    fn request_page(&self, scan: ScanId, page: PageId) -> Result<()>;

    /// The scan consumed `tuples_consumed` tuples so far (`ReportScanPosition`).
    fn report_position(&self, scan: ScanId, tuples_consumed: u64);

    /// The scan finished (or was dropped) and its metadata can be freed.
    fn finish_scan(&self, scan: ScanId);

    /// Accumulated buffer statistics (`io_bytes` is the paper's total I/O
    /// volume metric).
    fn stats(&self) -> BufferStats;

    /// Records that zone-map pruning removed `tuples` stable tuples from a
    /// scan's interest *before* registration: the backend never sees a page
    /// request, an ABM chunk interest or a PBM consumption prediction for
    /// them. Called even when pruning removes the entire range (and the scan
    /// therefore never registers), so the counter reflects every skipped
    /// tuple. Folded into [`BufferStats::pruned_tuples`].
    fn record_pruned(&self, tuples: u64) {
        let _ = tuples;
    }

    /// Gives the backend an opportunity to issue asynchronous prefetch I/O
    /// (top up its in-flight window from the policy's
    /// [`prefetch_hints`](crate::policy::ReplacementPolicy::prefetch_hints)).
    /// Called by scan operators at compute points — between producing
    /// batches — so transfers overlap with tuple processing. The default
    /// does nothing; backends without a prefetcher (or with
    /// `prefetch_pages == 0`) ignore it.
    fn drive_prefetch(&self) {}

    /// Notifies the backend that a checkpoint replaced `table`'s stable
    /// image: `stale_pages` belonged to the superseded master snapshot and
    /// can never be requested by a scan pinned to the new image. `epoch` is
    /// the table's checkpoint epoch *after* the swap; backends record the
    /// largest epoch seen per table and ignore calls that do not advance it,
    /// so a late or replayed invalidation can never clobber state installed
    /// by a newer checkpoint.
    ///
    /// The default does nothing — correctness never depends on this hook
    /// (stale pages are simply never requested again); it exists so pooled
    /// backends can return the capacity immediately instead of waiting for
    /// the replacement policy to age the dead pages out.
    fn invalidate_stale(&self, table: TableId, epoch: u64, stale_pages: &[PageId]) {
        let _ = (table, epoch, stale_pages);
    }
}

/// Charges a demand read of `targets` (`bytes` in total) to the device and
/// waits (in virtual time) for the transfer to complete. Device faults are
/// surfaced to the caller as typed errors.
fn charge_io(
    device: &dyn BlockDevice,
    clock: &VirtualClock,
    bytes: u64,
    targets: &[PageId],
) -> Result<()> {
    if bytes == 0 {
        return Ok(());
    }
    let spec = ReadSpec {
        bytes,
        pages: targets.len() as u64,
        kind: IoKind::Demand,
        targets,
    };
    let done = device.submit_read(clock.now(), spec)?.done_at;
    clock.advance_to(done);
    Ok(())
}

// ---------------------------------------------------------------------------
// PooledBackend: ShardedPool + ReplacementPolicy (LRU / PBM / OPT / custom)
// ---------------------------------------------------------------------------

/// A [`ScanBackend`] over the page-level [`ShardedPool`] and its pluggable
/// [`ReplacementPolicy`](crate::policy::ReplacementPolicy).
///
/// Ranges are delivered strictly in registration order; the interesting
/// decisions (what to evict, what the scans' progress reports mean) happen
/// inside the replacement policy on every [`ScanBackend::request_page`].
/// The pool synchronizes internally (per-shard page-table locks, one policy
/// lock fed by an order-preserving event queue — see
/// [`sharded`](crate::sharded)), so concurrent scans of a multi-stream
/// workload contend only on the shard owning the page they touch.
///
/// With a non-zero prefetch window
/// ([`PooledBackend::with_prefetch_window`]), the backend additionally keeps
/// up to `prefetch_pages` policy-predicted pages in flight on the I/O
/// device: their transfers proceed in virtual time while scans compute, and
/// a demand access to a page still in flight waits only for the *remaining*
/// transfer time instead of a full synchronous load.
#[derive(Debug)]
pub struct PooledBackend {
    pool: ShardedPool,
    /// Pending SID ranges per registered scan, delivered front to back.
    pending: Mutex<HashMap<ScanId, VecDeque<TupleRange>>>,
    /// Prefetched pages whose transfer may still be in flight, with their
    /// completion times. Entries leave the map when the transfer completes
    /// (freeing a window slot) or when a demand access consumes the page.
    ///
    /// Lock order: the pool's internal locks may be taken while holding
    /// `inflight` (the prefetch top-up path), never the other way around.
    inflight: Mutex<HashMap<PageId, VirtualInstant>>,
    prefetch_pages: usize,
    /// Largest checkpoint epoch seen per table (see
    /// [`ScanBackend::invalidate_stale`]).
    invalidation_epochs: Mutex<HashMap<TableId, u64>>,
    /// Tuples skipped by zone-map pruning before scans registered (see
    /// [`ScanBackend::record_pruned`]).
    pruned_tuples: AtomicU64,
    clock: Arc<VirtualClock>,
    device: Arc<dyn BlockDevice>,
    kind: PolicyKind,
    name: &'static str,
    page_size_bytes: u64,
}

impl PooledBackend {
    /// Wraps `pool`, charging misses to `device` on `clock`. `kind` is the
    /// policy family reported by [`ScanBackend::kind`] (custom registry
    /// policies report the family they were configured under).
    pub fn new(
        pool: ShardedPool,
        clock: Arc<VirtualClock>,
        device: Arc<dyn BlockDevice>,
        kind: PolicyKind,
    ) -> Self {
        let name = pool.policy_name();
        let page_size_bytes = pool.page_size_bytes();
        Self {
            pool,
            pending: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            prefetch_pages: 0,
            invalidation_epochs: Mutex::new(HashMap::new()),
            pruned_tuples: AtomicU64::new(0),
            clock,
            device,
            kind,
            name,
            page_size_bytes,
        }
    }

    /// Enables asynchronous prefetching with a window of `pages` in-flight
    /// transfers (`0` keeps the synchronous behaviour).
    pub fn with_prefetch_window(mut self, pages: usize) -> Self {
        self.prefetch_pages = pages;
        self
    }

    /// The configured prefetch window, in pages.
    pub fn prefetch_window(&self) -> usize {
        self.prefetch_pages
    }

    /// Tops up the prefetch window: asks the pool (and through it the
    /// policy) for the most urgent non-resident pages and submits their
    /// transfers asynchronously, without advancing the caller's clock.
    fn top_up_prefetch(&self) {
        if self.prefetch_pages == 0 {
            return;
        }
        crate::bufferpool::top_up_prefetch_window(
            &mut &self.pool,
            self.device.as_ref(),
            &mut self.inflight.lock(),
            self.prefetch_pages,
            self.clock.now(),
        );
    }
}

impl ScanBackend for PooledBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn kind(&self) -> PolicyKind {
        self.kind
    }

    fn register_scan(&self, request: ScanRequest) -> Result<ScanId> {
        let plan =
            request
                .layout
                .scan_page_plan(&request.snapshot, &request.columns, &request.ranges);
        let id = self.pool.register_scan(&plan, self.clock.now());
        // A fresh scan's first pages can start loading immediately.
        self.top_up_prefetch();
        self.pending
            .lock()
            .insert(id, request.ranges.ranges().iter().copied().collect());
        Ok(id)
    }

    fn next_chunk(&self, scan: ScanId) -> Result<ScanStep> {
        let mut pending = self.pending.lock();
        let queue = pending.get_mut(&scan).ok_or(Error::UnknownScan(scan))?;
        Ok(match queue.pop_front() {
            Some(range) => ScanStep::Deliver(range),
            None => ScanStep::Finished,
        })
    }

    fn request_page(&self, scan: ScanId, page: PageId) -> Result<()> {
        let outcome = self.pool.request_page(page, Some(scan), self.clock.now())?;
        let mut consumed_inflight = false;
        if outcome.is_hit() {
            // A hit on a page whose prefetch is still in flight waits for
            // the remaining transfer time — the overlapped part is free.
            if self.prefetch_pages > 0 {
                if let Some(done) = self.inflight.lock().remove(&page) {
                    self.clock.advance_to(done);
                    consumed_inflight = true;
                }
            }
        } else {
            // The demand read is submitted before any new prefetches so it
            // never queues behind speculative transfers it did not need.
            charge_io(
                self.device.as_ref(),
                &self.clock,
                self.page_size_bytes,
                std::slice::from_ref(&page),
            )?;
        }
        // Top up only when this access changed the prefetch picture (a miss
        // loaded a page, or a window slot was consumed): a hit on an
        // already-warm pool must not pay an O(tracked pages) policy scan.
        if self.prefetch_pages > 0 && (!outcome.is_hit() || consumed_inflight) {
            self.top_up_prefetch();
        }
        Ok(())
    }

    fn report_position(&self, scan: ScanId, tuples_consumed: u64) {
        self.pool
            .report_scan_position(scan, tuples_consumed, self.clock.now());
    }

    fn finish_scan(&self, scan: ScanId) {
        if self.pending.lock().remove(&scan).is_some() {
            self.pool.unregister_scan(scan, self.clock.now());
        }
    }

    fn stats(&self) -> BufferStats {
        let mut stats = self.pool.stats();
        stats.pruned_tuples = self.pruned_tuples.load(Ordering::Relaxed);
        stats
    }

    fn record_pruned(&self, tuples: u64) {
        self.pruned_tuples.fetch_add(tuples, Ordering::Relaxed);
    }

    fn drive_prefetch(&self) {
        self.top_up_prefetch();
    }

    fn invalidate_stale(&self, table: TableId, epoch: u64, stale_pages: &[PageId]) {
        {
            let mut epochs = self.invalidation_epochs.lock();
            let seen = epochs.entry(table).or_insert(0);
            if epoch <= *seen {
                return;
            }
            *seen = epoch;
        }
        // Stale pages whose prefetch is still in flight just lose their
        // window slot; the transfer itself already happened (or is charged
        // regardless), exactly as for a page evicted mid-flight.
        if self.prefetch_pages > 0 {
            let mut inflight = self.inflight.lock();
            for page in stale_pages {
                inflight.remove(page);
            }
        }
        self.pool.invalidate_pages(stale_pages);
    }
}

// ---------------------------------------------------------------------------
// CScanBackend: the Active Buffer Manager (Cooperative Scans)
// ---------------------------------------------------------------------------

/// Per-scan metadata the backend needs to translate ABM chunk deliveries
/// back into SID ranges.
#[derive(Debug)]
struct CScanMeta {
    layout: Arc<TableLayout>,
    stable_tuples: u64,
}

/// A [`ScanBackend`] over the [`Abm`]: chunks are delivered in whatever
/// order the ABM's relevance functions consider best, and chunk loads are
/// pumped through a shared [`LoadScheduler`] (charged to the device in
/// virtual time) whenever a scan would otherwise starve.
///
/// The backend holds no outer mutex: the decomposed ABM synchronizes
/// internally (per-shard directory locks for delivery, one relevance-core
/// lock for decisions — see [`abm`](crate::abm)), the per-scan translation
/// metadata sits behind a read-mostly `RwLock`, and starved streams retire
/// each other's in-flight loads through the scheduler instead of
/// spin-polling one `Mutex<Abm>`.
#[derive(Debug)]
pub struct CScanBackend {
    abm: Abm,
    scans: RwLock<HashMap<ScanId, CScanMeta>>,
    scheduler: LoadScheduler,
    /// Largest checkpoint epoch seen per table (see
    /// [`ScanBackend::invalidate_stale`]).
    invalidation_epochs: Mutex<HashMap<TableId, u64>>,
    /// Tuples skipped by zone-map pruning before scans registered (see
    /// [`ScanBackend::record_pruned`]).
    pruned_tuples: AtomicU64,
    clock: Arc<VirtualClock>,
    device: Arc<dyn BlockDevice>,
}

impl CScanBackend {
    /// Wraps `abm`, charging chunk loads to `device` on `clock`, with the
    /// paper-faithful one-load-at-a-time window (see
    /// [`CScanBackend::with_load_window`]).
    pub fn new(abm: Abm, clock: Arc<VirtualClock>, device: Arc<dyn BlockDevice>) -> Self {
        Self {
            abm,
            scans: RwLock::new(HashMap::new()),
            scheduler: LoadScheduler::new(1),
            invalidation_epochs: Mutex::new(HashMap::new()),
            pruned_tuples: AtomicU64::new(0),
            clock,
            device,
        }
    }

    /// Sets the load scheduler's window: up to `window` chunk loads are
    /// kept in flight on the device at once (`1` keeps the one-load-at-a-
    /// time model whose decisions match the monolithic ABM byte for byte).
    pub fn with_load_window(mut self, window: usize) -> Self {
        self.scheduler = LoadScheduler::new(window.max(1));
        self
    }

    /// The configured load window.
    pub fn load_window(&self) -> usize {
        self.scheduler.window()
    }

    /// The underlying Active Buffer Manager.
    pub fn abm(&self) -> &Abm {
        &self.abm
    }
}

impl ScanBackend for CScanBackend {
    fn name(&self) -> &'static str {
        "cscan"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::CScan
    }

    fn register_scan(&self, request: ScanRequest) -> Result<ScanId> {
        let meta = CScanMeta {
            layout: Arc::clone(&request.layout),
            stable_tuples: request.snapshot.stable_tuples(),
        };
        let handle = self.abm.register_cscan(CScanRequest {
            table: request.table,
            snapshot: request.snapshot,
            layout: request.layout,
            columns: request.columns,
            ranges: request.ranges,
            in_order: request.in_order,
        })?;
        self.scans.write().insert(handle.id, meta);
        Ok(handle.id)
    }

    fn next_chunk(&self, scan: ScanId) -> Result<ScanStep> {
        loop {
            // Delivery is the sharded fast path: only the directory shard
            // owning this scan is locked.
            if let Some(delivery) = self.abm.get_chunk(scan)? {
                let scans = self.scans.read();
                let meta = scans.get(&scan).ok_or(Error::UnknownScan(scan))?;
                let sids = meta
                    .layout
                    .chunk_sid_range(delivery.chunk, meta.stable_tuples);
                return Ok(ScanStep::Deliver(sids));
            }
            if self.abm.is_finished(scan) {
                return Ok(ScanStep::Finished);
            }
            // The scan is starved: pump the load scheduler. In a real system
            // a dedicated ABM thread does this; in the embedded engine
            // whichever stream is starved drives the pipeline — planning a
            // new load if the window has room, otherwise retiring the
            // earliest in-flight load (possibly one another stream planned).
            match self
                .scheduler
                .pump(&self.abm, &self.clock, self.device.as_ref())?
            {
                PumpOutcome::Progress => continue,
                PumpOutcome::Idle => {
                    // Between our failed delivery probe and this pump,
                    // another stream may have retired the very load this
                    // scan was waiting for (the pipeline is then rightly
                    // empty): re-probe before declaring starvation. A scan
                    // that is still starved here cannot progress — nothing
                    // cached, nothing loadable, nothing in flight.
                    if self.abm.has_cached_chunk(scan) || self.abm.is_finished(scan) {
                        continue;
                    }
                    return Err(Error::ScanStarved(scan));
                }
            }
        }
    }

    fn request_page(&self, _scan: ScanId, _page: PageId) -> Result<()> {
        // Chunk loads already brought the pages in and accounted the I/O.
        Ok(())
    }

    fn report_position(&self, _scan: ScanId, _tuples_consumed: u64) {
        // The ABM tracks progress through chunk deliveries, not positions.
    }

    fn finish_scan(&self, scan: ScanId) {
        if self.scans.write().remove(&scan).is_some() {
            let _ = self.abm.unregister_cscan(scan);
        }
    }

    fn stats(&self) -> BufferStats {
        let mut stats = self.abm.stats();
        stats.pruned_tuples = self.pruned_tuples.load(Ordering::Relaxed);
        stats
    }

    fn record_pruned(&self, tuples: u64) {
        self.pruned_tuples.fetch_add(tuples, Ordering::Relaxed);
    }

    fn invalidate_stale(&self, table: TableId, epoch: u64, _stale_pages: &[PageId]) {
        // The ABM caches at chunk granularity, keyed by snapshot *version*:
        // scans pinned to the superseded snapshot keep their version (and
        // its cached chunks — they still need them), and the version is
        // destroyed, releasing every cached byte, the moment its last scan
        // unregisters (`Abm::unregister_cscan`). That is precisely the
        // paper's PDT-checkpoint semantics, so the hook only has to record
        // the epoch for the staleness contract; there is nothing to drop
        // eagerly that some live scan does not still reference.
        let mut epochs = self.invalidation_epochs.lock();
        let seen = epochs.entry(table).or_insert(0);
        *seen = (*seen).max(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abm::AbmConfig;
    use crate::lru::LruPolicy;
    use scanshare_common::{Bandwidth, VirtualDuration};
    use scanshare_iosim::IoDevice;
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    const PAGE: u64 = 1024;

    fn setup(tuples: u64) -> (Arc<Storage>, ScanRequest) {
        let storage = Storage::with_seed(PAGE, 500, 3);
        let spec = TableSpec::new(
            "t",
            vec![
                ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
            ],
            tuples,
        );
        let table = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(1),
                ],
            )
            .unwrap();
        let request = ScanRequest {
            table,
            snapshot: storage.master_snapshot(table).unwrap(),
            layout: storage.layout(table).unwrap(),
            columns: vec![0, 1],
            ranges: RangeList::single(0, tuples),
            in_order: false,
        };
        (storage, request)
    }

    fn clock_and_device() -> (Arc<VirtualClock>, Arc<IoDevice>) {
        (
            VirtualClock::shared(),
            Arc::new(IoDevice::new(
                Bandwidth::from_mb_per_sec(700.0),
                VirtualDuration::from_micros(100),
            )),
        )
    }

    #[test]
    fn pooled_backend_delivers_ranges_in_order_and_counts_io() {
        let (_storage, request) = setup(2000);
        let (clock, device) = clock_and_device();
        let backend = PooledBackend::new(
            ShardedPool::new(64, PAGE, Box::new(LruPolicy::new()), 2),
            Arc::clone(&clock),
            device,
            PolicyKind::Lru,
        );
        assert_eq!(backend.name(), "lru");
        assert_eq!(backend.kind(), PolicyKind::Lru);
        let scan = backend.register_scan(request.clone()).unwrap();
        assert_eq!(
            backend.next_chunk(scan).unwrap(),
            ScanStep::Deliver(TupleRange::new(0, 2000))
        );
        assert_eq!(backend.next_chunk(scan).unwrap(), ScanStep::Finished);

        // Page requests count misses and advance the virtual clock.
        let t0 = clock.now();
        let page = request.snapshot.page(0, 0).unwrap();
        backend.request_page(scan, page).unwrap();
        assert!(clock.now() > t0, "a miss pays I/O time");
        backend.request_page(scan, page).unwrap();
        let stats = backend.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        backend.report_position(scan, 1000);
        backend.finish_scan(scan);
        assert!(
            backend.next_chunk(scan).is_err(),
            "finished scans are unregistered"
        );
    }

    #[test]
    fn cscan_backend_delivers_every_chunk_and_accounts_loads() {
        let (_storage, request) = setup(3000);
        let (clock, device) = clock_and_device();
        let backend = CScanBackend::new(
            Abm::new(AbmConfig::new(1 << 20, PAGE)),
            Arc::clone(&clock),
            device,
        );
        assert_eq!(backend.name(), "cscan");
        assert_eq!(backend.kind(), PolicyKind::CScan);
        let scan = backend.register_scan(request).unwrap();
        let mut delivered = RangeList::new();
        while let ScanStep::Deliver(sids) = backend.next_chunk(scan).unwrap() {
            delivered.add(sids);
        }
        assert_eq!(
            delivered.total_tuples(),
            3000,
            "chunks cover the whole range"
        );
        assert!(backend.stats().io_bytes > 0);
        assert!(
            clock.now().as_nanos() > 0,
            "loads advanced the virtual clock"
        );
        // Progress reports are accepted (and ignored) for API symmetry.
        backend.report_position(scan, 1);
        backend.finish_scan(scan);
    }

    #[test]
    fn cscan_backend_load_window_pipelines_with_bounded_io_overhead() {
        // A deep load window loads the same chunks; overlapping in-flight
        // loads may each fetch a chunk-boundary page the other also plans
        // (a plan excludes only *resident* pages — exactly what happens
        // when parallel workers claim overlapping loads), so the volume may
        // exceed the serial case by at most a page per chunk boundary.
        let run = |window: usize| {
            let (_storage, request) = setup(4000);
            let (clock, device) = clock_and_device();
            let backend = CScanBackend::new(
                Abm::new(AbmConfig::new(1 << 20, PAGE).with_shards(2)),
                clock,
                device,
            )
            .with_load_window(window);
            assert_eq!(backend.load_window(), window);
            let scan = backend.register_scan(request).unwrap();
            while let ScanStep::Deliver(_) = backend.next_chunk(scan).unwrap() {}
            backend.finish_scan(scan);
            backend.stats()
        };
        let sync = run(1);
        let deep = run(4);
        assert_eq!(sync.misses, deep.misses, "same chunks loaded");
        assert!(deep.io_bytes >= sync.io_bytes);
        // 8 chunks x 2 columns: at most one duplicated boundary page per
        // column per adjacent chunk pair.
        assert!(deep.io_bytes <= sync.io_bytes + 2 * 7 * PAGE);
        assert!(sync.io_bytes > 0);
    }

    #[test]
    fn backends_are_usable_as_trait_objects() {
        let (_storage, request) = setup(500);
        let (clock, device) = clock_and_device();
        let backends: Vec<Box<dyn ScanBackend>> = vec![
            Box::new(PooledBackend::new(
                ShardedPool::new(64, PAGE, Box::new(LruPolicy::new()), 2),
                Arc::clone(&clock),
                device.clone(),
                PolicyKind::Lru,
            )),
            Box::new(CScanBackend::new(
                Abm::new(AbmConfig::new(1 << 20, PAGE)),
                clock,
                device,
            )),
        ];
        for backend in backends {
            let scan = backend.register_scan(request.clone()).unwrap();
            let mut steps = 0;
            while let ScanStep::Deliver(_) = backend.next_chunk(scan).unwrap() {
                steps += 1;
                assert!(steps < 100);
            }
            assert!(steps > 0);
            backend.finish_scan(scan);
        }
    }

    #[test]
    fn prefetch_window_overlaps_io_with_demand_accesses() {
        let (_storage, request) = setup(2000);
        // Synchronous baseline.
        let (sync_clock, sync_device) = clock_and_device();
        let sync_backend = PooledBackend::new(
            ShardedPool::new(64, PAGE, Box::new(LruPolicy::new()), 2),
            Arc::clone(&sync_clock),
            sync_device.clone(),
            PolicyKind::Lru,
        );
        assert_eq!(sync_backend.prefetch_window(), 0);
        // Prefetching backend with a 4-page window.
        let (pf_clock, pf_device) = clock_and_device();
        let pf_backend = PooledBackend::new(
            ShardedPool::new(64, PAGE, Box::new(LruPolicy::new()), 2),
            Arc::clone(&pf_clock),
            pf_device.clone(),
            PolicyKind::Lru,
        )
        .with_prefetch_window(4);
        assert_eq!(pf_backend.prefetch_window(), 4);

        let run = |backend: &dyn ScanBackend| {
            let scan = backend.register_scan(request.clone()).unwrap();
            while let ScanStep::Deliver(range) = backend.next_chunk(scan).unwrap() {
                for sid in (range.start..range.end).step_by(128) {
                    for col in 0..2 {
                        if let Some(page) = request.snapshot.page(col, sid / 128) {
                            backend.request_page(scan, page).unwrap();
                        }
                    }
                    backend.drive_prefetch();
                }
            }
            backend.finish_scan(scan);
        };
        run(&sync_backend);
        run(&pf_backend);

        // Both read every distinct page exactly once (the pool holds the
        // whole table), but the prefetching backend loaded most of them
        // speculatively and overlapped the transfers: its demand path waits
        // less virtual time.
        let sync_stats = sync_backend.stats();
        let pf_stats = pf_backend.stats();
        assert_eq!(sync_stats.io_bytes, pf_stats.io_bytes);
        assert!(pf_stats.prefetched_pages > 0);
        assert_eq!(
            pf_stats.prefetch_io_bytes,
            pf_device.stats().prefetch_bytes,
            "pool and device agree on the prefetch volume"
        );
        assert_eq!(sync_device.stats().prefetch_bytes, 0);
        assert!(
            pf_clock.now() <= sync_clock.now(),
            "prefetching never makes the scan slower (pf {} vs sync {})",
            pf_clock.now(),
            sync_clock.now()
        );
    }

    #[test]
    fn record_pruned_accumulates_into_stats_on_both_backends() {
        let (clock, device) = clock_and_device();
        let backends: Vec<Box<dyn ScanBackend>> = vec![
            Box::new(PooledBackend::new(
                ShardedPool::new(4, PAGE, Box::new(LruPolicy::new()), 1),
                Arc::clone(&clock),
                device.clone(),
                PolicyKind::Lru,
            )),
            Box::new(CScanBackend::new(
                Abm::new(AbmConfig::new(1 << 20, PAGE)),
                clock,
                device,
            )),
        ];
        for backend in backends {
            assert_eq!(backend.stats().pruned_tuples, 0);
            backend.record_pruned(1000);
            backend.record_pruned(24);
            assert_eq!(backend.stats().pruned_tuples, 1024);
        }
    }

    #[test]
    fn unknown_scan_ids_error() {
        let (clock, device) = clock_and_device();
        let backend = PooledBackend::new(
            ShardedPool::new(4, PAGE, Box::new(LruPolicy::new()), 1),
            clock,
            device,
            PolicyKind::Lru,
        );
        assert!(backend.next_chunk(ScanId::new(7)).is_err());
        // finish_scan of an unknown id is a harmless no-op (Drop paths).
        backend.finish_scan(ScanId::new(7));
    }
}
