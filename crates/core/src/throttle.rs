//! PBM attach & throttle (Section 5, "PBM Attach & Throttle").
//!
//! The paper's future-work discussion sketches how circular-scan techniques
//! could be folded into PBM: incoming scans *attach* to scans that are
//! already running nearby, and fast scans are *throttled* so that groups of
//! queries stay at close positions and keep sharing the pages loaded for the
//! group's leader — the same idea as DB2's throttling, but driven by PBM's
//! next-consumption estimates.
//!
//! [`ThrottlePlanner`] implements the decision logic: it groups registered
//! scans of the same table whose positions lie within an attach window, and
//! computes a throttle factor for every scan so that the whole group advances
//! at the pace of its slowest member. A scan is only throttled if the pages
//! it has just consumed would otherwise be evicted before the scans behind it
//! catch up (approximated by comparing the group gap with the buffer
//! headroom the caller supplies).

use std::collections::HashMap;

use scanshare_common::{ScanId, TableId};

/// Position and speed of one registered scan, as tracked by PBM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanProgress {
    /// The scan.
    pub scan: ScanId,
    /// The table it scans.
    pub table: TableId,
    /// Current position in tuples from the start of its range.
    pub position: u64,
    /// Observed speed in tuples per second.
    pub speed_tps: f64,
}

/// Configuration of the attach & throttle heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleConfig {
    /// Two scans whose positions differ by at most this many tuples are
    /// considered part of the same group ("attached").
    pub attach_window_tuples: u64,
    /// A group leader is throttled only if the distance to the group's
    /// slowest member exceeds this many tuples (the buffer headroom measured
    /// in tuples: beyond it, pages consumed by the leader are likely evicted
    /// before the followers reach them).
    pub headroom_tuples: u64,
    /// Lower bound on the throttle factor, so no scan is stalled completely.
    pub min_factor: f64,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        Self {
            attach_window_tuples: 1_000_000,
            headroom_tuples: 250_000,
            min_factor: 0.25,
        }
    }
}

/// A group of scans that should advance together.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanGroup {
    /// Table the group scans.
    pub table: TableId,
    /// Members ordered by position (ascending).
    pub members: Vec<ScanId>,
    /// Position of the slowest / furthest-behind member.
    pub tail_position: u64,
    /// Position of the leader.
    pub head_position: u64,
}

/// Per-scan throttle decision: multiply the scan's processing speed by the
/// factor (1.0 = run at full speed).
pub type ThrottlePlan = HashMap<ScanId, f64>;

/// Computes attach groups and throttle factors for a set of scans.
#[derive(Debug, Clone, Default)]
pub struct ThrottlePlanner {
    config: ThrottleConfig,
}

impl ThrottlePlanner {
    /// Creates a planner with the given configuration.
    pub fn new(config: ThrottleConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThrottleConfig {
        &self.config
    }

    /// Groups scans of the same table whose positions are within the attach
    /// window of their neighbour.
    pub fn groups(&self, scans: &[ScanProgress]) -> Vec<ScanGroup> {
        let mut by_table: HashMap<TableId, Vec<&ScanProgress>> = HashMap::new();
        for scan in scans {
            by_table.entry(scan.table).or_default().push(scan);
        }
        let mut groups = Vec::new();
        for (table, mut members) in by_table {
            members.sort_by_key(|s| (s.position, s.scan));
            let mut current: Vec<&ScanProgress> = Vec::new();
            for scan in members {
                match current.last() {
                    Some(prev)
                        if scan.position - prev.position <= self.config.attach_window_tuples =>
                    {
                        current.push(scan);
                    }
                    Some(_) => {
                        groups.push(Self::make_group(table, &current));
                        current = vec![scan];
                    }
                    None => current = vec![scan],
                }
            }
            if !current.is_empty() {
                groups.push(Self::make_group(table, &current));
            }
        }
        groups.sort_by_key(|g| (g.table, g.tail_position));
        groups
    }

    fn make_group(table: TableId, members: &[&ScanProgress]) -> ScanGroup {
        ScanGroup {
            table,
            members: members.iter().map(|s| s.scan).collect(),
            tail_position: members.first().map(|s| s.position).unwrap_or(0),
            head_position: members.last().map(|s| s.position).unwrap_or(0),
        }
    }

    /// Computes throttle factors: every scan that runs ahead of its group by
    /// more than the headroom is slowed down proportionally to its lead, so
    /// the scans behind it can catch up and reuse its pages.
    pub fn plan(&self, scans: &[ScanProgress]) -> ThrottlePlan {
        let mut plan: ThrottlePlan = scans.iter().map(|s| (s.scan, 1.0)).collect();
        for group in self.groups(scans) {
            if group.members.len() < 2 {
                continue;
            }
            let tail = group.tail_position;
            for scan in scans.iter().filter(|s| group.members.contains(&s.scan)) {
                let lead = scan.position.saturating_sub(tail);
                if lead > self.config.headroom_tuples {
                    // The further ahead, the harder the throttle, down to the
                    // configured minimum.
                    let overshoot = (lead - self.config.headroom_tuples) as f64;
                    let factor = (self.config.headroom_tuples as f64
                        / (self.config.headroom_tuples as f64 + overshoot))
                        .max(self.config.min_factor);
                    plan.insert(scan.scan, factor);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(id: u64, table: u32, position: u64, speed: f64) -> ScanProgress {
        ScanProgress {
            scan: ScanId::new(id),
            table: TableId::new(table),
            position,
            speed_tps: speed,
        }
    }

    fn planner(window: u64, headroom: u64) -> ThrottlePlanner {
        ThrottlePlanner::new(ThrottleConfig {
            attach_window_tuples: window,
            headroom_tuples: headroom,
            min_factor: 0.25,
        })
    }

    #[test]
    fn nearby_scans_form_one_group() {
        let planner = planner(1000, 100);
        let scans = vec![
            scan(1, 0, 0, 1e6),
            scan(2, 0, 500, 1e6),
            scan(3, 0, 900, 1e6),
            scan(4, 0, 5000, 1e6),
        ];
        let groups = planner.groups(&scans);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members.len(), 3);
        assert_eq!(groups[0].tail_position, 0);
        assert_eq!(groups[0].head_position, 900);
        assert_eq!(groups[1].members, vec![ScanId::new(4)]);
    }

    #[test]
    fn scans_on_different_tables_never_attach() {
        let planner = planner(1000, 100);
        let scans = vec![scan(1, 0, 0, 1e6), scan(2, 1, 10, 1e6)];
        let groups = planner.groups(&scans);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn leader_far_ahead_is_throttled_followers_are_not() {
        let planner = planner(10_000, 1_000);
        let scans = vec![
            scan(1, 0, 0, 1e6),
            scan(2, 0, 500, 1e6),
            scan(3, 0, 6_000, 1e6),
        ];
        let plan = planner.plan(&scans);
        assert_eq!(plan[&ScanId::new(1)], 1.0);
        assert_eq!(plan[&ScanId::new(2)], 1.0);
        let leader = plan[&ScanId::new(3)];
        assert!(leader < 1.0, "leader must be throttled, got {leader}");
        assert!(
            leader >= 0.25,
            "throttle never goes below the configured minimum"
        );
    }

    #[test]
    fn tight_groups_run_at_full_speed() {
        let planner = planner(10_000, 5_000);
        let scans = vec![
            scan(1, 0, 0, 1e6),
            scan(2, 0, 2_000, 1e6),
            scan(3, 0, 4_000, 1e6),
        ];
        let plan = planner.plan(&scans);
        assert!(plan.values().all(|&f| (f - 1.0).abs() < 1e-12));
    }

    #[test]
    fn lone_scans_are_never_throttled() {
        let planner = planner(100, 10);
        let scans = vec![scan(1, 0, 1_000_000, 1e6)];
        let plan = planner.plan(&scans);
        assert_eq!(plan[&ScanId::new(1)], 1.0);
    }

    #[test]
    fn throttle_strength_grows_with_the_lead() {
        let planner = planner(1_000_000, 1_000);
        let small_lead = planner.plan(&[scan(1, 0, 0, 1e6), scan(2, 0, 2_000, 1e6)]);
        let large_lead = planner.plan(&[scan(1, 0, 0, 1e6), scan(2, 0, 500_000, 1e6)]);
        assert!(large_lead[&ScanId::new(2)] < small_lead[&ScanId::new(2)]);
        assert_eq!(
            large_lead[&ScanId::new(2)],
            0.25,
            "clamped at the minimum factor"
        );
    }
}
