//! OPT (Belady / MIN) simulation over a recorded page-reference trace.
//!
//! OPT is the provably optimal replacement algorithm for order-preserving
//! policies: given perfect knowledge of all future references, it evicts the
//! page that will be referenced furthest in the future (or never again).
//! Like the paper, we do not run OPT online; instead we record the page
//! reference trace of a PBM run and replay it here, reporting the I/O volume
//! the oracle would have caused.

use std::collections::HashMap;

use scanshare_common::PageId;

/// Result of replaying a trace under OPT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptResult {
    /// References served from the buffer.
    pub hits: u64,
    /// References that required a load.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

impl OptResult {
    /// Total references replayed.
    pub fn references(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        if self.references() == 0 {
            0.0
        } else {
            self.hits as f64 / self.references() as f64
        }
    }

    /// I/O volume in bytes, assuming uniform pages of `page_size` bytes.
    pub fn io_bytes(&self, page_size: u64) -> u64 {
        self.misses * page_size
    }
}

/// Replays `trace` through a buffer of `capacity_pages` pages under Belady's
/// OPT policy and returns the resulting counters.
///
/// Complexity is `O(n log n)` in the trace length: the next use of every
/// reference is precomputed, and the resident set is kept in a max-structure
/// keyed by next use.
pub fn simulate_opt(trace: &[PageId], capacity_pages: usize) -> OptResult {
    assert!(
        capacity_pages > 0,
        "OPT needs a buffer of at least one page"
    );
    let n = trace.len();
    // next_use[i] = index of the next reference to trace[i] after i, or
    // usize::MAX if it is never referenced again.
    let mut next_use = vec![usize::MAX; n];
    let mut last_seen: HashMap<PageId, usize> = HashMap::new();
    for (i, &page) in trace.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&page) {
            next_use[i] = later;
        }
        last_seen.insert(page, i);
    }

    // Resident set: page -> next use index. A BTreeMap keyed by (next_use,
    // page) provides O(log n) victim selection.
    let mut resident: HashMap<PageId, usize> = HashMap::new();
    let mut by_next_use: std::collections::BTreeMap<(usize, PageId), ()> =
        std::collections::BTreeMap::new();
    let mut result = OptResult::default();

    for (i, &page) in trace.iter().enumerate() {
        if let Some(&old_next) = resident.get(&page) {
            // Hit: update the page's next use.
            result.hits += 1;
            by_next_use.remove(&(old_next, page));
            resident.insert(page, next_use[i]);
            by_next_use.insert((next_use[i], page), ());
            continue;
        }
        result.misses += 1;
        if resident.len() >= capacity_pages {
            // Evict the resident page referenced furthest in the future.
            let (&(victim_next, victim), ()) = by_next_use
                .iter()
                .next_back()
                .expect("resident set is non-empty");
            let _ = victim_next;
            by_next_use.remove(&(victim_next, victim));
            resident.remove(&victim);
            result.evictions += 1;
        }
        resident.insert(page, next_use[i]);
        by_next_use.insert((next_use[i], page), ());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn trace(ids: &[u64]) -> Vec<PageId> {
        ids.iter().map(|&i| p(i)).collect()
    }

    #[test]
    fn cold_misses_only_when_capacity_suffices() {
        let t = trace(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let r = simulate_opt(&t, 3);
        assert_eq!(r.misses, 3);
        assert_eq!(r.hits, 6);
        assert_eq!(r.evictions, 0);
        assert!((r.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.io_bytes(1000), 3000);
    }

    #[test]
    fn textbook_belady_example() {
        // Classic example: reference string with a 3-page buffer.
        let t = trace(&[7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]);
        let r = simulate_opt(&t, 3);
        // Belady's algorithm incurs 9 faults on this classic string.
        assert_eq!(r.misses, 9);
        assert_eq!(r.hits, 11);
    }

    #[test]
    fn opt_never_does_worse_than_any_other_policy_on_lru_adversary() {
        // Sequential flooding: LRU with capacity 3 over 1..=4 repeated gets
        // zero hits; OPT keeps some pages and does better.
        let mut ids = Vec::new();
        for _ in 0..10 {
            ids.extend_from_slice(&[1, 2, 3, 4]);
        }
        let r = simulate_opt(&trace(&ids), 3);
        assert!(r.hits > 0);
        assert!(r.misses < ids.len() as u64);
    }

    #[test]
    fn capacity_one_hits_only_on_immediate_repeats() {
        let t = trace(&[1, 1, 2, 2, 2, 1]);
        let r = simulate_opt(&t, 1);
        assert_eq!(r.hits, 3);
        assert_eq!(r.misses, 3);
    }

    #[test]
    fn larger_capacity_never_increases_misses() {
        let mut ids = Vec::new();
        for i in 0..200u64 {
            ids.push(i % 17);
            ids.push((i * 7) % 13);
        }
        let t = trace(&ids);
        let mut last = u64::MAX;
        for cap in [1usize, 2, 4, 8, 16, 32] {
            let r = simulate_opt(&t, cap);
            assert!(r.misses <= last, "OPT misses must be monotone in capacity");
            last = r.misses;
            assert_eq!(r.references(), ids.len() as u64);
        }
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = simulate_opt(&[], 4);
        assert_eq!(r, OptResult::default());
        assert_eq!(r.hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_is_rejected() {
        let _ = simulate_opt(&trace(&[1]), 0);
    }
}
