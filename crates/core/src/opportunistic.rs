//! Opportunistic CScans (Section 5, "Opportunistic CScans").
//!
//! The paper sketches a decentralized alternative to the Active Buffer
//! Manager: instead of a global scheduler, every Scan monitors which parts of
//! its remaining range are already cached and dynamically jumps to the region
//! with the most cached pages, so concurrent scans "attach" to each other
//! without central planning.
//!
//! [`OpportunisticPlanner`] implements that decision: given the scan's
//! remaining SID ranges and a predicate telling which pages are resident, it
//! scores every chunk-sized region by its cached fraction and returns the
//! best region to process next.

use scanshare_common::{PageId, RangeList, TupleRange};
use scanshare_storage::layout::TableLayout;
use scanshare_storage::snapshot::Snapshot;

/// A candidate region of a table, scored by how much of it is cached.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionScore {
    /// The region's SID range (clamped to the scan's remaining ranges).
    pub range: TupleRange,
    /// Pages of the region (for the scanned columns).
    pub total_pages: usize,
    /// Pages of the region currently resident in the buffer pool.
    pub cached_pages: usize,
}

impl RegionScore {
    /// Fraction of the region's pages that are cached.
    pub fn cached_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.cached_pages as f64 / self.total_pages as f64
        }
    }
}

/// Chooses the next region an opportunistic scan should process.
#[derive(Debug)]
pub struct OpportunisticPlanner<'a> {
    layout: &'a TableLayout,
    snapshot: &'a Snapshot,
    columns: Vec<usize>,
    region_tuples: u64,
}

impl<'a> OpportunisticPlanner<'a> {
    /// Creates a planner for a scan of `columns` under `snapshot`.
    /// `region_tuples` is the granularity at which the scan is willing to
    /// jump around (the paper suggests chunk-sized regions).
    pub fn new(
        layout: &'a TableLayout,
        snapshot: &'a Snapshot,
        columns: Vec<usize>,
        region_tuples: u64,
    ) -> Self {
        assert!(region_tuples > 0);
        Self {
            layout,
            snapshot,
            columns,
            region_tuples,
        }
    }

    /// Scores every region of the remaining ranges.
    pub fn score_regions(
        &self,
        remaining: &RangeList,
        is_cached: &dyn Fn(PageId) -> bool,
    ) -> Vec<RegionScore> {
        let mut scores = Vec::new();
        for range in remaining.ranges() {
            let mut start = range.start;
            while start < range.end {
                let end = (start + self.region_tuples).min(range.end);
                let region = TupleRange::new(start, end);
                let mut total = 0usize;
                let mut cached = 0usize;
                for &col in &self.columns {
                    if let Some((first, last)) = self.layout.page_index_range(col, &region) {
                        for idx in first..=last {
                            if let Some(page) = self.snapshot.page(col, idx) {
                                total += 1;
                                if is_cached(page) {
                                    cached += 1;
                                }
                            }
                        }
                    }
                }
                scores.push(RegionScore {
                    range: region,
                    total_pages: total,
                    cached_pages: cached,
                });
                start = end;
            }
        }
        scores
    }

    /// Picks the region with the highest cached fraction (ties broken towards
    /// the lowest start position, which degrades gracefully to a plain
    /// in-order scan when nothing is cached).
    pub fn next_region(
        &self,
        remaining: &RangeList,
        is_cached: &dyn Fn(PageId) -> bool,
    ) -> Option<TupleRange> {
        self.score_regions(remaining, is_cached)
            .into_iter()
            .max_by(|a, b| {
                a.cached_fraction()
                    .partial_cmp(&b.cached_fraction())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.range.start.cmp(&a.range.start))
            })
            .map(|score| score.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{ColumnId, SnapshotId, TableId};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::snapshot::SnapshotStore;
    use scanshare_storage::table::TableSpec;
    use std::collections::HashSet;

    fn setup() -> (TableLayout, Snapshot) {
        let spec = TableSpec::new(
            "t",
            vec![ColumnSpec::with_width("a", ColumnType::Int64, 8.0)],
            10_000,
        );
        let layout = TableLayout::new(TableId::new(0), spec, vec![ColumnId::new(0)], 1024, 1000);
        let mut store = SnapshotStore::new();
        let snapshot = store.create_base_snapshot(&layout, SnapshotId::new(0));
        (layout, snapshot)
    }

    #[test]
    fn with_a_cold_buffer_the_scan_stays_in_order() {
        let (layout, snapshot) = setup();
        let planner = OpportunisticPlanner::new(&layout, &snapshot, vec![0], 1000);
        let remaining = RangeList::single(0, 10_000);
        let next = planner.next_region(&remaining, &|_| false).unwrap();
        assert_eq!(next, TupleRange::new(0, 1000));
    }

    #[test]
    fn the_scan_jumps_to_the_most_cached_region() {
        let (layout, snapshot) = setup();
        let planner = OpportunisticPlanner::new(&layout, &snapshot, vec![0], 1000);
        let remaining = RangeList::single(0, 10_000);
        // Cache the pages of SIDs [5000, 6000): page indices 39..=46 (128 t/p).
        let cached: HashSet<PageId> = (39..=46).filter_map(|i| snapshot.page(0, i)).collect();
        let next = planner
            .next_region(&remaining, &|p| cached.contains(&p))
            .unwrap();
        assert_eq!(next, TupleRange::new(5000, 6000));

        let scores = planner.score_regions(&remaining, &|p| cached.contains(&p));
        assert_eq!(scores.len(), 10);
        let best = scores.iter().find(|s| s.range.start == 5000).unwrap();
        assert!(best.cached_fraction() > 0.8);
        let cold = scores.iter().find(|s| s.range.start == 0).unwrap();
        assert_eq!(cold.cached_pages, 0);
    }

    #[test]
    fn regions_respect_the_remaining_ranges() {
        let (layout, snapshot) = setup();
        let planner = OpportunisticPlanner::new(&layout, &snapshot, vec![0], 1000);
        let remaining =
            RangeList::from_ranges([TupleRange::new(200, 700), TupleRange::new(9_500, 10_000)]);
        let scores = planner.score_regions(&remaining, &|_| false);
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].range, TupleRange::new(200, 700));
        assert_eq!(scores[1].range, TupleRange::new(9_500, 10_000));
        // Empty remaining ranges produce no region.
        assert!(planner.next_region(&RangeList::new(), &|_| true).is_none());
    }

    #[test]
    fn fully_cached_ties_resolve_to_the_earliest_region() {
        let (layout, snapshot) = setup();
        let planner = OpportunisticPlanner::new(&layout, &snapshot, vec![0], 1000);
        let remaining = RangeList::single(0, 3000);
        let next = planner.next_region(&remaining, &|_| true).unwrap();
        assert_eq!(next.start, 0);
    }
}
