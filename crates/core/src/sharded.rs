//! A sharded page buffer with globally exact replacement decisions.
//!
//! [`ShardedPool`] is the concurrent counterpart of [`BufferPool`](crate::bufferpool::BufferPool): the page
//! table, pin counts and statistics are partitioned across N independently
//! locked shards (`shard = page id mod N`), so concurrent scans hitting warm
//! pages synchronize only on the shard that owns the page instead of on one
//! global pool lock — the serialization point the single
//! `Mutex<BufferPool>` used to be under multi-stream workloads.
//!
//! ## Why the policy is *not* partitioned
//!
//! Splitting the replacement policy itself into per-shard instances with
//! per-shard capacity would change its decisions: global LRU is not the
//! composition of shard-local LRUs (a skewed trace can overflow one shard
//! while another has room, producing misses the global policy never takes).
//! This reproduction's figures hinge on exact I/O-volume accounting, so the
//! pool keeps **one** policy instance and guarantees it observes *exactly*
//! the access sequence a single-shard pool would feed it:
//!
//! * the hot path (a hit) takes only the owning shard's lock, bumps the
//!   shard-local hit counter and **buffers** the policy callback
//!   (`on_access`, and likewise `report_scan_position`) tagged with a
//!   global sequence number;
//! * every path that *reads or decides on* policy state — misses (eviction),
//!   scan registration, prefetch — first drains all buffers and replays the
//!   events to the policy in sequence order.
//!
//! The policy therefore sees the same calls, with the same arguments, in the
//! same order, at every decision point, for every shard count: hit counts
//! and total I/O volume are byte-identical to [`BufferPool`](crate::bufferpool::BufferPool) for any
//! single-threaded trace (`tests/sharded_pool_properties.rs` asserts this
//! property over randomized traces), and misses — which pay virtual I/O
//! anyway — are the only accesses that serialize on the policy.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use scanshare_common::sync::{Mutex, MutexGuard};
use scanshare_common::{Error, PageId, Result, ScanId, VirtualInstant};
use scanshare_iosim::ReferenceTrace;
use scanshare_storage::layout::ScanPagePlan;

use crate::bufferpool::AccessOutcome;
use crate::metrics::BufferStats;
use crate::policy::{ReplacementPolicy, ScanInfo};

/// How many buffered policy events a single shard (or the report queue)
/// accumulates before forcing a drain, bounding memory on hit-only
/// workloads. Draining is order-preserving, so the threshold affects only
/// *when* the policy catches up, never *what* it observes.
const EVENT_FLUSH_THRESHOLD: usize = 1024;

/// A deferred policy callback, tagged with its global arrival sequence.
#[derive(Debug)]
enum PendingEvent {
    /// `ReplacementPolicy::on_access` from the hit fast path.
    Access {
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    },
    /// `ReplacementPolicy::report_scan_position`.
    Report {
        scan: ScanId,
        tuples_consumed: u64,
        now: VirtualInstant,
    },
}

/// One lock domain: the pages whose id hashes here, their pin counts, the
/// statistics they accumulated and the not-yet-replayed policy events.
#[derive(Debug, Default)]
struct Shard {
    resident: HashSet<PageId>,
    pinned: HashMap<PageId, u32>,
    stats: BufferStats,
    events: Vec<(u64, PendingEvent)>,
}

/// The single policy instance plus the scan-id allocator, guarded by the
/// lock every *decision* path takes (and hit paths never do).
#[derive(Debug)]
struct PoolCore {
    policy: Box<dyn ReplacementPolicy>,
    next_scan: u64,
}

/// All locks held at once, with every pending event already replayed: the
/// state a single-shard pool would be in. Shard locks are always taken in
/// ascending index order, then the report queue, then the core.
struct Locked<'a> {
    shards: Vec<MutexGuard<'a, Shard>>,
    core: MutexGuard<'a, PoolCore>,
}

/// A fixed-capacity page buffer partitioned into independently-locked
/// shards, driven by one globally consistent replacement policy.
///
/// The interface mirrors [`BufferPool`](crate::bufferpool::BufferPool) but takes `&self`: the pool is
/// shared directly between the scan threads of an engine (see
/// [`PooledBackend`](crate::backend::PooledBackend)) without an outer lock.
#[derive(Debug)]
pub struct ShardedPool {
    shards: Vec<Mutex<Shard>>,
    reports: Mutex<Vec<(u64, PendingEvent)>>,
    core: Mutex<PoolCore>,
    /// Global arrival order of deferred events.
    seq: AtomicU64,
    /// Total resident pages across shards (kept for lock-free capacity
    /// probes; the authoritative count is the sum of the shard sets).
    resident_total: AtomicUsize,
    capacity_pages: usize,
    page_size_bytes: u64,
    evict_batch: usize,
    trace: Option<Arc<ReferenceTrace>>,
    name: &'static str,
}

impl ShardedPool {
    /// Creates a pool of `capacity_pages` pages of `page_size_bytes` each,
    /// partitioned into `shards` lock domains. `shards == 1` reproduces the
    /// fully serialized [`BufferPool`](crate::bufferpool::BufferPool) behaviour (and any other shard count
    /// reproduces its *decisions* — see the module docs).
    pub fn new(
        capacity_pages: usize,
        page_size_bytes: u64,
        policy: Box<dyn ReplacementPolicy>,
        shards: usize,
    ) -> Self {
        assert!(
            capacity_pages > 0,
            "buffer pool must hold at least one page"
        );
        assert!(shards > 0, "the pool needs at least one shard");
        let name = policy.name();
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            reports: Mutex::new(Vec::new()),
            core: Mutex::new(PoolCore {
                policy,
                next_scan: 0,
            }),
            seq: AtomicU64::new(0),
            resident_total: AtomicUsize::new(0),
            capacity_pages,
            page_size_bytes,
            evict_batch: 1,
            trace: None,
            name,
        }
    }

    /// Attaches a reference-trace recorder (the OPT replay methodology, see
    /// [`BufferPool::with_trace`](crate::bufferpool::BufferPool::with_trace)).
    pub fn with_trace(mut self, trace: Arc<ReferenceTrace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Sets the eviction batch size (see
    /// [`BufferPool::with_evict_batch`](crate::bufferpool::BufferPool::with_evict_batch)).
    pub fn with_evict_batch(mut self, batch: usize) -> Self {
        self.evict_batch = batch.max(1);
        self
    }

    /// The policy's short name.
    pub fn policy_name(&self) -> &'static str {
        self.name
    }

    /// Pool capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Page size in bytes.
    pub fn page_size_bytes(&self) -> u64 {
        self.page_size_bytes
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of resident pages (across all shards).
    pub fn resident_count(&self) -> usize {
        self.resident_total.load(Ordering::Relaxed)
    }

    /// Number of unused page slots (the only capacity prefetching may use).
    pub fn free_pages(&self) -> usize {
        self.capacity_pages.saturating_sub(self.resident_count())
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.shards[self.shard_index(page)]
            .lock()
            .resident
            .contains(&page)
    }

    /// Statistics aggregated across every shard.
    pub fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for shard in &self.shards {
            total.merge(&shard.lock().stats);
        }
        total
    }

    fn shard_index(&self, page: PageId) -> usize {
        (page.raw() % self.shards.len() as u64) as usize
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Takes every lock (shards in ascending order, then reports, then the
    /// core) and replays all pending events in global arrival order, leaving
    /// the policy in exactly the state a single-shard pool would have.
    fn lock_all(&self) -> Locked<'_> {
        let mut shards: Vec<MutexGuard<'_, Shard>> = self.shards.iter().map(|s| s.lock()).collect();
        let mut pending: Vec<(u64, PendingEvent)> = std::mem::take(&mut *self.reports.lock());
        for shard in &mut shards {
            pending.append(&mut shard.events);
        }
        let mut core = self.core.lock();
        pending.sort_unstable_by_key(|(seq, _)| *seq);
        for (_, event) in pending {
            match event {
                PendingEvent::Access { page, scan, now } => core.policy.on_access(page, scan, now),
                PendingEvent::Report {
                    scan,
                    tuples_consumed,
                    now,
                } => core.policy.report_scan_position(scan, tuples_consumed, now),
            }
        }
        Locked { shards, core }
    }

    /// Drains and replays all buffered events (bounding buffer memory).
    fn drain_events(&self) {
        drop(self.lock_all());
    }

    /// Registers a scan and announces its page plan to the policy
    /// (`RegisterScan`). Returns the scan id to use in subsequent calls.
    pub fn register_scan(&self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        let mut locked = self.lock_all();
        let id = ScanId::new(locked.core.next_scan);
        locked.core.next_scan += 1;
        let info = ScanInfo {
            id,
            total_tuples: plan.total_tuples,
            distinct_pages: plan.distinct_pages(),
        };
        locked.core.policy.register_scan(&info, plan, now);
        id
    }

    /// Reports scan progress (`ReportScanPosition`). Buffered like hit-path
    /// accesses; the policy replays it in order before its next decision.
    pub fn report_scan_position(&self, scan: ScanId, tuples_consumed: u64, now: VirtualInstant) {
        let queued = {
            let mut reports = self.reports.lock();
            // The sequence number is taken under the queue lock (like the
            // hit path takes it under its shard lock) so a drain can never
            // observe a later event while an earlier one is still in flight.
            let seq = self.next_seq();
            reports.push((
                seq,
                PendingEvent::Report {
                    scan,
                    tuples_consumed,
                    now,
                },
            ));
            reports.len()
        };
        if queued >= EVENT_FLUSH_THRESHOLD {
            self.drain_events();
        }
    }

    /// Unregisters a finished scan (`UnregisterScan`).
    pub fn unregister_scan(&self, scan: ScanId, now: VirtualInstant) {
        let mut locked = self.lock_all();
        locked.core.policy.unregister_scan(scan, now);
    }

    /// Pins a page, preventing its eviction until unpinned.
    pub fn pin(&self, page: PageId) {
        let mut shard = self.shards[self.shard_index(page)].lock();
        *shard.pinned.entry(page).or_insert(0) += 1;
    }

    /// Unpins a page previously pinned.
    pub fn unpin(&self, page: PageId) {
        let mut shard = self.shards[self.shard_index(page)].lock();
        if let Some(count) = shard.pinned.get_mut(&page) {
            *count -= 1;
            if *count == 0 {
                shard.pinned.remove(&page);
            }
        }
    }

    /// Requests a page on behalf of `scan`. Hits touch only the shard owning
    /// the page; on a miss the page is admitted immediately (the caller
    /// accounts for the load time) after evicting enough unpinned pages —
    /// chosen by the shared policy, exactly as a single-shard pool would —
    /// to stay within the global capacity.
    pub fn request_page(
        &self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> Result<AccessOutcome> {
        let shard_idx = self.shard_index(page);
        let flush_after = {
            let mut shard = self.shards[shard_idx].lock();
            if let Some(trace) = &self.trace {
                trace.record(page, scan);
            }
            if !shard.resident.contains(&page) {
                drop(shard);
                return self.admit_demand(page, scan, now);
            }
            shard.stats.hits += 1;
            let seq = self.next_seq();
            shard
                .events
                .push((seq, PendingEvent::Access { page, scan, now }));
            shard.events.len() >= EVENT_FLUSH_THRESHOLD
        };
        if flush_after {
            self.drain_events();
        }
        Ok(AccessOutcome::Hit)
    }

    /// The miss path: replays pending events, evicts via the shared policy
    /// and admits `page`. The reference trace was already recorded by
    /// [`ShardedPool::request_page`].
    fn admit_demand(
        &self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> Result<AccessOutcome> {
        let mut locked = self.lock_all();
        let shard_idx = self.shard_index(page);
        if locked.shards[shard_idx].resident.contains(&page) {
            // Another thread admitted the page between our shard probe and
            // the full lock: this request is served from the pool.
            locked.shards[shard_idx].stats.hits += 1;
            locked.core.policy.on_access(page, scan, now);
            return Ok(AccessOutcome::Hit);
        }

        let mut evicted = Vec::new();
        let resident: usize = locked.shards.iter().map(|s| s.resident.len()).sum();
        if resident >= self.capacity_pages {
            let need = resident + 1 - self.capacity_pages;
            let want = need.max(self.evict_batch).min(resident);
            let mut exclude: HashSet<PageId> = locked
                .shards
                .iter()
                .flat_map(|s| s.pinned.keys().copied())
                .collect();
            exclude.insert(page);
            let victims = locked.core.policy.choose_victims(want, &exclude, now);
            for victim in victims {
                let vs = self.shard_index(victim);
                if locked.shards[vs].resident.remove(&victim) {
                    locked.core.policy.on_evict(victim);
                    locked.shards[vs].stats.evictions += 1;
                    self.resident_total.fetch_sub(1, Ordering::Relaxed);
                    evicted.push(victim);
                }
            }
            let resident: usize = locked.shards.iter().map(|s| s.resident.len()).sum();
            if resident >= self.capacity_pages {
                let pinned: usize = locked.shards.iter().map(|s| s.pinned.len()).sum();
                return Err(Error::BufferPoolTooSmall {
                    capacity_pages: self.capacity_pages,
                    required_pages: pinned + 1,
                });
            }
        }

        locked.shards[shard_idx].resident.insert(page);
        self.resident_total.fetch_add(1, Ordering::Relaxed);
        locked.core.policy.on_admit(page, now);
        locked.core.policy.on_access(page, scan, now);
        let stats = &mut locked.shards[shard_idx].stats;
        stats.misses += 1;
        stats.pages_loaded += 1;
        stats.io_bytes += self.page_size_bytes;
        Ok(AccessOutcome::Miss { evicted })
    }

    /// Asks the policy which non-resident pages to stage next, filtered
    /// against residency (see
    /// [`BufferPool::prefetch_candidates`](crate::bufferpool::BufferPool::prefetch_candidates)).
    pub fn prefetch_candidates(&self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        if budget == 0 {
            return Vec::new();
        }
        let mut locked = self.lock_all();
        let hints = locked.core.policy.prefetch_hints(now, budget);
        let mut seen = HashSet::with_capacity(hints.len());
        hints
            .into_iter()
            .filter(|p| {
                !locked.shards[self.shard_index(*p)].resident.contains(p) && seen.insert(*p)
            })
            .take(budget)
            .collect()
    }

    /// Admits `page` speculatively; counts as prefetch I/O, never evicts
    /// (see [`BufferPool::admit_prefetch`](crate::bufferpool::BufferPool::admit_prefetch)).
    pub fn admit_prefetch(&self, page: PageId, now: VirtualInstant) -> bool {
        let mut locked = self.lock_all();
        let shard_idx = self.shard_index(page);
        let resident: usize = locked.shards.iter().map(|s| s.resident.len()).sum();
        if locked.shards[shard_idx].resident.contains(&page) || resident >= self.capacity_pages {
            return false;
        }
        if let Some(trace) = &self.trace {
            trace.record_prefetch(page);
        }
        locked.shards[shard_idx].resident.insert(page);
        self.resident_total.fetch_add(1, Ordering::Relaxed);
        locked.core.policy.on_admit(page, now);
        let stats = &mut locked.shards[shard_idx].stats;
        stats.pages_loaded += 1;
        stats.io_bytes += self.page_size_bytes;
        stats.prefetched_pages += 1;
        stats.prefetch_io_bytes += self.page_size_bytes;
        true
    }

    /// Drops the listed pages if resident and unpinned, in the given order
    /// (see [`BufferPool::invalidate_pages`](crate::bufferpool::BufferPool::invalidate_pages)).
    /// All pending policy events are replayed first, so the policy observes
    /// the invalidation at exactly the same point in the event sequence a
    /// single-shard pool would.
    pub fn invalidate_pages(&self, pages: &[PageId]) -> usize {
        let mut locked = self.lock_all();
        let mut dropped = 0;
        for &page in pages {
            let shard_idx = self.shard_index(page);
            let shard = &mut locked.shards[shard_idx];
            if shard.pinned.contains_key(&page) {
                continue;
            }
            if shard.resident.remove(&page) {
                locked.core.policy.on_evict(page);
                shard.stats.invalidated_pages += 1;
                self.resident_total.fetch_sub(1, Ordering::Relaxed);
                dropped += 1;
            }
        }
        dropped
    }

    /// Drops every resident page and resets the statistics (the policy keeps
    /// its scan registrations).
    pub fn clear(&self) {
        let mut locked = self.lock_all();
        for shard in &mut locked.shards {
            for page in shard.resident.drain() {
                locked.core.policy.on_evict(page);
            }
            shard.pinned.clear();
            shard.stats = BufferStats::default();
        }
        self.resident_total.store(0, Ordering::Relaxed);
    }
}

/// The shared prefetch-window implementation drives a `ShardedPool` through
/// a shared reference: the pool's interior locks replace the `&mut`
/// exclusivity [`BufferPool`](crate::bufferpool::BufferPool) relies on.
impl crate::bufferpool::PrefetchPool for &ShardedPool {
    fn free_pages(&self) -> usize {
        ShardedPool::free_pages(self)
    }
    fn page_size_bytes(&self) -> u64 {
        ShardedPool::page_size_bytes(self)
    }
    fn prefetch_candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        ShardedPool::prefetch_candidates(self, budget, now)
    }
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        ShardedPool::admit_prefetch(self, page, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufferpool::BufferPool;
    use crate::lru::LruPolicy;
    use crate::pbm::{PbmConfig, PbmPolicy};

    fn pool(capacity: usize, shards: usize) -> ShardedPool {
        ShardedPool::new(capacity, 1024, Box::new(LruPolicy::new()), shards)
    }

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    #[test]
    fn hits_and_misses_are_counted_across_shards() {
        for shards in [1, 2, 8] {
            let pool = pool(2, shards);
            assert_eq!(pool.shard_count(), shards);
            assert!(!pool.request_page(p(1), None, now()).unwrap().is_hit());
            assert!(pool.request_page(p(1), None, now()).unwrap().is_hit());
            assert!(!pool.request_page(p(2), None, now()).unwrap().is_hit());
            let stats = pool.stats();
            assert_eq!((stats.hits, stats.misses), (1, 2), "shards {shards}");
            assert_eq!(stats.io_bytes, 2048);
            assert_eq!(pool.resident_count(), 2);
            assert_eq!(pool.free_pages(), 0);
        }
    }

    #[test]
    fn capacity_is_globally_enforced() {
        for shards in [1, 3, 8] {
            let pool = pool(3, shards);
            for i in 0..10 {
                pool.request_page(p(i), None, now()).unwrap();
                assert!(pool.resident_count() <= 3, "shards {shards}");
            }
            assert_eq!(pool.stats().evictions, 7, "shards {shards}");
        }
    }

    #[test]
    fn lru_eviction_order_is_global_not_per_shard() {
        // Pages 1 and 3 share shard 1 of 2; page 2 lives in shard 0. A
        // per-shard LRU with split capacity would evict 1 to admit 3; the
        // globally exact policy evicts 2, the least recently used page.
        let pool = pool(2, 2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.request_page(p(2), None, now()).unwrap();
        pool.request_page(p(1), None, now()).unwrap();
        let outcome = pool.request_page(p(3), None, now()).unwrap();
        assert_eq!(
            outcome,
            AccessOutcome::Miss {
                evicted: vec![p(2)]
            }
        );
        assert!(pool.contains(p(1)));
        assert!(!pool.contains(p(2)));
        assert!(pool.contains(p(3)));
    }

    #[test]
    fn pinned_pages_survive_eviction_and_exhaust_the_pool() {
        let pool = pool(2, 4);
        pool.request_page(p(1), None, now()).unwrap();
        pool.pin(p(1));
        pool.request_page(p(2), None, now()).unwrap();
        pool.request_page(p(3), None, now()).unwrap();
        assert!(pool.contains(p(1)), "pinned page survived");
        pool.pin(p(3));
        let err = pool.request_page(p(4), None, now()).unwrap_err();
        assert!(matches!(err, Error::BufferPoolTooSmall { .. }));
        pool.unpin(p(1));
        pool.request_page(p(4), None, now()).unwrap();
        assert!(!pool.contains(p(1)));
    }

    #[test]
    fn trace_records_every_request_in_order() {
        let trace = Arc::new(ReferenceTrace::new());
        let pool =
            ShardedPool::new(2, 1024, Box::new(LruPolicy::new()), 4).with_trace(Arc::clone(&trace));
        pool.request_page(p(5), Some(ScanId::new(9)), now())
            .unwrap();
        pool.request_page(p(6), None, now()).unwrap();
        pool.request_page(p(5), None, now()).unwrap();
        assert_eq!(trace.pages(), vec![p(5), p(6), p(5)]);
        assert_eq!(trace.snapshot()[0].scan, Some(ScanId::new(9)));
    }

    #[test]
    fn invalidation_matches_bufferpool_and_respects_pins() {
        for shards in [1, 2, 8] {
            let pool = pool(4, shards);
            for i in 0..4 {
                pool.request_page(p(i), None, now()).unwrap();
            }
            pool.pin(p(3));
            let dropped = pool.invalidate_pages(&[p(0), p(1), p(3), p(7)]);
            assert_eq!(dropped, 2, "shards {shards}");
            assert_eq!(pool.resident_count(), 2, "shards {shards}");
            assert!(pool.contains(p(2)) && pool.contains(p(3)));
            let stats = pool.stats();
            assert_eq!(stats.invalidated_pages, 2, "shards {shards}");
            assert_eq!(stats.evictions, 0, "shards {shards}");
            // Invalidated pages are gone from the policy too: re-requesting
            // them misses and the LRU order continues from the survivors.
            assert!(!pool.request_page(p(0), None, now()).unwrap().is_hit());
        }
    }

    #[test]
    fn clear_resets_contents_and_stats() {
        let pool = pool(4, 2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.request_page(p(2), None, now()).unwrap();
        pool.clear();
        assert_eq!(pool.resident_count(), 0);
        assert_eq!(pool.stats(), BufferStats::default());
        assert!(!pool.request_page(p(1), None, now()).unwrap().is_hit());
    }

    #[test]
    fn prefetch_admissions_fill_free_capacity_only() {
        let pool = pool(2, 2);
        assert!(pool.admit_prefetch(p(1), now()));
        assert!(!pool.admit_prefetch(p(1), now()), "already resident");
        assert!(pool.admit_prefetch(p(2), now()));
        assert!(!pool.admit_prefetch(p(3), now()), "pool is full");
        let stats = pool.stats();
        assert_eq!(stats.prefetched_pages, 2);
        assert_eq!(stats.prefetch_io_bytes, 2048);
        assert_eq!(stats.evictions, 0);
        // The demand access that consumes a prefetched page is a hit.
        assert!(pool.request_page(p(1), None, now()).unwrap().is_hit());
    }

    #[test]
    fn buffered_events_are_replayed_before_decisions() {
        // Hit page 1 repeatedly (buffered, no policy lock), then force an
        // eviction: the policy must know 1 is the most recent and evict 2.
        let pool = pool(2, 2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.request_page(p(2), None, now()).unwrap();
        for _ in 0..10 {
            pool.request_page(p(1), None, now()).unwrap();
        }
        let outcome = pool.request_page(p(3), None, now()).unwrap();
        assert_eq!(
            outcome,
            AccessOutcome::Miss {
                evicted: vec![p(2)]
            }
        );
    }

    #[test]
    fn event_buffers_are_bounded_on_hit_only_workloads() {
        let pool = pool(4, 2);
        pool.request_page(p(0), None, now()).unwrap();
        for _ in 0..(3 * EVENT_FLUSH_THRESHOLD) {
            pool.request_page(p(0), None, now()).unwrap();
        }
        let buffered: usize = pool.shards.iter().map(|s| s.lock().events.len()).sum();
        assert!(
            buffered < EVENT_FLUSH_THRESHOLD,
            "buffers must drain periodically (held {buffered})"
        );
        // Reports are bounded the same way.
        for i in 0..(2 * EVENT_FLUSH_THRESHOLD) {
            pool.report_scan_position(ScanId::new(0), i as u64, now());
        }
        assert!(pool.reports.lock().len() < EVENT_FLUSH_THRESHOLD);
    }

    /// Replays the same scan-flavoured trace through `BufferPool` and
    /// through `ShardedPool` at several shard counts: every outcome and
    /// every counter must match exactly.
    #[test]
    fn matches_bufferpool_exactly_for_pbm_scan_traces() {
        let make_policy = || -> Box<dyn ReplacementPolicy> {
            Box::new(PbmPolicy::new(PbmConfig {
                default_scan_speed: 1000.0,
                ..Default::default()
            }))
        };
        let plan = |pages: &[u64]| -> ScanPagePlan {
            use scanshare_common::{ColumnId, TupleRange};
            use scanshare_storage::layout::PageDescriptor;
            ScanPagePlan {
                table: scanshare_common::TableId::new(0),
                total_tuples: pages.len() as u64 * 100,
                pages: pages
                    .iter()
                    .enumerate()
                    .map(|(i, &page)| PageDescriptor {
                        page: p(page),
                        column: ColumnId::new(0),
                        column_index: 0,
                        sid_range: TupleRange::new(i as u64 * 100, (i + 1) as u64 * 100),
                        tuples_behind: i as u64 * 100,
                        tuple_count: 100,
                    })
                    .collect(),
            }
        };
        let pages: Vec<u64> = (0..12).collect();

        let mut reference = BufferPool::new(4, 1024, make_policy());
        let run_ref = |pool: &mut BufferPool| {
            let mut outcomes = Vec::new();
            let scan = pool.register_scan(&plan(&pages), now());
            let mut consumed = 0;
            for &page in &pages {
                outcomes.push(pool.request_page(p(page), Some(scan), now()).unwrap());
                consumed += 100;
                pool.report_scan_position(scan, consumed, now());
            }
            pool.unregister_scan(scan, now());
            outcomes
        };
        let expected_outcomes = run_ref(&mut reference);
        let expected_stats = reference.stats();

        for shards in [1, 2, 8] {
            let pool = ShardedPool::new(4, 1024, make_policy(), shards);
            let mut outcomes = Vec::new();
            let scan = pool.register_scan(&plan(&pages), now());
            let mut consumed = 0;
            for &page in &pages {
                outcomes.push(pool.request_page(p(page), Some(scan), now()).unwrap());
                consumed += 100;
                pool.report_scan_position(scan, consumed, now());
            }
            pool.unregister_scan(scan, now());
            assert_eq!(outcomes, expected_outcomes, "shards {shards}");
            assert_eq!(pool.stats(), expected_stats, "shards {shards}");
        }
    }

    #[test]
    fn concurrent_hammering_keeps_global_invariants() {
        let pool = Arc::new(pool(16, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut x = t + 1;
                    for _ in 0..2000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let page = p((x >> 33) % 64);
                        pool.request_page(page, None, now()).unwrap();
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 2000);
        assert_eq!(stats.io_bytes, stats.pages_loaded * 1024);
        assert!(pool.resident_count() <= 16);
        // The resident counter agrees with the shard sets.
        let exact: usize = pool.shards.iter().map(|s| s.lock().resident.len()).sum();
        assert_eq!(pool.resident_count(), exact);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_is_rejected() {
        let _ = pool(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        let _ = pool(4, 0);
    }
}
