//! Predictive Buffer Management (PBM).
//!
//! PBM is the paper's main contribution: a buffer-replacement policy that
//! approximates the OPT oracle by *predicting* when each page will next be
//! consumed. Scans register the pages they are going to read together with
//! the number of tuples they must process before reaching each page
//! (`RegisterScan`, Figure 9), periodically report their position and speed
//! (`ReportScanPosition`), and unregister when done. The estimated time of
//! next consumption of a page is
//!
//! ```text
//! next_consumption(page) = min over scans s that still need the page of
//!     (tuples_behind(s, page) - tuples_consumed(s)) / speed(s)
//! ```
//!
//! Pages are kept in a **timeline of buckets** (Figure 10): `n` groups of `m`
//! buckets, where the time range covered by a bucket doubles with every
//! group, so a bounded number of buckets covers an exponentially long
//! horizon with O(1) insertion and O(1) (amortized) aging. Pages not needed
//! by any registered scan live in a separate *not requested* bucket kept in
//! LRU order. Eviction takes pages from the not-requested bucket first, then
//! from the requested buckets furthest in the future.

use std::collections::{HashMap, HashSet, VecDeque};

use scanshare_common::{PageId, ScanId, VirtualDuration, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

use crate::policy::{ReplacementPolicy, ScanInfo};

/// Tuning knobs of the Predictive Buffer Manager.
#[derive(Debug, Clone, PartialEq)]
pub struct PbmConfig {
    /// Length of the finest bucket (the paper's `time_slice`, 100 ms in its
    /// example).
    pub time_slice: VirtualDuration,
    /// Number of bucket groups (`n`). The time range length doubles with
    /// every successive group.
    pub bucket_groups: usize,
    /// Buckets per group (`m`).
    pub buckets_per_group: usize,
    /// Speed (tuples per second) assumed for a scan before its first
    /// progress report.
    pub default_scan_speed: f64,
}

impl Default for PbmConfig {
    fn default() -> Self {
        Self {
            time_slice: VirtualDuration::from_millis(100),
            bucket_groups: 10,
            buckets_per_group: 10,
            default_scan_speed: 100_000_000.0,
        }
    }
}

impl PbmConfig {
    /// Total number of requested-page buckets.
    pub fn total_buckets(&self) -> usize {
        self.bucket_groups * self.buckets_per_group
    }

    /// The largest future horizon (in slices) the bucket timeline can
    /// distinguish; anything further lands in the last bucket.
    pub fn horizon_slices(&self) -> u64 {
        let m = self.buckets_per_group as u64;
        (0..self.bucket_groups as u64)
            .map(|g| m * (1u64 << g))
            .sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Not in the buffer pool; only interest metadata is kept.
    NotResident,
    /// Resident and wanted by at least one scan; the payload is the bucket
    /// index on the timeline.
    Requested(usize),
    /// Resident but not wanted by any registered scan (kept in LRU order).
    NotRequested,
}

#[derive(Debug, Default)]
struct PageMeta {
    /// Scans that will consume this page, with the number of tuples each
    /// must process before reaching it (`page.consuming_scans` in Figure 9).
    consuming: HashMap<ScanId, u64>,
    state: Option<PageState>,
    lru_stamp: u64,
}

impl PageMeta {
    fn state(&self) -> PageState {
        self.state.unwrap_or(PageState::NotResident)
    }
    fn is_resident(&self) -> bool {
        !matches!(self.state(), PageState::NotResident)
    }
}

#[derive(Debug)]
struct ScanState {
    tuples_consumed: u64,
    total_tuples: u64,
    speed_tps: f64,
    registered_at: VirtualInstant,
    pages: Vec<PageId>,
}

/// The Predictive Buffer Management replacement policy.
#[derive(Debug)]
pub struct PbmPolicy {
    config: PbmConfig,
    scans: HashMap<ScanId, ScanState>,
    pages: HashMap<PageId, PageMeta>,
    /// Requested buckets; index 0 is the nearest future.
    buckets: Vec<HashSet<PageId>>,
    /// LRU queue (with lazy deletion) for the "not requested" bucket.
    not_requested: VecDeque<(PageId, u64)>,
    next_stamp: u64,
    /// Number of whole time slices already applied by `refresh`.
    refreshed_slices: u64,
}

impl Default for PbmPolicy {
    fn default() -> Self {
        Self::new(PbmConfig::default())
    }
}

impl PbmPolicy {
    /// Creates a PBM policy with the given configuration.
    pub fn new(config: PbmConfig) -> Self {
        assert!(config.bucket_groups > 0 && config.buckets_per_group > 0);
        assert!(config.time_slice > VirtualDuration::ZERO);
        assert!(config.default_scan_speed > 0.0);
        let total = config.total_buckets();
        Self {
            config,
            scans: HashMap::new(),
            pages: HashMap::new(),
            buckets: (0..total).map(|_| HashSet::new()).collect(),
            not_requested: VecDeque::new(),
            next_stamp: 0,
            refreshed_slices: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PbmConfig {
        &self.config
    }

    /// Number of registered scans.
    pub fn registered_scans(&self) -> usize {
        self.scans.len()
    }

    /// Number of resident pages currently in requested buckets.
    pub fn requested_pages(&self) -> usize {
        self.buckets.iter().map(HashSet::len).sum()
    }

    /// Number of resident pages currently in the not-requested bucket.
    pub fn not_requested_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|m| m.state() == PageState::NotRequested)
            .count()
    }

    /// The bucket index a page with `next_consumption` `d` in the future is
    /// assigned to (`TimeToBucketNumber`).
    pub fn bucket_index(&self, d: VirtualDuration) -> usize {
        let ts = self.config.time_slice.as_nanos().max(1);
        let slices = d.as_nanos() / ts;
        let m = self.config.buckets_per_group as u64;
        let mut idx = 0u64;
        let mut remaining = slices;
        for g in 0..self.config.bucket_groups as u64 {
            let len = 1u64 << g;
            let span = m * len;
            if remaining < span {
                return (idx + remaining / len) as usize;
            }
            remaining -= span;
            idx += m;
        }
        self.config.total_buckets() - 1
    }

    /// Estimated time until the next consumption of `page`
    /// (`PageNextConsumption`): the minimum over all scans that registered
    /// the page. Returns `None` when no registered scan needs the page.
    pub fn next_consumption(&self, page: PageId) -> Option<VirtualDuration> {
        let meta = self.pages.get(&page)?;
        let mut nearest: Option<f64> = None;
        for (scan_id, &tuples_behind) in &meta.consuming {
            let Some(scan) = self.scans.get(scan_id) else {
                continue;
            };
            let remaining = tuples_behind.saturating_sub(scan.tuples_consumed) as f64;
            let secs = remaining / scan.speed_tps.max(1.0);
            nearest = Some(match nearest {
                Some(cur) => cur.min(secs),
                None => secs,
            });
        }
        nearest.map(VirtualDuration::from_secs_f64)
    }

    fn remove_from_current_bucket(&mut self, page: PageId) {
        if let Some(meta) = self.pages.get(&page) {
            if let PageState::Requested(idx) = meta.state() {
                self.buckets[idx].remove(&page);
            }
        }
    }

    /// Re-computes the priority of a resident page and places it in the
    /// appropriate bucket (`PagePush`).
    fn page_push(&mut self, page: PageId, _now: VirtualInstant) {
        self.remove_from_current_bucket(page);
        let next = self.next_consumption(page);
        self.pages.entry(page).or_default();
        match next {
            None => {
                let stamp = self.next_stamp;
                self.next_stamp += 1;
                let meta = self.pages.get_mut(&page).expect("meta exists");
                meta.state = Some(PageState::NotRequested);
                meta.lru_stamp = stamp;
                self.not_requested.push_back((page, stamp));
            }
            Some(d) => {
                let idx = self.bucket_index(d);
                let meta = self.pages.get_mut(&page).expect("meta exists");
                meta.state = Some(PageState::Requested(idx));
                self.buckets[idx].insert(page);
            }
        }
    }

    /// Ages the bucket timeline (`RefreshRequestedBuckets`): every
    /// `time_slice` the nearest buckets shift one position towards "now";
    /// a bucket in group `g` shifts every `2^g` slices. Pages that fall off
    /// the front get their priority recalculated.
    fn refresh(&mut self, now: VirtualInstant) {
        let ts = self.config.time_slice.as_nanos().max(1);
        let target_slices = now.as_nanos() / ts;
        if target_slices <= self.refreshed_slices {
            return;
        }
        let m = self.config.buckets_per_group;
        let n = self.config.bucket_groups;
        for slice in self.refreshed_slices + 1..=target_slices {
            // How many whole groups shift at this tick (always a prefix).
            let mut shifted_groups = 0usize;
            for g in 0..n {
                if slice % (1u64 << g) == 0 {
                    shifted_groups = g + 1;
                } else {
                    break;
                }
            }
            let k = shifted_groups * m;
            if k == 0 {
                continue;
            }
            // Bucket 0 falls off the timeline; its pages are re-pushed below.
            let overflow: Vec<PageId> = self.buckets[0].drain().collect();
            for i in 1..k {
                let set = std::mem::take(&mut self.buckets[i]);
                for &page in &set {
                    if let Some(meta) = self.pages.get_mut(&page) {
                        meta.state = Some(PageState::Requested(i - 1));
                    }
                }
                self.buckets[i - 1] = set;
            }
            self.buckets[k - 1] = HashSet::new();
            self.refreshed_slices = slice;
            for page in overflow {
                self.page_push(page, now);
            }
        }
        self.refreshed_slices = target_slices;
    }

    fn pop_not_requested(&mut self, exclude: &HashSet<PageId>) -> Option<PageId> {
        let mut skipped = Vec::new();
        let mut found = None;
        while let Some((page, stamp)) = self.not_requested.pop_front() {
            let valid = self
                .pages
                .get(&page)
                .map(|m| m.state() == PageState::NotRequested && m.lru_stamp == stamp)
                .unwrap_or(false);
            if !valid {
                continue;
            }
            if exclude.contains(&page) {
                skipped.push((page, stamp));
                continue;
            }
            found = Some(page);
            break;
        }
        for entry in skipped.into_iter().rev() {
            self.not_requested.push_front(entry);
        }
        found
    }
}

impl ReplacementPolicy for PbmPolicy {
    fn name(&self) -> &'static str {
        "pbm"
    }

    fn register_scan(&mut self, info: &ScanInfo, plan: &ScanPagePlan, now: VirtualInstant) {
        let mut page_list = Vec::with_capacity(plan.pages.len());
        for desc in &plan.pages {
            let meta = self.pages.entry(desc.page).or_default();
            // A page may be registered once per column; the scan needs it as
            // soon as it reaches the *earliest* of those positions.
            let entry = meta.consuming.entry(info.id).or_insert(desc.tuples_behind);
            *entry = (*entry).min(desc.tuples_behind);
            page_list.push(desc.page);
        }
        page_list.sort_unstable();
        page_list.dedup();
        self.scans.insert(
            info.id,
            ScanState {
                tuples_consumed: 0,
                total_tuples: info.total_tuples,
                speed_tps: self.config.default_scan_speed,
                registered_at: now,
                pages: page_list.clone(),
            },
        );
        // Re-prioritize the pages of this scan that are already resident.
        for page in page_list {
            if self
                .pages
                .get(&page)
                .map(|m| m.is_resident())
                .unwrap_or(false)
            {
                self.page_push(page, now);
            }
        }
    }

    fn report_scan_position(&mut self, scan: ScanId, tuples_consumed: u64, now: VirtualInstant) {
        self.refresh(now);
        if let Some(state) = self.scans.get_mut(&scan) {
            state.tuples_consumed = tuples_consumed.min(state.total_tuples);
            let elapsed = now.since(state.registered_at).as_secs_f64();
            if elapsed > 0.0 && tuples_consumed > 0 {
                state.speed_tps = tuples_consumed as f64 / elapsed;
            }
        }
    }

    fn unregister_scan(&mut self, scan: ScanId, now: VirtualInstant) {
        let Some(state) = self.scans.remove(&scan) else {
            return;
        };
        for page in state.pages {
            let mut resident = false;
            let mut remove_meta = false;
            if let Some(meta) = self.pages.get_mut(&page) {
                meta.consuming.remove(&scan);
                resident = meta.is_resident();
                remove_meta = meta.consuming.is_empty() && !resident;
            }
            if resident {
                self.page_push(page, now);
            } else if remove_meta {
                self.pages.remove(&page);
            }
        }
    }

    fn on_access(&mut self, page: PageId, scan: Option<ScanId>, now: VirtualInstant) {
        // A consumption by the registered scan removes that scan's interest
        // in the page (it will not read it again) and re-prioritizes it.
        let mut changed = false;
        if let Some(scan) = scan {
            if let Some(meta) = self.pages.get_mut(&page) {
                changed = meta.consuming.remove(&scan).is_some();
            }
        }
        let resident = self
            .pages
            .get(&page)
            .map(|m| m.is_resident())
            .unwrap_or(false);
        if resident && (changed || scan.is_none()) {
            self.page_push(page, now);
        }
    }

    fn on_admit(&mut self, page: PageId, now: VirtualInstant) {
        self.refresh(now);
        self.pages.entry(page).or_default();
        self.page_push(page, now);
    }

    fn on_evict(&mut self, page: PageId) {
        self.remove_from_current_bucket(page);
        let remove = if let Some(meta) = self.pages.get_mut(&page) {
            meta.state = Some(PageState::NotResident);
            meta.consuming.is_empty()
        } else {
            false
        };
        if remove {
            self.pages.remove(&page);
        }
    }

    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        now: VirtualInstant,
    ) -> Vec<PageId> {
        self.refresh(now);
        let mut victims = Vec::with_capacity(count);
        // 1. Pages not requested by any scan, in LRU order.
        while victims.len() < count {
            match self.pop_not_requested(exclude) {
                Some(page) => victims.push(page),
                None => break,
            }
        }
        // 2. Requested pages with the furthest estimated consumption time.
        //    Candidates within a bucket are taken in page-id order so that
        //    victim selection (and therefore every experiment) is
        //    deterministic.
        if victims.len() < count {
            for idx in (0..self.buckets.len()).rev() {
                if victims.len() >= count {
                    break;
                }
                if self.buckets[idx].is_empty() {
                    continue;
                }
                let mut candidates: Vec<PageId> = self.buckets[idx]
                    .iter()
                    .copied()
                    .filter(|p| !exclude.contains(p))
                    .collect();
                candidates.sort_unstable();
                for page in candidates {
                    if victims.len() >= count {
                        break;
                    }
                    victims.push(page);
                }
            }
        }
        victims
    }

    /// PBM prefetching: the same next-consumption estimates that rank
    /// eviction victims (furthest first) rank prefetch candidates *nearest*
    /// first. Returns the up-to-`budget` non-resident pages some registered
    /// scan will consume soonest, ties broken by page id for determinism.
    fn prefetch_hints(&mut self, now: VirtualInstant, budget: usize) -> Vec<PageId> {
        if budget == 0 {
            return Vec::new();
        }
        self.refresh(now);
        let mut candidates: Vec<(u64, PageId)> = self
            .pages
            .iter()
            .filter(|(_, meta)| !meta.is_resident() && !meta.consuming.is_empty())
            .filter_map(|(&page, _)| self.next_consumption(page).map(|d| (d.as_nanos(), page)))
            .collect();
        // Partial selection: only the `budget` nearest candidates need
        // ordering, so avoid a full sort of every tracked page.
        if budget < candidates.len() {
            candidates.select_nth_unstable(budget - 1);
            candidates.truncate(budget);
        }
        candidates.sort_unstable();
        candidates.into_iter().map(|(_, page)| page).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{ColumnId, TableId, TupleRange};
    use scanshare_storage::layout::PageDescriptor;

    fn now_ms(ms: u64) -> VirtualInstant {
        VirtualInstant::from_nanos(ms * 1_000_000)
    }

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    /// Builds a single-column scan plan over `pages` of `tuples_per_page`
    /// tuples each.
    fn plan(pages: &[u64], tuples_per_page: u64) -> ScanPagePlan {
        let descs = pages
            .iter()
            .enumerate()
            .map(|(i, &page)| PageDescriptor {
                page: p(page),
                column: ColumnId::new(0),
                column_index: 0,
                sid_range: TupleRange::new(
                    i as u64 * tuples_per_page,
                    (i as u64 + 1) * tuples_per_page,
                ),
                tuples_behind: i as u64 * tuples_per_page,
                tuple_count: tuples_per_page,
            })
            .collect();
        ScanPagePlan {
            table: TableId::new(0),
            total_tuples: pages.len() as u64 * tuples_per_page,
            pages: descs,
        }
    }

    fn pbm_with_speed(speed: f64) -> PbmPolicy {
        PbmPolicy::new(PbmConfig {
            default_scan_speed: speed,
            ..Default::default()
        })
    }

    fn register(pbm: &mut PbmPolicy, id: u64, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        let sid = ScanId::new(id);
        let info = ScanInfo {
            id: sid,
            total_tuples: plan.total_tuples,
            distinct_pages: plan.distinct_pages(),
        };
        pbm.register_scan(&info, plan, now);
        sid
    }

    #[test]
    fn bucket_index_is_monotone_and_respects_group_lengths() {
        let pbm = PbmPolicy::new(PbmConfig {
            time_slice: VirtualDuration::from_millis(100),
            bucket_groups: 3,
            buckets_per_group: 2,
            ..Default::default()
        });
        // Group 0: buckets 0,1 of 100ms each; group 1: buckets 2,3 of 200ms;
        // group 2: buckets 4,5 of 400ms.
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(0)), 0);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(99)), 0);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(100)), 1);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(200)), 2);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(399)), 2);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(400)), 3);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(600)), 4);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(999)), 4);
        assert_eq!(pbm.bucket_index(VirtualDuration::from_millis(1000)), 5);
        // Far beyond the horizon still lands in the last bucket.
        assert_eq!(pbm.bucket_index(VirtualDuration::from_secs(3600)), 5);
        // Monotonicity.
        let mut last = 0;
        for ms in (0..2000).step_by(10) {
            let idx = pbm.bucket_index(VirtualDuration::from_millis(ms));
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn next_consumption_uses_nearest_interested_scan() {
        // Speed: 1000 tuples/sec so 100 tuples = 100ms.
        let mut pbm = pbm_with_speed(1000.0);
        let pl = plan(&[1, 2, 3], 100);
        let s1 = register(&mut pbm, 1, &pl, now_ms(0));
        // A second scan that is further behind page 3 does not matter; the
        // nearest consumer defines the estimate.
        let pl2 = plan(&[3], 100);
        let _s2 = register(&mut pbm, 2, &pl2, now_ms(0));

        // Within scan 1: page 1 is needed before page 2.
        let d1 = pbm.next_consumption(p(1)).unwrap();
        let d2 = pbm.next_consumption(p(2)).unwrap();
        assert!(d1 < d2);
        // Page 3: scan 1 needs it after 200 tuples (200ms), scan 2 needs it
        // immediately — the *nearest* consumer defines the estimate.
        let d3 = pbm.next_consumption(p(3)).unwrap();
        assert_eq!(pbm.bucket_index(d3), 0);
        assert!(d3 < VirtualDuration::from_millis(200));

        // After scan 1 consumed 150 tuples, page 2 is only 50 tuples away.
        pbm.report_scan_position(s1, 150, now_ms(150));
        let d2 = pbm.next_consumption(p(2)).unwrap();
        assert!(d2 <= VirtualDuration::from_millis(60));
        assert_eq!(pbm.next_consumption(p(99)), None);
    }

    #[test]
    fn eviction_prefers_not_requested_then_furthest_requested() {
        let mut pbm = pbm_with_speed(1000.0);
        let pl = plan(&[1, 2, 3], 1000); // 1 second of work per page
        register(&mut pbm, 1, &pl, now_ms(0));
        // Admit pages 1..3 (requested) and 10 (not requested by any scan).
        for page in [1, 2, 3, 10] {
            pbm.on_admit(p(page), now_ms(0));
        }
        assert_eq!(pbm.not_requested_pages(), 1);
        assert_eq!(pbm.requested_pages(), 3);

        let victims = pbm.choose_victims(2, &HashSet::new(), now_ms(0));
        // First the unrequested page, then the requested page needed last.
        assert_eq!(victims[0], p(10));
        assert_eq!(victims[1], p(3));
    }

    #[test]
    fn consumed_pages_lose_the_consuming_scans_interest() {
        let mut pbm = pbm_with_speed(1000.0);
        let pl = plan(&[1, 2], 100);
        let s = register(&mut pbm, 1, &pl, now_ms(0));
        pbm.on_admit(p(1), now_ms(0));
        pbm.on_admit(p(2), now_ms(0));
        assert_eq!(pbm.not_requested_pages(), 0);
        // Scan consumes page 1: it becomes "not requested".
        pbm.on_access(p(1), Some(s), now_ms(10));
        assert_eq!(pbm.not_requested_pages(), 1);
        let victims = pbm.choose_victims(1, &HashSet::new(), now_ms(10));
        assert_eq!(victims, vec![p(1)]);
    }

    #[test]
    fn unregister_scan_demotes_its_pages_to_lru() {
        let mut pbm = pbm_with_speed(1000.0);
        let pl = plan(&[1, 2], 100);
        let s = register(&mut pbm, 1, &pl, now_ms(0));
        pbm.on_admit(p(1), now_ms(0));
        pbm.on_admit(p(2), now_ms(0));
        pbm.unregister_scan(s, now_ms(5));
        assert_eq!(pbm.registered_scans(), 0);
        assert_eq!(pbm.requested_pages(), 0);
        assert_eq!(pbm.not_requested_pages(), 2);
        // Non-resident page metadata of the finished scan is dropped.
        let mut pbm2 = pbm_with_speed(1000.0);
        let s2 = register(&mut pbm2, 7, &plan(&[5], 10), now_ms(0));
        pbm2.unregister_scan(s2, now_ms(0));
        assert!(pbm2.pages.is_empty());
    }

    #[test]
    fn two_scans_same_page_keeps_interest_after_one_finishes() {
        let mut pbm = pbm_with_speed(1000.0);
        let s1 = register(&mut pbm, 1, &plan(&[7], 100), now_ms(0));
        let _s2 = register(&mut pbm, 2, &plan(&[7], 100), now_ms(0));
        pbm.on_admit(p(7), now_ms(0));
        pbm.on_access(p(7), Some(s1), now_ms(1));
        // Scan 2 still wants it: the page must stay in a requested bucket.
        assert_eq!(pbm.requested_pages(), 1);
        assert_eq!(pbm.not_requested_pages(), 0);
    }

    #[test]
    fn faster_reported_speed_moves_pages_to_nearer_buckets() {
        let mut pbm = pbm_with_speed(100.0); // very slow default: 100 tuples/s
        let s = register(&mut pbm, 1, &plan(&[1, 2, 3, 4], 100), now_ms(0));
        pbm.on_admit(p(4), now_ms(0));
        let before = match pbm.pages[&p(4)].state() {
            PageState::Requested(idx) => idx,
            other => panic!("unexpected state {other:?}"),
        };
        // After 100ms the scan has done 200 tuples: 2000 tuples/sec.
        pbm.report_scan_position(s, 200, now_ms(100));
        pbm.on_admit(p(4), now_ms(100)); // re-push via admit path
        let after = match pbm.pages[&p(4)].state() {
            PageState::Requested(idx) => idx,
            other => panic!("unexpected state {other:?}"),
        };
        assert!(
            after < before,
            "higher speed => sooner consumption => nearer bucket"
        );
    }

    #[test]
    fn refresh_shifts_pages_towards_the_present() {
        let config = PbmConfig {
            time_slice: VirtualDuration::from_millis(100),
            bucket_groups: 2,
            buckets_per_group: 2,
            default_scan_speed: 1000.0,
        };
        let mut pbm = PbmPolicy::new(config);
        // Buckets: 0:[0,100ms) 1:[100,200) 2:[200,400) 3:[400,800). Page 3 is
        // needed after 200 tuples (200ms) and page 4 after 300 tuples (300ms),
        // so both land in bucket 2.
        register(&mut pbm, 1, &plan(&[1, 2, 3, 4], 100), now_ms(0));
        pbm.on_admit(p(4), now_ms(0));
        assert_eq!(pbm.pages[&p(4)].state(), PageState::Requested(2));
        pbm.on_admit(p(3), now_ms(0));
        assert_eq!(pbm.pages[&p(3)].state(), PageState::Requested(2));

        // After 200ms of virtual time the timeline has aged two slices: the
        // page that was ~200ms away is now imminent.
        pbm.refresh(now_ms(200));
        let idx3 = match pbm.pages[&p(3)].state() {
            PageState::Requested(idx) => idx,
            other => panic!("unexpected {other:?}"),
        };
        let idx4 = match pbm.pages[&p(4)].state() {
            PageState::Requested(idx) => idx,
            other => panic!("unexpected {other:?}"),
        };
        assert!(idx3 < 2, "page 3 moved towards the present (bucket {idx3})");
        assert!(idx4 <= 3 && idx4 >= idx3);
    }

    #[test]
    fn refresh_overflow_pages_are_reprioritized_not_lost() {
        let config = PbmConfig {
            time_slice: VirtualDuration::from_millis(100),
            bucket_groups: 2,
            buckets_per_group: 2,
            default_scan_speed: 1_000_000.0,
        };
        let mut pbm = PbmPolicy::new(config);
        register(&mut pbm, 1, &plan(&[1], 100), now_ms(0));
        pbm.on_admit(p(1), now_ms(0));
        assert_eq!(pbm.requested_pages(), 1);
        // Let a lot of virtual time pass; the page keeps being tracked.
        pbm.refresh(now_ms(10_000));
        assert_eq!(pbm.requested_pages() + pbm.not_requested_pages(), 1);
        let victims = pbm.choose_victims(1, &HashSet::new(), now_ms(10_000));
        assert_eq!(victims, vec![p(1)]);
    }

    #[test]
    fn excluded_pages_are_never_chosen() {
        let mut pbm = pbm_with_speed(1000.0);
        register(&mut pbm, 1, &plan(&[1, 2], 100), now_ms(0));
        pbm.on_admit(p(1), now_ms(0));
        pbm.on_admit(p(2), now_ms(0));
        let exclude: HashSet<PageId> = [p(1), p(2)].into_iter().collect();
        assert!(pbm.choose_victims(2, &exclude, now_ms(0)).is_empty());
        let exclude: HashSet<PageId> = [p(2)].into_iter().collect();
        assert_eq!(pbm.choose_victims(2, &exclude, now_ms(0)), vec![p(1)]);
    }

    #[test]
    fn not_requested_pages_are_evicted_in_lru_order() {
        let mut pbm = pbm_with_speed(1000.0);
        for page in [10, 11, 12] {
            pbm.on_admit(p(page), now_ms(0));
        }
        // Touch page 10 so it becomes the most recently used.
        pbm.on_access(p(10), None, now_ms(1));
        let victims = pbm.choose_victims(2, &HashSet::new(), now_ms(1));
        assert_eq!(victims, vec![p(11), p(12)]);
    }

    #[test]
    fn prefetch_hints_rank_nonresident_pages_by_next_consumption() {
        let mut pbm = pbm_with_speed(1000.0);
        let s = register(&mut pbm, 1, &plan(&[1, 2, 3, 4], 100), now_ms(0));
        // Page 2 is already resident: it must not be hinted.
        pbm.on_admit(p(2), now_ms(0));
        let hints = pbm.prefetch_hints(now_ms(0), 2);
        assert_eq!(hints, vec![p(1), p(3)], "nearest non-resident pages first");
        // Larger budgets extend further into the future; zero budget is empty.
        assert_eq!(pbm.prefetch_hints(now_ms(0), 10), vec![p(1), p(3), p(4)]);
        assert!(pbm.prefetch_hints(now_ms(0), 0).is_empty());
        // Progress moves the cursor: after 250 tuples pages 1 and 2 are
        // consumed (interest removed on access) and 3 is nearest.
        pbm.on_access(p(1), Some(s), now_ms(100));
        pbm.on_access(p(2), Some(s), now_ms(200));
        pbm.report_scan_position(s, 250, now_ms(250));
        assert_eq!(pbm.prefetch_hints(now_ms(250), 2), vec![p(3), p(4)]);
        // Unregistering the scan removes all interest: no hints remain.
        pbm.unregister_scan(s, now_ms(300));
        assert!(pbm.prefetch_hints(now_ms(300), 4).is_empty());
    }

    #[test]
    fn behaves_like_an_opt_approximation_for_two_scans() {
        // Scan A is at the start of pages [1..10]; scan B is at the start of
        // pages [6..10] only. Pages 6..10 will be consumed (by B) sooner than
        // A reaches them, so with room for only a few pages the policy must
        // prefer evicting pages that are far for *everyone*.
        let mut pbm = pbm_with_speed(1000.0);
        register(
            &mut pbm,
            1,
            &plan(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 100),
            now_ms(0),
        );
        let pl_b = plan(&[6, 7, 8, 9, 10], 100);
        register(&mut pbm, 2, &pl_b, now_ms(0));
        for page in 1..=10 {
            pbm.on_admit(p(page), now_ms(0));
        }
        let victims = pbm.choose_victims(3, &HashSet::new(), now_ms(0));
        // The furthest-needed pages are 5 (only A needs it, 400ms away) and
        // 10 (B reaches it after 400ms, long before A); pages that B needs
        // soon (6, 7, 8) must survive.
        assert!(victims.contains(&p(5)));
        assert!(victims.contains(&p(10)));
        assert!(!victims.contains(&p(6)));
        assert!(!victims.contains(&p(7)));
        assert!(!victims.contains(&p(8)));
    }
}
