//! The replacement-policy abstraction shared by LRU and PBM.
//!
//! The [`bufferpool::BufferPool`](crate::bufferpool::BufferPool) delegates
//! every replacement decision to a [`ReplacementPolicy`]. The interface
//! mirrors the three functions PBM adds to the buffer manager
//! (`RegisterScan`, `ReportScanPosition`, `UnregisterScan`, Figure 3 of the
//! paper) plus the page-lifecycle callbacks any policy needs. LRU simply
//! ignores the scan-level information.

use std::collections::HashSet;

use scanshare_common::{PageId, ScanId, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

/// Information about a scan registered with the buffer manager.
#[derive(Debug, Clone)]
pub struct ScanInfo {
    /// The scan id assigned by the buffer pool.
    pub id: ScanId,
    /// Total number of tuples the scan will process (per column position).
    pub total_tuples: u64,
    /// Number of distinct pages the scan will touch.
    pub distinct_pages: usize,
}

/// A page-replacement policy plugged into the buffer pool.
///
/// All methods take `now` in virtual time so that policies can reason about
/// time (PBM's consumption estimates) without owning a clock.
pub trait ReplacementPolicy: Send + std::fmt::Debug {
    /// Short name used in reports ("lru", "pbm", ...).
    fn name(&self) -> &'static str;

    /// A scan announced the pages it is going to read (`RegisterScan`).
    /// Policies that do not exploit scan knowledge may ignore this.
    fn register_scan(&mut self, info: &ScanInfo, plan: &ScanPagePlan, now: VirtualInstant);

    /// A scan reported its progress (`ReportScanPosition`).
    fn report_scan_position(&mut self, scan: ScanId, tuples_consumed: u64, now: VirtualInstant);

    /// A scan finished and its metadata can be freed (`UnregisterScan`).
    fn unregister_scan(&mut self, scan: ScanId, now: VirtualInstant);

    /// A page was requested (hit or miss) by `scan`.
    fn on_access(&mut self, page: PageId, scan: Option<ScanId>, now: VirtualInstant);

    /// A page entered the buffer pool.
    fn on_admit(&mut self, page: PageId, now: VirtualInstant);

    /// A page left the buffer pool.
    fn on_evict(&mut self, page: PageId);

    /// Chooses up to `count` eviction victims among resident pages, never
    /// returning pages in `exclude` (pinned pages and the page currently
    /// being admitted). The pool evicts exactly the returned pages.
    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        now: VirtualInstant,
    ) -> Vec<PageId>;

    /// Proposes up to `budget` non-resident pages worth loading *ahead* of
    /// the scan cursors, most urgent first — the prediction side of the
    /// paper's Predictive Buffer Management turned into prefetching: a policy
    /// that knows *when* each page will next be consumed can also say *which*
    /// pages to stage next so that their transfers overlap with computation.
    ///
    /// Implementations should only return pages they believe are not
    /// resident (the buffer pool filters again as a safety net) and must be
    /// deterministic for a given policy state. The default returns no hints,
    /// which disables prefetching for policies without scan knowledge.
    ///
    /// Built-in implementations: [`PbmPolicy`](crate::pbm::PbmPolicy) ranks
    /// pages by estimated next-consumption time (nearest first);
    /// [`LruPolicy`](crate::lru::LruPolicy) performs sequential readahead
    /// along each registered scan's page plan.
    fn prefetch_hints(&mut self, _now: VirtualInstant, _budget: usize) -> Vec<PageId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A trivial FIFO policy used to exercise the trait object plumbing.
    #[derive(Debug, Default)]
    struct Fifo {
        order: Vec<PageId>,
    }

    impl ReplacementPolicy for Fifo {
        fn name(&self) -> &'static str {
            "fifo"
        }
        fn register_scan(&mut self, _: &ScanInfo, _: &ScanPagePlan, _: VirtualInstant) {}
        fn report_scan_position(&mut self, _: ScanId, _: u64, _: VirtualInstant) {}
        fn unregister_scan(&mut self, _: ScanId, _: VirtualInstant) {}
        fn on_access(&mut self, _: PageId, _: Option<ScanId>, _: VirtualInstant) {}
        fn on_admit(&mut self, page: PageId, _: VirtualInstant) {
            self.order.push(page);
        }
        fn on_evict(&mut self, page: PageId) {
            self.order.retain(|&p| p != page);
        }
        fn choose_victims(
            &mut self,
            count: usize,
            exclude: &HashSet<PageId>,
            _: VirtualInstant,
        ) -> Vec<PageId> {
            self.order
                .iter()
                .copied()
                .filter(|p| !exclude.contains(p))
                .take(count)
                .collect()
        }
    }

    #[test]
    fn policies_are_usable_as_trait_objects() {
        let mut policy: Box<dyn ReplacementPolicy> = Box::new(Fifo::default());
        let now = VirtualInstant::EPOCH;
        policy.on_admit(PageId::new(1), now);
        policy.on_admit(PageId::new(2), now);
        let victims = policy.choose_victims(1, &HashSet::new(), now);
        assert_eq!(victims, vec![PageId::new(1)]);
        let mut exclude = HashSet::new();
        exclude.insert(PageId::new(1));
        let victims = policy.choose_victims(2, &exclude, now);
        assert_eq!(victims, vec![PageId::new(2)]);
        assert_eq!(policy.name(), "fifo");
        // Policies without scan knowledge inherit the empty default.
        assert!(policy.prefetch_hints(now, 8).is_empty());
    }
}
