//! The relevance core: the paper's four ABM scoring functions as pure,
//! lock-free code.
//!
//! Section 2 of the paper drives every Active Buffer Manager decision
//! through four relevance functions. The monolithic implementation buried
//! them inside its state machine; this module lifts the arithmetic out so
//! it is unit-testable in isolation and reusable by other relevance-driven
//! chunk-selection schemes (the same I/O-avoidance idea that data-skipping
//! systems generalize):
//!
//! * [`query_priority`] — *QueryRelevance*: which CScan most urgently needs
//!   data (starved queries first, then short queries);
//! * [`load_relevance`] — *LoadRelevance*: how much a candidate chunk is
//!   worth loading (interested scans plus the shared-chunk bonus);
//! * [`keep_relevance`] — *KeepRelevance*: how much a cached chunk is worth
//!   keeping (same score; the lowest scoring cached chunk is the eviction
//!   victim);
//! * [`use_preference`] — *UseRelevance*: which cached chunk to hand to a
//!   CScan (the one the fewest scans still need, so it becomes evictable
//!   soonest).
//!
//! Every function here is a total, deterministic mapping from counters to a
//! score or ordering key — no locks, no shared state — which is what lets
//! the sharded chunk-directory hot path and the
//! single-lock decision core compute byte-identical decisions.

use std::cmp::Ordering;

use scanshare_common::ChunkId;

/// QueryRelevance key of a registered CScan: starved queries (nothing
/// cached to process) rank above non-starved ones, then queries with fewer
/// remaining chunks rank higher. The key sorts *descending* under the
/// `(Reverse(starved), Reverse(key.1), scan_id)` ordering the scheduler
/// applies, exactly as the monolithic ABM ranked queries.
pub fn query_priority(starved: bool, remaining_chunks: usize) -> (bool, i64) {
    (starved, -(remaining_chunks as i64))
}

/// LoadRelevance of a chunk: the number of registered scans still
/// interested in it, with `shared_bonus` added when the chunk lies inside a
/// snapshot prefix shared by at least two scans (shared chunks are worth
/// loading early — they are reused across snapshot versions).
pub fn load_relevance(interested: usize, shared: bool, shared_bonus: f64) -> f64 {
    interested as f64 + if shared { shared_bonus } else { 0.0 }
}

/// KeepRelevance of a cached chunk: how much it is worth keeping. The
/// paper scores keeping exactly like loading — a chunk is evicted only when
/// its keep score is below the load candidate's relevance.
pub fn keep_relevance(interested: usize, shared: bool, shared_bonus: f64) -> f64 {
    load_relevance(interested, shared, shared_bonus)
}

/// UseRelevance preference key of a cached chunk for delivery: lower is
/// better. Preferring the chunk with the fewest interested scans makes it
/// evictable soonest; ties break on the chunk id so the choice is
/// deterministic.
pub fn use_preference(interested: usize, chunk: ChunkId) -> (usize, u32) {
    (interested, chunk.raw())
}

/// Ordering used to pick the best load candidate under `max_by`: higher
/// LoadRelevance wins, and among equals the *lower* chunk id wins (the
/// reversed id comparison preserves sequential locality, exactly as the
/// monolithic ABM broke ties).
pub fn load_candidate_order(
    relevance_a: f64,
    chunk_a: ChunkId,
    relevance_b: f64,
    chunk_b: ChunkId,
) -> Ordering {
    relevance_a
        .partial_cmp(&relevance_b)
        .unwrap_or(Ordering::Equal)
        .then(chunk_b.cmp(&chunk_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    fn c(i: u32) -> ChunkId {
        ChunkId::new(i)
    }

    #[test]
    fn starved_queries_outrank_short_queries() {
        // The scheduler sorts by (Reverse(starved), Reverse(priority.1), id):
        // a starved long query must come before a non-starved short one.
        let starved_long = query_priority(true, 100);
        let fed_short = query_priority(false, 1);
        let key = |p: (bool, i64)| (Reverse(p.0), Reverse(p.1));
        assert!(key(starved_long) < key(fed_short));
        // Among starved queries the shorter one wins.
        let starved_short = query_priority(true, 2);
        assert!(key(starved_short) < key(starved_long));
    }

    #[test]
    fn shared_chunks_score_a_bonus() {
        assert_eq!(load_relevance(3, false, 0.5), 3.0);
        assert_eq!(load_relevance(3, true, 0.5), 3.5);
        // Keep and load relevance agree, as the eviction rule requires.
        assert_eq!(keep_relevance(3, true, 0.5), load_relevance(3, true, 0.5));
        assert_eq!(load_relevance(0, false, 0.5), 0.0);
    }

    #[test]
    fn use_preference_prefers_least_shared_then_lowest_chunk() {
        assert!(use_preference(1, c(9)) < use_preference(2, c(0)));
        assert!(use_preference(1, c(0)) < use_preference(1, c(9)));
    }

    #[test]
    fn load_candidate_order_prefers_relevance_then_low_chunk_id() {
        use Ordering::*;
        // Higher relevance is Greater (wins under max_by).
        assert_eq!(load_candidate_order(2.0, c(9), 1.0, c(0)), Greater);
        // Equal relevance: the lower chunk id is Greater (wins).
        assert_eq!(load_candidate_order(1.0, c(0), 1.0, c(9)), Greater);
        assert_eq!(load_candidate_order(1.0, c(9), 1.0, c(0)), Less);
        // NaN degrades to the id tie-break instead of panicking.
        assert_eq!(load_candidate_order(f64::NAN, c(0), 1.0, c(1)), Greater);
    }

    #[test]
    fn max_by_over_load_candidates_is_iteration_order_independent() {
        let score = |c: ChunkId| if c.raw() == 3 { 2.0 } else { 1.0 };
        let pick = |chunks: &[ChunkId]| {
            chunks
                .iter()
                .copied()
                .max_by(|a, b| load_candidate_order(score(*a), *a, score(*b), *b))
                .unwrap()
        };
        let forward = [c(1), c(2), c(3), c(4)];
        let mut reversed = forward;
        reversed.reverse();
        assert_eq!(pick(&forward), c(3));
        assert_eq!(pick(&reversed), c(3));
        // All-equal relevance: smallest id regardless of order.
        let all_equal = |chunks: &[ChunkId]| {
            chunks
                .iter()
                .copied()
                .max_by(|a, b| load_candidate_order(1.0, *a, 1.0, *b))
                .unwrap()
        };
        assert_eq!(all_equal(&forward), c(1));
        assert_eq!(all_equal(&reversed), c(1));
    }
}
