//! The chunk directory: the ABM's sharded hot-path state.
//!
//! The directory partitions per-scan progress (the still-needed chunk set,
//! in-order cursor, cached-available protection counter) across N
//! independently-locked shards (`shard = scan id mod N`), exactly like
//! [`ShardedPool`](crate::sharded::ShardedPool) partitions the page table.
//! Chunk residency and usefulness are published through
//! [`ChunkFlags`] — small atomic cells shared between the directory's scan
//! slots and the relevance core's chunk table — so the delivery fast path
//! ([`ChunkDirectory::try_deliver`], the paper's `GetChunk`) touches **only
//! the shard owning the scan**: it reads the candidate chunks' cached state
//! and interest counts from the atomics, applies the pure
//! [`use_preference`](super::relevance::use_preference) scoring, mutates
//! the slot, bumps the shard-local hit counter and *buffers* the
//! membership side effect (removing the scan from the chunk's interested
//! set) as a sequence-tagged event.
//!
//! Every path that *decides* — load planning, eviction, registration —
//! first takes all shard locks and replays the buffered events in global
//! arrival order (see `Abm::lock_all` in the parent module), so the
//! relevance core observes exactly the interest sets a single-lock ABM
//! would: relevance decisions are byte-identical to the monolithic
//! [`MonolithicAbm`](super::reference::MonolithicAbm) for any shard count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use scanshare_common::sync::{Mutex, MutexGuard};
use scanshare_common::{ChunkId, Error, Result, ScanId};

use super::relevance;
use super::ChunkDelivery;
use crate::metrics::BufferStats;

/// How many buffered delivery events one shard accumulates before the
/// facade forces a drain, bounding memory on delivery-heavy workloads.
/// Draining is order-preserving, so the threshold affects only *when* the
/// relevance core catches up, never *what* it observes.
pub(super) const EVENT_FLUSH_THRESHOLD: usize = 1024;

const STATE_EMPTY: u32 = 0;
const STATE_LOADING: u32 = 1;
const STATE_CACHED: u32 = 2;

/// The residency / usefulness cell of one chunk, shared between the
/// relevance core (which owns every transition) and the directory shards
/// (which read it lock-free on the delivery fast path).
#[derive(Debug)]
pub(super) struct ChunkFlags {
    /// `STATE_EMPTY` / `STATE_LOADING` / `STATE_CACHED`. Only the decision
    /// core (holding every lock) writes this, so a fast-path read under the
    /// scan's shard lock can never race a transition.
    state: AtomicU32,
    /// Number of registered scans still interested in the chunk — the
    /// usefulness count behind Use/Load/KeepRelevance. Incremented on
    /// registration (under all locks), decremented eagerly on delivery
    /// (under the delivering scan's shard lock), so fast-path readers see
    /// the same count the monolithic ABM's `interested.len()` would show.
    interest: AtomicU32,
}

impl ChunkFlags {
    pub(super) fn new() -> Self {
        Self {
            state: AtomicU32::new(STATE_EMPTY),
            interest: AtomicU32::new(0),
        }
    }

    /// Whether the chunk is cached and not mid-load (the monolithic
    /// `cached && !loading`).
    pub(super) fn is_cached(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_CACHED
    }

    /// Whether the chunk may be chosen for loading (neither cached nor
    /// already in flight).
    pub(super) fn is_loadable(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_EMPTY
    }

    pub(super) fn is_loading(&self) -> bool {
        self.state.load(Ordering::SeqCst) == STATE_LOADING
    }

    pub(super) fn set_loading(&self) {
        self.state.store(STATE_LOADING, Ordering::SeqCst);
    }

    pub(super) fn set_cached(&self) {
        self.state.store(STATE_CACHED, Ordering::SeqCst);
    }

    pub(super) fn set_empty(&self) {
        self.state.store(STATE_EMPTY, Ordering::SeqCst);
    }

    pub(super) fn interest(&self) -> usize {
        self.interest.load(Ordering::SeqCst) as usize
    }

    pub(super) fn add_interest(&self) {
        self.interest.fetch_add(1, Ordering::SeqCst);
    }

    pub(super) fn remove_interest(&self) {
        self.interest.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-scan hot state, owned by the shard the scan id hashes to.
#[derive(Debug)]
pub(super) struct ScanSlot {
    /// Chunks not yet delivered, with the tuple count needed from each.
    pub needed: HashMap<ChunkId, u64>,
    /// Chunk ids in ascending (table) order, for in-order delivery.
    pub order: Vec<ChunkId>,
    pub next_in_order: usize,
    /// Number of still-needed chunks that are currently cached. A cached
    /// chunk that is the *only* available chunk of some scan must not be
    /// evicted before that scan consumes it (otherwise two starved scans
    /// can keep evicting each other's freshly loaded chunks forever).
    pub cached_available: usize,
    pub in_order: bool,
    /// Residency/usefulness cells of every chunk this scan registered for
    /// (kept after delivery, for the `chunk_is_cached` probe).
    pub flags: HashMap<ChunkId, Arc<ChunkFlags>>,
}

impl ScanSlot {
    /// UseRelevance: the cached chunk this scan should process next — the
    /// cached needed chunk with the lowest
    /// [`use_preference`](relevance::use_preference) key; for in-order
    /// scans only the next sequential chunk qualifies. Mirrors the
    /// monolithic `cached_chunk_for` exactly.
    pub(super) fn cached_candidate(&self) -> Option<ChunkId> {
        let flag_cached = |chunk: &ChunkId| {
            self.flags
                .get(chunk)
                .map(|f| f.is_cached())
                .unwrap_or(false)
        };
        if self.in_order {
            let next = self.order.get(self.next_in_order)?;
            return flag_cached(next).then_some(*next);
        }
        self.needed
            .keys()
            .filter(|chunk| flag_cached(chunk))
            .min_by_key(|chunk| {
                let interest = self.flags.get(chunk).map(|f| f.interest()).unwrap_or(0);
                relevance::use_preference(interest, **chunk)
            })
            .copied()
    }
}

/// A deferred relevance-core side effect, tagged with its global arrival
/// sequence (the order-preserving event queue of PR 3's `ShardedPool`).
#[derive(Debug)]
pub(super) enum DirEvent {
    /// `scan` consumed `chunk`: remove it from the chunk's interested set.
    Delivered { scan: ScanId, chunk: ChunkId },
}

/// The one scan → shard mapping, used by the directory's own fast paths
/// and by the parent module's decision-path slot lookups (which hold every
/// shard guard and index the same way).
pub(super) fn shard_of(scan: ScanId, shard_count: usize) -> usize {
    (scan.raw() % shard_count as u64) as usize
}

/// One lock domain: the scans whose id hashes here, the statistics they
/// accumulated and the not-yet-replayed membership events.
#[derive(Debug, Default)]
pub(super) struct DirShard {
    pub scans: HashMap<ScanId, ScanSlot>,
    pub stats: BufferStats,
    pub events: Vec<(u64, DirEvent)>,
}

/// The sharded chunk directory. See the module docs for the locking
/// discipline; the short version: `try_deliver` and the probes take one
/// shard lock, everything else goes through the parent module's
/// all-locks-plus-replay path.
#[derive(Debug)]
pub(super) struct ChunkDirectory {
    shards: Vec<Mutex<DirShard>>,
    /// Global arrival order of deferred events.
    seq: AtomicU64,
}

impl ChunkDirectory {
    pub(super) fn new(shards: usize) -> Self {
        assert!(shards > 0, "the chunk directory needs at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(DirShard::default()))
                .collect(),
            seq: AtomicU64::new(0),
        }
    }

    pub(super) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, scan: ScanId) -> &Mutex<DirShard> {
        &self.shards[shard_of(scan, self.shards.len())]
    }

    /// The delivery fast path (`GetChunk`): picks, consumes and accounts
    /// the best cached chunk under the owning shard's lock only. Returns
    /// the delivery plus whether the caller must force an event drain.
    pub(super) fn try_deliver(&self, scan: ScanId) -> Result<(Option<ChunkDelivery>, bool)> {
        let mut shard = self.shard(scan).lock();
        let shard = &mut *shard;
        let slot = shard.scans.get_mut(&scan).ok_or(Error::UnknownScan(scan))?;
        let Some(chunk) = slot.cached_candidate() else {
            return Ok((None, false));
        };
        let tuples = slot.needed.remove(&chunk).unwrap_or(0);
        if slot.in_order {
            slot.next_in_order += 1;
        }
        // The delivered chunk was one of this scan's cached-available
        // chunks; the interest decrement is published eagerly through the
        // atomic cell, the membership removal is replayed at the next
        // decision point.
        slot.cached_available = slot.cached_available.saturating_sub(1);
        if let Some(flags) = slot.flags.get(&chunk) {
            flags.remove_interest();
        }
        shard.stats.hits += 1;
        // The sequence number is taken under the shard lock so a drain can
        // never observe a later event while an earlier one is in flight.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        shard
            .events
            .push((seq, DirEvent::Delivered { scan, chunk }));
        let flush = shard.events.len() >= EVENT_FLUSH_THRESHOLD;
        Ok((Some(ChunkDelivery { chunk, tuples }), flush))
    }

    /// Whether a chunk is currently cached and available for `scan` (the
    /// non-consuming probe behind the backend's poll loop).
    pub(super) fn has_cached_chunk(&self, scan: ScanId) -> bool {
        self.shard(scan)
            .lock()
            .scans
            .get(&scan)
            .and_then(ScanSlot::cached_candidate)
            .is_some()
    }

    /// Whether `scan` has received every chunk it registered for (unknown
    /// scans count as finished, as in the monolithic ABM).
    pub(super) fn is_finished(&self, scan: ScanId) -> bool {
        self.shard(scan)
            .lock()
            .scans
            .get(&scan)
            .map(|slot| slot.needed.is_empty())
            .unwrap_or(true)
    }

    /// Number of chunks `scan` still needs.
    pub(super) fn remaining_chunks(&self, scan: ScanId) -> usize {
        self.shard(scan)
            .lock()
            .scans
            .get(&scan)
            .map(|slot| slot.needed.len())
            .unwrap_or(0)
    }

    /// The cached state of one of the scan's registered chunks, or `None`
    /// when the scan (or the chunk in its set) is unknown to the shard.
    pub(super) fn chunk_flag_cached(&self, scan: ScanId, chunk: ChunkId) -> Option<bool> {
        self.shard(scan)
            .lock()
            .scans
            .get(&scan)
            .and_then(|slot| slot.flags.get(&chunk))
            .map(|flags| flags.is_cached())
    }

    /// The chunks `scan` still has to consume (for sharing-potential
    /// sampling).
    pub(super) fn needed_chunks(&self, scan: ScanId) -> Vec<ChunkId> {
        self.shard(scan)
            .lock()
            .scans
            .get(&scan)
            .map(|slot| slot.needed.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Statistics aggregated across every shard (the hit counters; the
    /// decision-side counters live in the relevance core).
    pub(super) fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for shard in &self.shards {
            total.merge(&shard.lock().stats);
        }
        total
    }

    /// Takes every shard lock in ascending index order (the first half of
    /// the decision-path locking protocol).
    pub(super) fn lock_shards(&self) -> Vec<MutexGuard<'_, DirShard>> {
        self.shards.iter().map(|s| s.lock()).collect()
    }

    /// Drains the buffered events of already-locked shards, sorted into
    /// global arrival order, ready to be replayed against the core.
    pub(super) fn take_events(shards: &mut [MutexGuard<'_, DirShard>]) -> Vec<(u64, DirEvent)> {
        let mut pending: Vec<(u64, DirEvent)> = Vec::new();
        for shard in shards.iter_mut() {
            pending.append(&mut shard.events);
        }
        pending.sort_unstable_by_key(|(seq, _)| *seq);
        pending
    }
}
