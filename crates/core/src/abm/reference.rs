//! The pre-refactor monolithic Active Buffer Manager, kept as the
//! executable specification of ABM behaviour.
//!
//! [`MonolithicAbm`] is the single-lock state machine the decomposed
//! [`Abm`](super::Abm) replaced: every operation takes `&mut self`, so
//! concurrent use requires an outer `Mutex` that serializes all streams —
//! exactly the bottleneck the directory / relevance / scheduler layering
//! removes. It is retained (frozen, bug-for-bug) for two jobs:
//!
//! * **executable spec** — `tests/abm_equivalence.rs` replays randomized
//!   traces through this implementation and through the decomposed ABM at
//!   several shard counts and asserts byte-identical chunk-delivery order,
//!   load plans, statistics and I/O volume;
//! * **performance baseline** — the `throughput_scaling` figure drives the
//!   CScan protocol against a `Mutex<MonolithicAbm>` to quantify what the
//!   decomposition buys under multi-stream load.
//!
//! The relevance semantics are documented on the [parent module](super);
//! do not modify this file when changing ABM behaviour — change the
//! decomposed implementation and let the equivalence test tell you what
//! diverged.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use scanshare_common::{ChunkId, Error, PageId, Result, ScanId, TableId, VirtualInstant};
use scanshare_storage::layout::ChunkMap;
use scanshare_storage::snapshot::Snapshot;

use super::{AbmAction, AbmConfig, CScanHandle, CScanRequest, ChunkDelivery, LoadPlan};
use crate::metrics::BufferStats;

#[derive(Debug)]
struct ChunkState {
    /// Pages this cached chunk holds in the buffer (union over interested
    /// scans' column sets). Pages on chunk boundaries may also be held by the
    /// neighbouring chunk; table-level reference counts track real residency.
    cached_pages: HashSet<PageId>,
    /// Full page set of a load in flight (set while `loading`).
    pending_pages: Vec<PageId>,
    /// Whether a load for this chunk is in flight.
    loading: bool,
    /// Whether the chunk has been loaded (it may legitimately own zero new
    /// pages when its pages are all shared with already-cached chunks).
    cached: bool,
    /// Scans that still need to consume this chunk.
    interested: HashSet<ScanId>,
    /// Whether the chunk lies inside the longest snapshot prefix shared by at
    /// least two registered scans.
    shared: bool,
}

impl ChunkState {
    fn new() -> Self {
        Self {
            cached_pages: HashSet::new(),
            pending_pages: Vec::new(),
            loading: false,
            cached: false,
            interested: HashSet::new(),
            shared: false,
        }
    }
    fn is_cached(&self) -> bool {
        self.cached && !self.loading
    }
}

#[derive(Debug)]
struct VersionState {
    snapshot: Arc<Snapshot>,
    chunks: HashMap<ChunkId, ChunkState>,
    scans: HashSet<ScanId>,
}

#[derive(Debug, Default)]
struct TableState {
    versions: Vec<VersionState>,
    /// Reference counts of resident pages: how many cached chunks (across
    /// versions) currently hold each page. Pages referenced by several
    /// snapshots or by adjacent chunks are counted once for I/O purposes.
    resident_pages: HashMap<PageId, usize>,
    /// Number of leading chunks shared by at least two registered scans.
    shared_prefix_chunks: u32,
}

#[derive(Debug)]
struct CScanState {
    request: CScanRequest,
    chunk_map: Arc<ChunkMap>,
    version: usize,
    /// Chunks not yet delivered, with the tuple count needed from each.
    needed: HashMap<ChunkId, u64>,
    /// Chunk ids in ascending (table) order, for in-order delivery.
    order: Vec<ChunkId>,
    next_in_order: usize,
    /// Number of still-needed chunks that are currently cached. A cached
    /// chunk that is the *only* available chunk of some scan must not be
    /// evicted before that scan consumes it (otherwise two starved scans can
    /// keep evicting each other's freshly loaded chunks forever).
    cached_available: usize,
}

/// The single-lock Active Buffer Manager (see the module docs for why it is
/// kept around).
#[derive(Debug)]
pub struct MonolithicAbm {
    config: AbmConfig,
    scans: HashMap<ScanId, CScanState>,
    tables: HashMap<TableId, TableState>,
    stats: BufferStats,
    cached_bytes: u64,
    next_scan: u64,
}

impl MonolithicAbm {
    /// Creates an ABM managing a buffer of `config.buffer_capacity_bytes`
    /// (`config.directory_shards` is ignored: this implementation has no
    /// directory to shard).
    pub fn new(config: AbmConfig) -> Self {
        assert!(config.buffer_capacity_bytes >= config.page_size_bytes);
        Self {
            config,
            scans: HashMap::new(),
            tables: HashMap::new(),
            stats: BufferStats::default(),
            cached_bytes: 0,
            next_scan: 0,
        }
    }

    /// Accumulated statistics (`io_bytes` is the total I/O volume).
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// Number of registered CScans.
    pub fn registered_scans(&self) -> usize {
        self.scans.len()
    }

    /// Number of distinct table versions registered for `table`.
    pub fn version_count(&self, table: TableId) -> usize {
        self.tables
            .get(&table)
            .map(|t| t.versions.len())
            .unwrap_or(0)
    }

    /// Number of leading chunks of `table` currently marked shared.
    pub fn shared_prefix_chunks(&self, table: TableId) -> u32 {
        self.tables
            .get(&table)
            .map(|t| t.shared_prefix_chunks)
            .unwrap_or(0)
    }

    /// Whether `chunk` of the version used by `scan` is cached.
    pub fn chunk_is_cached(&self, scan: ScanId, chunk: ChunkId) -> bool {
        let Some(state) = self.scans.get(&scan) else {
            return false;
        };
        self.tables
            .get(&state.request.table)
            .and_then(|t| t.versions.get(state.version))
            .and_then(|v| v.chunks.get(&chunk))
            .map(|c| c.is_cached())
            .unwrap_or(false)
    }

    /// Registers a CScan (`RegisterCScan`).
    pub fn register_cscan(&mut self, request: CScanRequest) -> Result<CScanHandle> {
        let id = ScanId::new(self.next_scan);
        self.next_scan += 1;

        let chunk_map = Arc::new(
            request
                .layout
                .chunk_map(&request.snapshot, &request.columns),
        );
        let stable = request.snapshot.stable_tuples();
        let chunk_ids = request.layout.chunks_for_ranges(&request.ranges, stable);
        if chunk_ids.is_empty() {
            return Err(Error::plan("CScan covers no chunks"));
        }
        let mut needed = HashMap::with_capacity(chunk_ids.len());
        let mut order = Vec::with_capacity(chunk_ids.len());
        let mut total_tuples = 0u64;
        for &chunk in &chunk_ids {
            let chunk_range = request.layout.chunk_sid_range(chunk, stable);
            let tuples = request.ranges.intersect_range(&chunk_range).total_tuples();
            if tuples == 0 {
                continue;
            }
            needed.insert(chunk, tuples);
            order.push(chunk);
            total_tuples += tuples;
        }
        order.sort_unstable();

        // Find or create the table version this snapshot belongs to
        // (checkpoint cases (i), (ii) and (iv) of Section 2.1).
        let table_state = self.tables.entry(request.table).or_default();
        let version = match table_state
            .versions
            .iter()
            .position(|v| v.snapshot.same_pages(&request.snapshot))
        {
            Some(idx) => idx,
            None => {
                table_state.versions.push(VersionState {
                    snapshot: Arc::clone(&request.snapshot),
                    chunks: HashMap::new(),
                    scans: HashSet::new(),
                });
                table_state.versions.len() - 1
            }
        };
        table_state.versions[version].scans.insert(id);
        for &chunk in order.iter() {
            table_state.versions[version]
                .chunks
                .entry(chunk)
                .or_insert_with(ChunkState::new)
                .interested
                .insert(id);
        }

        let handle = CScanHandle {
            id,
            total_chunks: order.len(),
            total_tuples,
        };
        // Some of the requested chunks may already be cached (loaded for
        // other scans or by a previous query on the same table version).
        let cached_available = order
            .iter()
            .filter(|c| {
                table_state.versions[version]
                    .chunks
                    .get(c)
                    .map(|cs| cs.is_cached())
                    .unwrap_or(false)
            })
            .count();
        self.scans.insert(
            id,
            CScanState {
                request,
                chunk_map,
                version,
                needed,
                order,
                next_in_order: 0,
                cached_available,
            },
        );
        self.recompute_shared_prefix(handle.id);
        Ok(handle)
    }

    /// Unregisters a finished (or aborted) CScan (`UnregisterCScan`). Chunk
    /// metadata of table versions that no longer have any registered scan is
    /// destroyed, as described for PDT checkpoints.
    pub fn unregister_cscan(&mut self, scan: ScanId) -> Result<()> {
        let state = self.scans.remove(&scan).ok_or(Error::UnknownScan(scan))?;
        let table = state.request.table;
        if let Some(table_state) = self.tables.get_mut(&table) {
            if let Some(version) = table_state.versions.get_mut(state.version) {
                version.scans.remove(&scan);
                for chunk in version.chunks.values_mut() {
                    chunk.interested.remove(&scan);
                }
            }
            // Drop versions without scans, releasing their cached bytes via
            // the page reference counts.
            let page_size = self.config.page_size_bytes;
            let mut freed = 0u64;
            let mut kept = Vec::new();
            for version in table_state.versions.drain(..) {
                if version.scans.is_empty() {
                    for chunk in version.chunks.values() {
                        for page in &chunk.cached_pages {
                            if let Some(count) = table_state.resident_pages.get_mut(page) {
                                *count -= 1;
                                if *count == 0 {
                                    table_state.resident_pages.remove(page);
                                    freed += page_size;
                                }
                            }
                        }
                    }
                } else {
                    kept.push(version);
                }
            }
            table_state.versions = kept;
            self.cached_bytes -= freed;
            if table_state.versions.is_empty() {
                self.tables.remove(&table);
            }
        }
        // Version indices of remaining scans may have shifted.
        self.reindex_versions(table);
        self.recompute_shared_prefix_for_table(table);
        Ok(())
    }

    fn reindex_versions(&mut self, table: TableId) {
        let Some(table_state) = self.tables.get(&table) else {
            return;
        };
        let mapping: Vec<(usize, Vec<ScanId>)> = table_state
            .versions
            .iter()
            .enumerate()
            .map(|(idx, v)| (idx, v.scans.iter().copied().collect()))
            .collect();
        for (idx, scan_ids) in mapping {
            for sid in scan_ids {
                if let Some(scan) = self.scans.get_mut(&sid) {
                    scan.version = idx;
                }
            }
        }
    }

    fn recompute_shared_prefix(&mut self, _new_scan: ScanId) {
        let tables: Vec<TableId> = self.tables.keys().copied().collect();
        for table in tables {
            self.recompute_shared_prefix_for_table(table);
        }
    }

    /// Finds the longest prefix (in chunks) shared by at least two registered
    /// CScans of `table` and marks chunks accordingly.
    fn recompute_shared_prefix_for_table(&mut self, table: TableId) {
        let Some(table_state) = self.tables.get(&table) else {
            return;
        };
        let scans: Vec<&CScanState> = table_state
            .versions
            .iter()
            .flat_map(|v| v.scans.iter())
            .filter_map(|s| self.scans.get(s))
            .collect();
        let mut best_tuples = 0u64;
        for i in 0..scans.len() {
            for j in i + 1..scans.len() {
                let a = &scans[i].request;
                let b = &scans[j].request;
                let prefix = a.snapshot.shared_prefix_tuples(&b.snapshot, &a.layout);
                best_tuples = best_tuples.max(prefix);
            }
        }
        let chunk_tuples = scans
            .first()
            .map(|s| s.request.layout.chunk_tuples())
            .unwrap_or(1)
            .max(1);
        let prefix_chunks = (best_tuples / chunk_tuples) as u32;
        let table_state = self.tables.get_mut(&table).expect("checked above");
        table_state.shared_prefix_chunks = prefix_chunks;
        for version in &mut table_state.versions {
            for (&chunk, state) in &mut version.chunks {
                state.shared = chunk.raw() < prefix_chunks;
            }
        }
    }

    // ------------------------------------------------------------------
    // Relevance functions
    // ------------------------------------------------------------------

    /// QueryRelevance: starved queries first (they have no cached chunk to
    /// process), then queries with the fewest chunks left.
    fn query_relevance(&self, scan: ScanId) -> Option<(bool, i64)> {
        let state = self.scans.get(&scan)?;
        if state.needed.is_empty() {
            return None;
        }
        // Does the scan have anything cached it could process right now?
        let starved = self.cached_chunk_for(scan).is_none();
        let remaining = state.needed.len() as i64;
        Some((starved, -remaining))
    }

    /// LoadRelevance of `chunk` for the version of `scan`: the number of
    /// interested scans, with a bonus for shared chunks.
    fn load_relevance(&self, scan: ScanId, chunk: ChunkId) -> f64 {
        let Some(state) = self.scans.get(&scan) else {
            return 0.0;
        };
        let Some(chunk_state) = self
            .tables
            .get(&state.request.table)
            .and_then(|t| t.versions.get(state.version))
            .and_then(|v| v.chunks.get(&chunk))
        else {
            return 0.0;
        };
        chunk_state.interested.len() as f64
            + if chunk_state.shared {
                self.config.shared_chunk_bonus
            } else {
                0.0
            }
    }

    /// KeepRelevance of a cached chunk: how much it is worth keeping (the
    /// number of scans still interested, plus the shared bonus). The lowest
    /// scoring chunk is the eviction candidate.
    fn keep_relevance(chunk_state: &ChunkState, shared_bonus: f64) -> f64 {
        chunk_state.interested.len() as f64
            + if chunk_state.shared {
                shared_bonus
            } else {
                0.0
            }
    }

    /// The cached chunk `scan` should process next (UseRelevance): the cached
    /// chunk it needs that the fewest *other* scans are interested in. For
    /// in-order scans only the next sequential chunk qualifies.
    fn cached_chunk_for(&self, scan: ScanId) -> Option<ChunkId> {
        let state = self.scans.get(&scan)?;
        let version = self
            .tables
            .get(&state.request.table)
            .and_then(|t| t.versions.get(state.version))?;
        if state.request.in_order {
            let next = state.order.get(state.next_in_order)?;
            let cached = version
                .chunks
                .get(next)
                .map(|c| c.is_cached())
                .unwrap_or(false);
            return cached.then_some(*next);
        }
        state
            .needed
            .keys()
            .filter(|chunk| {
                version
                    .chunks
                    .get(chunk)
                    .map(|c| c.is_cached())
                    .unwrap_or(false)
            })
            .min_by_key(|chunk| {
                let interest = version
                    .chunks
                    .get(chunk)
                    .map(|c| c.interested.len())
                    .unwrap_or(0);
                (interest, chunk.raw())
            })
            .copied()
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Decides what the ABM I/O thread should do next: either load a chunk
    /// (after freeing space) or stay idle.
    pub fn next_action(&mut self, now: VirtualInstant) -> AbmAction {
        match self.next_load(now) {
            Some(plan) => AbmAction::Load(plan),
            None => AbmAction::Idle,
        }
    }

    /// Chooses the next chunk to load: the most relevant query (QueryRelevance),
    /// then its most relevant chunk (LoadRelevance). Evicts low-KeepRelevance
    /// chunks to make room; returns `None` when nothing should or can be
    /// loaded.
    pub fn next_load(&mut self, _now: VirtualInstant) -> Option<LoadPlan> {
        // Rank queries: starved first, then shortest remaining, then id.
        let mut candidates: Vec<(bool, i64, ScanId)> = self
            .scans
            .keys()
            .filter_map(|&id| {
                self.query_relevance(id)
                    .map(|(starved, rem)| (starved, rem, id))
            })
            .collect();
        candidates.sort_by_key(|&(starved, rem, id)| {
            (std::cmp::Reverse(starved), std::cmp::Reverse(rem), id)
        });

        for (_starved, _rem, scan_id) in candidates {
            if let Some(plan) = self.plan_load_for(scan_id) {
                return Some(plan);
            }
        }
        None
    }

    pub(crate) fn plan_load_for(&mut self, scan_id: ScanId) -> Option<LoadPlan> {
        let state = self.scans.get(&scan_id)?;
        let table = state.request.table;
        let version_idx = state.version;
        let in_order = state.request.in_order;

        // Candidate chunks: not cached, not loading.
        let version = self.tables.get(&table)?.versions.get(version_idx)?;
        let loadable: Vec<ChunkId> = if in_order {
            state
                .order
                .get(state.next_in_order)
                .into_iter()
                .copied()
                .filter(|c| {
                    version
                        .chunks
                        .get(c)
                        .map(|cs| !cs.is_cached() && !cs.loading)
                        .unwrap_or(false)
                })
                .collect()
        } else {
            state
                .needed
                .keys()
                .copied()
                .filter(|c| {
                    version
                        .chunks
                        .get(c)
                        .map(|cs| !cs.is_cached() && !cs.loading)
                        .unwrap_or(false)
                })
                .collect()
        };
        if loadable.is_empty() {
            return None;
        }

        // LoadRelevance: most interested scans (shared bonus), then lowest id
        // to preserve some sequential locality.
        let best_chunk = loadable.into_iter().max_by(|a, b| {
            let ra = self.load_relevance(scan_id, *a);
            let rb = self.load_relevance(scan_id, *b);
            ra.partial_cmp(&rb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(a))
        })?;
        let load_relevance = self.load_relevance(scan_id, best_chunk);

        // Pages to load: union of the pages every interested scan needs for
        // this chunk, minus what is already resident in the buffer (pages on
        // chunk boundaries or shared between snapshot versions are not read
        // twice).
        let state = self.scans.get(&scan_id)?;
        let table_state = self.tables.get(&table)?;
        let version = table_state.versions.get(version_idx)?;
        let chunk_state = version.chunks.get(&best_chunk)?;
        let mut pages: BTreeSet<PageId> = BTreeSet::new();
        for interested in &chunk_state.interested {
            if let Some(other) = self.scans.get(interested) {
                for &p in other.chunk_map.pages(best_chunk) {
                    pages.insert(p);
                }
            }
        }
        if pages.is_empty() {
            for &p in state.chunk_map.pages(best_chunk) {
                pages.insert(p);
            }
        }
        let full_pages: Vec<PageId> = pages.iter().copied().collect();
        let new_pages: Vec<PageId> = pages
            .into_iter()
            .filter(|p| !table_state.resident_pages.contains_key(p))
            .collect();
        let bytes = new_pages.len() as u64 * self.config.page_size_bytes;

        // Make room, evicting chunks whose KeepRelevance is lower than the
        // candidate's LoadRelevance (forced if the requesting scan is starved).
        let starved = self.cached_chunk_for(scan_id).is_none();
        if !self.make_room(
            bytes,
            load_relevance,
            starved,
            table,
            version_idx,
            best_chunk,
        ) {
            return None;
        }

        // Mark loading.
        let version = self
            .tables
            .get_mut(&table)
            .and_then(|t| t.versions.get_mut(version_idx))?;
        let chunk_state = version.chunks.get_mut(&best_chunk)?;
        chunk_state.loading = true;
        chunk_state.pending_pages = full_pages;

        Some(LoadPlan {
            scan: scan_id,
            chunk: best_chunk,
            table,
            pages: new_pages,
            bytes,
        })
    }

    /// Evicts cached chunks until `bytes` more fit in the buffer. Only chunks
    /// scoring below `load_relevance` are evicted unless `force` is set (the
    /// requesting query is starved). Returns whether enough space is free.
    fn make_room(
        &mut self,
        bytes: u64,
        load_relevance: f64,
        force: bool,
        skip_table: TableId,
        skip_version: usize,
        skip_chunk: ChunkId,
    ) -> bool {
        let capacity = self.config.buffer_capacity_bytes;
        let shared_bonus = self.config.shared_chunk_bonus;
        while self.cached_bytes + bytes > capacity {
            // Find the cached, unprotected chunk with the lowest
            // KeepRelevance; ties are broken by (table, version, chunk) so
            // the decision is deterministic.
            let mut victim: Option<(f64, TableId, usize, ChunkId)> = None;
            for (&table, table_state) in &self.tables {
                for (vidx, version) in table_state.versions.iter().enumerate() {
                    for (&chunk, chunk_state) in &version.chunks {
                        if !chunk_state.cached || chunk_state.loading {
                            continue;
                        }
                        if table == skip_table && vidx == skip_version && chunk == skip_chunk {
                            continue;
                        }
                        if self.is_protected(chunk_state) {
                            continue;
                        }
                        let keep = Self::keep_relevance(chunk_state, shared_bonus);
                        let candidate = (keep, table, vidx, chunk);
                        let better = match &victim {
                            None => true,
                            Some(best) => (candidate.0, candidate.1, candidate.2, candidate.3)
                                .partial_cmp(&(best.0, best.1, best.2, best.3))
                                .map(|o| o.is_lt())
                                .unwrap_or(false),
                        };
                        if better {
                            victim = Some(candidate);
                        }
                    }
                }
            }
            let Some((keep, table, vidx, chunk)) = victim else {
                // Nothing can be evicted right now (everything cached is
                // either being loaded, protected for a starved scan, or
                // belongs to the chunk being admitted). Overcommit rather
                // than refuse: the protected chunks are about to be consumed,
                // after which the pool shrinks back below its capacity.
                break;
            };
            if keep >= load_relevance && !force {
                return false;
            }
            let freed = self.evict_chunk(table, vidx, chunk);
            self.stats.evictions += freed / self.config.page_size_bytes;
        }
        true
    }

    /// Drops a cached chunk, releasing the pages no other cached chunk still
    /// holds. Returns the number of bytes actually freed.
    fn evict_chunk(&mut self, table: TableId, version_idx: usize, chunk: ChunkId) -> u64 {
        let page_size = self.config.page_size_bytes;
        let Some(table_state) = self.tables.get_mut(&table) else {
            return 0;
        };
        let Some(chunk_state) = table_state
            .versions
            .get_mut(version_idx)
            .and_then(|v| v.chunks.get_mut(&chunk))
        else {
            return 0;
        };
        if !chunk_state.cached {
            return 0;
        }
        let pages: Vec<PageId> = chunk_state.cached_pages.drain().collect();
        let interested: Vec<ScanId> = chunk_state.interested.iter().copied().collect();
        chunk_state.cached = false;
        let mut freed = 0u64;
        for page in pages {
            if let Some(count) = table_state.resident_pages.get_mut(&page) {
                *count -= 1;
                if *count == 0 {
                    table_state.resident_pages.remove(&page);
                    freed += page_size;
                }
            }
        }
        for scan_id in interested {
            if let Some(scan) = self.scans.get_mut(&scan_id) {
                scan.cached_available = scan.cached_available.saturating_sub(1);
            }
        }
        self.cached_bytes -= freed;
        freed
    }

    /// A cached chunk is protected from eviction while it is the *only*
    /// cached chunk of some scan that still needs it: evicting it would put
    /// that scan right back to being starved, which (with several starved
    /// scans and a small pool) can livelock the ABM.
    fn is_protected(&self, chunk_state: &ChunkState) -> bool {
        chunk_state.interested.iter().any(|scan| {
            self.scans
                .get(scan)
                .map(|s| s.cached_available <= 1)
                .unwrap_or(false)
        })
    }

    /// Marks a chunk load as finished (the ABM thread performed the actual
    /// loading). The chunk's pages now occupy buffer space; pages that were
    /// already resident (chunk boundaries, shared snapshot prefixes) are
    /// reference-counted rather than duplicated.
    pub fn complete_load(&mut self, plan: &LoadPlan, _now: VirtualInstant) -> Result<()> {
        let scan = self
            .scans
            .get(&plan.scan)
            .ok_or(Error::UnknownScan(plan.scan))?;
        let version_idx = scan.version;
        let page_size = self.config.page_size_bytes;
        let table_state = self
            .tables
            .get_mut(&plan.table)
            .ok_or(Error::UnknownTable(plan.table))?;
        let chunk_state = table_state
            .versions
            .get_mut(version_idx)
            .and_then(|v| v.chunks.get_mut(&plan.chunk))
            .ok_or(Error::UnknownChunk(plan.chunk))?;
        chunk_state.loading = false;
        chunk_state.cached = true;
        let full_pages = std::mem::take(&mut chunk_state.pending_pages);
        let interested: Vec<ScanId> = chunk_state.interested.iter().copied().collect();
        let mut newly_resident = 0u64;
        for page in full_pages {
            chunk_state.cached_pages.insert(page);
            let count = table_state.resident_pages.entry(page).or_insert(0);
            *count += 1;
            if *count == 1 {
                newly_resident += page_size;
            }
        }
        // The chunk is now available to every scan that still needs it.
        for scan_id in interested {
            if let Some(scan) = self.scans.get_mut(&scan_id) {
                scan.cached_available += 1;
            }
        }
        self.cached_bytes += newly_resident;
        self.stats.misses += 1;
        self.stats.pages_loaded += plan.pages.len() as u64;
        self.stats.io_bytes += plan.bytes;
        Ok(())
    }

    /// Hands the best cached chunk to `scan` (`GetChunk`). Returns `None` if
    /// nothing it needs is cached (the scan should block) or if it already
    /// received everything.
    pub fn get_chunk(&mut self, scan: ScanId) -> Result<Option<ChunkDelivery>> {
        if !self.scans.contains_key(&scan) {
            return Err(Error::UnknownScan(scan));
        }
        let Some(chunk) = self.cached_chunk_for(scan) else {
            return Ok(None);
        };
        let state = self.scans.get_mut(&scan).expect("checked above");
        let tuples = state.needed.remove(&chunk).unwrap_or(0);
        if state.request.in_order {
            state.next_in_order += 1;
        }
        // The delivered chunk was one of this scan's cached-available chunks.
        state.cached_available = state.cached_available.saturating_sub(1);
        let table = state.request.table;
        let version_idx = state.version;
        // Reuse counts as a hit for every delivery after the initial load.
        self.stats.hits += 1;
        if let Some(chunk_state) = self
            .tables
            .get_mut(&table)
            .and_then(|t| t.versions.get_mut(version_idx))
            .and_then(|v| v.chunks.get_mut(&chunk))
        {
            chunk_state.interested.remove(&scan);
        }
        Ok(Some(ChunkDelivery { chunk, tuples }))
    }

    /// Whether a chunk is currently cached and available for `scan` (a
    /// non-consuming variant of [`MonolithicAbm::get_chunk`]).
    pub fn has_cached_chunk(&self, scan: ScanId) -> bool {
        self.cached_chunk_for(scan).is_some()
    }

    /// Whether `scan` has received every chunk it registered for.
    pub fn is_finished(&self, scan: ScanId) -> bool {
        self.scans
            .get(&scan)
            .map(|s| s.needed.is_empty())
            .unwrap_or(true)
    }

    /// Number of chunks `scan` still needs.
    pub fn remaining_chunks(&self, scan: ScanId) -> usize {
        self.scans.get(&scan).map(|s| s.needed.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{RangeList, TupleRange};
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    const PAGE: u64 = 1024;
    const CHUNK: u64 = 1000;

    fn setup(base_tuples: u64) -> (Arc<Storage>, TableId) {
        let storage = Storage::with_seed(PAGE, CHUNK, 11);
        let spec = TableSpec::new(
            "lineitem",
            vec![
                ColumnSpec::with_width("a", ColumnType::Int64, 4.0),
                ColumnSpec::with_width("b", ColumnType::Int64, 2.0),
            ],
            base_tuples,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(1),
                ],
            )
            .unwrap();
        (storage, id)
    }

    fn request(storage: &Arc<Storage>, table: TableId, range: TupleRange) -> CScanRequest {
        let layout = storage.layout(table).unwrap();
        let snapshot = storage.master_snapshot(table).unwrap();
        CScanRequest {
            table,
            snapshot,
            layout,
            columns: vec![0, 1],
            ranges: RangeList::from_ranges([range]),
            in_order: false,
        }
    }

    fn abm(capacity_bytes: u64) -> MonolithicAbm {
        MonolithicAbm::new(AbmConfig::new(capacity_bytes, PAGE))
    }

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    #[test]
    fn single_scan_receives_all_chunks_exactly_once() {
        let (storage, table) = setup(5_000);
        let mut abm = abm(1 << 20);
        let handle = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 5_000)))
            .unwrap();
        let mut delivered = Vec::new();
        let mut guard = 0;
        while !abm.is_finished(handle.id) {
            guard += 1;
            assert!(guard < 1000);
            if let Some(d) = abm.get_chunk(handle.id).unwrap() {
                delivered.push(d.chunk);
            } else {
                match abm.next_action(now()) {
                    AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                    AbmAction::Idle => panic!("starved"),
                }
            }
        }
        delivered.sort_unstable();
        delivered.dedup();
        assert_eq!(delivered.len(), handle.total_chunks);
        abm.unregister_cscan(handle.id).unwrap();
        assert_eq!(abm.registered_scans(), 0);
        assert_eq!(
            abm.version_count(table),
            0,
            "metadata destroyed with the last scan"
        );
    }

    #[test]
    fn concurrent_scans_share_loaded_chunks() {
        let (storage, table) = setup(10_000);
        // Plenty of buffer: every chunk is loaded at most once.
        let mut abm = abm(1 << 22);
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000)))
            .unwrap();
        let b = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000)))
            .unwrap();

        // Drive both scans round-robin.
        let mut guard = 0;
        while !(abm.is_finished(a.id) && abm.is_finished(b.id)) {
            guard += 1;
            assert!(guard < 10_000);
            let mut progressed = false;
            for scan in [a.id, b.id] {
                if !abm.is_finished(scan) && abm.get_chunk(scan).unwrap().is_some() {
                    progressed = true;
                }
            }
            if !progressed {
                match abm.next_action(now()) {
                    AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                    AbmAction::Idle => panic!("both scans starved but ABM idle"),
                }
            }
        }
        let stats = abm.stats();
        // 10 chunks were loaded once each but delivered twice (20 deliveries).
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 20);
        // Total I/O equals the table size (each page loaded exactly once):
        // column a: 4 B/tuple -> 40 pages, column b: 2 B/tuple -> 20 pages.
        assert_eq!(stats.io_bytes, 60 * PAGE);
    }

    #[test]
    fn eviction_respects_keep_relevance_and_capacity() {
        let (storage, table) = setup(10_000);
        // Column a needs 4 pages per chunk, column b 2 pages per chunk ->
        // 6 KiB per chunk. Capacity of 2 chunks.
        let mut abm = abm(12 * PAGE);
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000)))
            .unwrap();
        let mut loads = 0;
        let mut guard = 0;
        while !abm.is_finished(a.id) {
            guard += 1;
            assert!(guard < 10_000, "scan did not make progress");
            if abm.get_chunk(a.id).unwrap().is_some() {
                continue;
            }
            match abm.next_action(now()) {
                AbmAction::Load(plan) => {
                    abm.complete_load(&plan, now()).unwrap();
                    loads += 1;
                }
                AbmAction::Idle => panic!("scan starved but ABM is idle"),
            }
        }
        assert_eq!(loads, 10, "every chunk loaded exactly once");
        assert!(abm.stats().evictions > 0, "small buffer forces evictions");
        assert!(abm.cached_bytes() <= 12 * PAGE);
    }

    #[test]
    fn unknown_scan_operations_error() {
        let mut abm = abm(1 << 20);
        assert!(abm.get_chunk(ScanId::new(99)).is_err());
        assert!(abm.unregister_cscan(ScanId::new(99)).is_err());
        assert!(abm.is_finished(ScanId::new(99)));
        assert_eq!(abm.remaining_chunks(ScanId::new(99)), 0);
    }
}
