//! The load scheduler: a bounded window of asynchronous chunk loads.
//!
//! The monolithic `Mutex<Abm>` backend served starvation with a
//! synchronous load loop: the first starved worker claimed one load,
//! charged the device and completed it while every other starved worker
//! spin-polled the ABM lock. [`LoadScheduler`] replaces that with the same
//! bounded in-flight window the page-level prefetcher uses
//! ([`top_up_prefetch_window`](crate::bufferpool::top_up_prefetch_window)):
//! chunk loads are planned by the relevance core, submitted through
//! [`BlockDevice::submit_read`] and retired by *whichever* stream pumps next
//! — concurrent CScan streams overlap loading with consumption instead of
//! blocking under the ABM lock, and with `window > 1` several transfers
//! queue on the device while scans process already-delivered chunks.
//!
//! `window == 1` (the default) reproduces the paper-faithful one-load-at-a-
//! time model — the load *decisions* are then byte-identical to the
//! monolithic backend's, which the simulator-parity tests rely on.

use scanshare_common::sync::Mutex;
use scanshare_common::{Result, VirtualClock, VirtualInstant};
use scanshare_iosim::{BlockDevice, IoKind, ReadSpec};

use super::{Abm, LoadPlan};

/// One planned chunk load whose transfer is in flight on the device.
#[derive(Debug)]
struct InflightLoad {
    plan: LoadPlan,
    done_at: VirtualInstant,
}

/// What one [`LoadScheduler::pump`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpOutcome {
    /// A load was planned, completed, or retired: callers should re-probe
    /// the ABM for deliverable chunks.
    Progress,
    /// Nothing to plan and nothing in flight. A scan that is still starved
    /// at this point cannot make progress (the typed
    /// [`ScanStarved`](scanshare_common::Error::ScanStarved) condition).
    Idle,
}

/// Issues the relevance core's load plans through a [`BlockDevice`] with a
/// bounded in-flight window. Shared by every stream of a `CScanBackend`;
/// internally synchronized, deadlock-free against the ABM's own locks
/// (the scheduler lock is only ever taken *before* ABM locks).
#[derive(Debug)]
pub struct LoadScheduler {
    window: usize,
    inflight: Mutex<Vec<InflightLoad>>,
}

impl LoadScheduler {
    /// Creates a scheduler keeping up to `window` chunk loads in flight.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "the load scheduler needs a window of >= 1");
        Self {
            window,
            inflight: Mutex::new(Vec::new()),
        }
    }

    /// The configured window (maximum in-flight chunk loads).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of loads currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().len()
    }

    /// Drives the load pipeline one step: plan a new load if the window has
    /// room, otherwise retire the earliest in-flight load (advancing the
    /// virtual clock to its completion and applying it to the ABM).
    ///
    /// Any stream may pump — a scan starved on a chunk that *another*
    /// stream's pump put in flight retires that load itself instead of
    /// spinning until the other stream gets scheduled.
    pub fn pump(
        &self,
        abm: &Abm,
        clock: &VirtualClock,
        device: &dyn BlockDevice,
    ) -> Result<PumpOutcome> {
        let mut inflight = self.inflight.lock();
        if inflight.len() < self.window {
            if let Some(plan) = abm.next_load(clock.now()) {
                if plan.bytes == 0 {
                    // Every page is already resident (chunk boundaries,
                    // shared snapshot prefixes): nothing to transfer.
                    abm.complete_load(&plan, clock.now())?;
                    return Ok(PumpOutcome::Progress);
                }
                let spec = ReadSpec {
                    bytes: plan.bytes,
                    pages: plan.pages.len() as u64,
                    kind: IoKind::Demand,
                    targets: &plan.pages,
                };
                match device.submit_read(clock.now(), spec) {
                    Ok(completion) => {
                        inflight.push(InflightLoad {
                            plan,
                            done_at: completion.done_at,
                        });
                        return Ok(PumpOutcome::Progress);
                    }
                    Err(err) => {
                        // The plan was already claimed from the relevance
                        // core: complete it anyway so the chunk pipeline
                        // cannot wedge (correctness never depends on the
                        // device — storage reads fall back to a synchronous
                        // path), then surface the device fault to the
                        // pumping stream.
                        abm.complete_load(&plan, clock.now())?;
                        return Err(err);
                    }
                }
            }
        }
        // Window full, or nothing new to plan: retire the earliest
        // completion (FIFO on ties — the device serves requests in order).
        let Some(earliest) = inflight
            .iter()
            .enumerate()
            .min_by_key(|(idx, load)| (load.done_at, *idx))
            .map(|(idx, _)| idx)
        else {
            return Ok(PumpOutcome::Idle);
        };
        let load = inflight.remove(earliest);
        clock.advance_to(load.done_at);
        abm.complete_load(&load.plan, clock.now())?;
        Ok(PumpOutcome::Progress)
    }
}
