//! Cooperative Scans: the Active Buffer Manager (ABM), decomposed for the
//! concurrent core.
//!
//! Under Cooperative Scans the buffer manager stops being a passive cache:
//! CScan operators register their data interest up front
//! ([`Abm::register_cscan`]), repeatedly ask for whatever chunk is best to
//! process next ([`Abm::get_chunk`]) and unregister when done. The ABM
//! decides *which chunk to load next, for whom, what to hand out and what
//! to evict* using the four relevance functions of Section 2 of the paper
//! (see [`relevance`] for the scoring itself). It works at **chunk**
//! granularity and is snapshot-aware: scans on different snapshots of the
//! same table share the longest common prefix of their page arrays, and
//! chunks inside that prefix are marked shared (worth loading early and
//! keeping).
//!
//! # Layering
//!
//! The original implementation was one 1.3k-line state machine behind a
//! single mutex, which serialized every concurrent CScan stream. It is now
//! three layers:
//!
//! * `directory` — the **chunk directory**: per-scan progress and the
//!   chunk residency / usefulness cells, sharded across N
//!   independently-locked shards (`ScanShareConfig::pool_shards` in the
//!   engine). Chunk delivery — the hot path under multi-stream load — takes
//!   only the shard owning the scan;
//! * [`relevance`] — the **relevance core's scoring**: QueryRelevance,
//!   LoadRelevance, UseRelevance and KeepRelevance as pure, lock-free,
//!   unit-testable functions;
//! * [`scheduler`] — the **load scheduler**: chunk loads issued through
//!   [`IoDevice::submit_async`](scanshare_iosim::IoDevice::submit_async)
//!   with a bounded in-flight window, so starved streams retire each
//!   other's loads instead of spin-polling one lock.
//!
//! # The event-queue invariance trick
//!
//! Sharding must not change what the ABM *decides* — the paper's figures
//! hinge on exact I/O-volume accounting. The directory therefore reuses the
//! order-preserving buffered event queue that
//! [`ShardedPool`](crate::sharded::ShardedPool) introduced for the page
//! pool: the delivery fast path updates shard-local state and the shared
//! atomic usefulness counters eagerly, but *buffers* the membership side
//! effect (removing the scan from the chunk's interested set) tagged with a
//! global sequence number. Every decision path — load planning, eviction,
//! registration, unregistration — first takes all shard locks (ascending),
//! drains the buffers and replays the events in sequence order against the
//! single-lock relevance state, then decides. The core therefore observes
//! exactly the interest sets a single-lock ABM would at every decision
//! point, for every shard count: chunk-delivery order, load plans and I/O
//! volume are byte-identical to the pre-refactor monolithic implementation
//! (kept as the executable spec in [`reference`](mod@reference)), which
//! `tests/abm_equivalence.rs` asserts over randomized traces at 1/2/8
//! shards.

mod directory;
pub mod reference;
pub mod relevance;
pub mod scheduler;

pub use reference::MonolithicAbm;
pub use scheduler::{LoadScheduler, PumpOutcome};

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use scanshare_common::sync::{Mutex, MutexGuard};
use scanshare_common::{
    ChunkId, Error, PageId, RangeList, Result, ScanId, TableId, VirtualInstant,
};
use scanshare_storage::layout::{ChunkMap, TableLayout};
use scanshare_storage::snapshot::Snapshot;

use crate::metrics::BufferStats;
use directory::{ChunkDirectory, ChunkFlags, DirEvent, DirShard, ScanSlot};

/// Tuning knobs of the Active Buffer Manager.
#[derive(Debug, Clone, PartialEq)]
pub struct AbmConfig {
    /// Capacity of the buffer pool managed by ABM, in bytes.
    pub buffer_capacity_bytes: u64,
    /// Page size in bytes (uniform).
    pub page_size_bytes: u64,
    /// Extra load-relevance weight given to shared chunks.
    pub shared_chunk_bonus: f64,
    /// Number of independently-locked chunk-directory shards (see the
    /// module docs). `1` reproduces a fully serialized directory; any
    /// count produces identical decisions.
    pub directory_shards: usize,
}

impl AbmConfig {
    /// Creates a configuration for the given pool capacity and page size.
    pub fn new(buffer_capacity_bytes: u64, page_size_bytes: u64) -> Self {
        Self {
            buffer_capacity_bytes,
            page_size_bytes,
            shared_chunk_bonus: 0.5,
            directory_shards: 1,
        }
    }

    /// Returns a copy with a different directory shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.directory_shards = shards;
        self
    }
}

/// A request to register a CScan with the ABM.
#[derive(Debug, Clone)]
pub struct CScanRequest {
    /// Table being scanned.
    pub table: TableId,
    /// Storage snapshot the scan's transaction works on.
    pub snapshot: Arc<Snapshot>,
    /// Layout of the table.
    pub layout: Arc<TableLayout>,
    /// Column indices the scan reads.
    pub columns: Vec<usize>,
    /// SID ranges the scan must cover.
    pub ranges: RangeList,
    /// Whether the scan demands in-order (chunk-by-chunk, ascending)
    /// delivery and therefore acts as a drop-in replacement for a
    /// traditional Scan.
    pub in_order: bool,
}

/// Handle returned by [`Abm::register_cscan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CScanHandle {
    /// The scan id to use in subsequent calls.
    pub id: ScanId,
    /// Number of chunks the scan will consume.
    pub total_chunks: usize,
    /// Number of tuples the scan will produce (before PDT merging).
    pub total_tuples: u64,
}

/// A chunk-load decision produced by [`Abm::next_load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadPlan {
    /// The scan whose QueryRelevance triggered the load.
    pub scan: ScanId,
    /// The chunk to load.
    pub chunk: ChunkId,
    /// The table the chunk belongs to.
    pub table: TableId,
    /// Pages that actually need to be read (already-cached pages excluded).
    pub pages: Vec<PageId>,
    /// Bytes that need to be read.
    pub bytes: u64,
}

/// A chunk handed to a CScan by [`Abm::get_chunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkDelivery {
    /// The delivered chunk.
    pub chunk: ChunkId,
    /// Number of tuples of the scan's ranges inside this chunk.
    pub tuples: u64,
}

/// Generic ABM actions, useful for drivers that poll the ABM in one place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbmAction {
    /// Load the described chunk.
    Load(LoadPlan),
    /// Nothing to do right now (every runnable scan has cached data, or no
    /// buffer space can be freed).
    Idle,
}

// ---------------------------------------------------------------------------
// Relevance-core state (single lock, decisions only)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct CoreChunk {
    /// Pages this cached chunk holds in the buffer (union over interested
    /// scans' column sets). Pages on chunk boundaries may also be held by
    /// the neighbouring chunk; table-level reference counts track real
    /// residency.
    cached_pages: HashSet<PageId>,
    /// Full page set of a load in flight (set while loading).
    pending_pages: Vec<PageId>,
    /// Scans that still need to consume this chunk (the authoritative
    /// membership behind the shared interest counter).
    interested: HashSet<ScanId>,
    /// Whether the chunk lies inside the longest snapshot prefix shared by
    /// at least two registered scans.
    shared: bool,
    /// The residency/usefulness cell shared with the directory shards.
    flags: Arc<ChunkFlags>,
}

impl CoreChunk {
    fn new() -> Self {
        Self {
            cached_pages: HashSet::new(),
            pending_pages: Vec::new(),
            interested: HashSet::new(),
            shared: false,
            flags: Arc::new(ChunkFlags::new()),
        }
    }
}

#[derive(Debug)]
struct VersionState {
    snapshot: Arc<Snapshot>,
    chunks: HashMap<ChunkId, CoreChunk>,
    scans: HashSet<ScanId>,
}

#[derive(Debug, Default)]
struct TableState {
    versions: Vec<VersionState>,
    /// Reference counts of resident pages: how many cached chunks (across
    /// versions) currently hold each page. Pages referenced by several
    /// snapshots or by adjacent chunks are counted once for I/O purposes.
    resident_pages: HashMap<PageId, usize>,
    /// Number of leading chunks shared by at least two registered scans.
    shared_prefix_chunks: u32,
}

#[derive(Debug)]
struct CoreScan {
    request: CScanRequest,
    chunk_map: Arc<ChunkMap>,
    version: usize,
}

#[derive(Debug)]
struct AbmCore {
    scans: HashMap<ScanId, CoreScan>,
    tables: HashMap<TableId, TableState>,
    /// Decision-side counters (misses, loads, evictions, I/O volume); the
    /// delivery hit counters live in the directory shards.
    stats: BufferStats,
    cached_bytes: u64,
    next_scan: u64,
}

impl AbmCore {
    fn new() -> Self {
        Self {
            scans: HashMap::new(),
            tables: HashMap::new(),
            stats: BufferStats::default(),
            cached_bytes: 0,
            next_scan: 0,
        }
    }

    fn reindex_versions(&mut self, table: TableId) {
        let Some(table_state) = self.tables.get(&table) else {
            return;
        };
        let mapping: Vec<(usize, Vec<ScanId>)> = table_state
            .versions
            .iter()
            .enumerate()
            .map(|(idx, v)| (idx, v.scans.iter().copied().collect()))
            .collect();
        for (idx, scan_ids) in mapping {
            for sid in scan_ids {
                if let Some(scan) = self.scans.get_mut(&sid) {
                    scan.version = idx;
                }
            }
        }
    }

    /// Finds the longest prefix (in chunks) shared by at least two
    /// registered CScans of `table` and marks chunks accordingly.
    fn recompute_shared_prefix_for_table(&mut self, table: TableId) {
        let Some(table_state) = self.tables.get(&table) else {
            return;
        };
        let scans: Vec<&CoreScan> = table_state
            .versions
            .iter()
            .flat_map(|v| v.scans.iter())
            .filter_map(|s| self.scans.get(s))
            .collect();
        let mut best_tuples = 0u64;
        for i in 0..scans.len() {
            for j in i + 1..scans.len() {
                let a = &scans[i].request;
                let b = &scans[j].request;
                let prefix = a.snapshot.shared_prefix_tuples(&b.snapshot, &a.layout);
                best_tuples = best_tuples.max(prefix);
            }
        }
        let chunk_tuples = scans
            .first()
            .map(|s| s.request.layout.chunk_tuples())
            .unwrap_or(1)
            .max(1);
        let prefix_chunks = (best_tuples / chunk_tuples) as u32;
        let table_state = self.tables.get_mut(&table).expect("checked above");
        table_state.shared_prefix_chunks = prefix_chunks;
        for version in &mut table_state.versions {
            for (&chunk, state) in &mut version.chunks {
                state.shared = chunk.raw() < prefix_chunks;
            }
        }
    }

    fn recompute_shared_prefixes(&mut self) {
        let tables: Vec<TableId> = self.tables.keys().copied().collect();
        for table in tables {
            self.recompute_shared_prefix_for_table(table);
        }
    }
}

// ---------------------------------------------------------------------------
// The facade
// ---------------------------------------------------------------------------

/// The Active Buffer Manager, decomposed into a sharded chunk directory, a
/// pure [`relevance`] core and (via [`scheduler::LoadScheduler`]) an
/// asynchronous load pipeline. All methods take `&self`: one `Abm` is
/// shared by every CScan stream of an engine without an outer lock.
#[derive(Debug)]
pub struct Abm {
    config: AbmConfig,
    directory: ChunkDirectory,
    core: Mutex<AbmCore>,
}

/// Every lock held at once, with all pending directory events already
/// replayed: the state a single-lock ABM would be in. Shard locks are
/// always taken in ascending index order, then the core.
struct Locked<'a> {
    shards: Vec<MutexGuard<'a, DirShard>>,
    core: MutexGuard<'a, AbmCore>,
}

impl<'a> Locked<'a> {
    fn shard_index(&self, scan: ScanId) -> usize {
        directory::shard_of(scan, self.shards.len())
    }

    fn slot(&self, scan: ScanId) -> Option<&ScanSlot> {
        self.shards[self.shard_index(scan)].scans.get(&scan)
    }

    fn slot_mut(&mut self, scan: ScanId) -> Option<&mut ScanSlot> {
        let idx = self.shard_index(scan);
        self.shards[idx].scans.get_mut(&scan)
    }

    /// QueryRelevance: starved queries first (they have no cached chunk to
    /// process), then queries with the fewest chunks left.
    fn query_relevance(&self, scan: ScanId) -> Option<(bool, i64)> {
        let slot = self.slot(scan)?;
        if slot.needed.is_empty() {
            return None;
        }
        let starved = slot.cached_candidate().is_none();
        Some(relevance::query_priority(starved, slot.needed.len()))
    }

    /// LoadRelevance of `chunk` for the version of `scan`.
    fn load_relevance(&self, scan: ScanId, chunk: ChunkId, config: &AbmConfig) -> f64 {
        let Some(state) = self.core.scans.get(&scan) else {
            return 0.0;
        };
        let Some(chunk_state) = self
            .core
            .tables
            .get(&state.request.table)
            .and_then(|t| t.versions.get(state.version))
            .and_then(|v| v.chunks.get(&chunk))
        else {
            return 0.0;
        };
        relevance::load_relevance(
            chunk_state.interested.len(),
            chunk_state.shared,
            config.shared_chunk_bonus,
        )
    }

    /// Chooses the next chunk to load: the most relevant query
    /// (QueryRelevance), then its most relevant chunk (LoadRelevance).
    /// Evicts low-KeepRelevance chunks to make room; returns `None` when
    /// nothing should or can be loaded.
    fn next_load(&mut self, config: &AbmConfig) -> Option<LoadPlan> {
        // Rank queries: starved first, then shortest remaining, then id.
        let mut candidates: Vec<(bool, i64, ScanId)> = self
            .core
            .scans
            .keys()
            .filter_map(|&id| {
                self.query_relevance(id)
                    .map(|(starved, rem)| (starved, rem, id))
            })
            .collect();
        candidates.sort_by_key(|&(starved, rem, id)| (Reverse(starved), Reverse(rem), id));

        for (_starved, _rem, scan_id) in candidates {
            if let Some(plan) = self.plan_load_for(scan_id, config) {
                return Some(plan);
            }
        }
        None
    }

    fn plan_load_for(&mut self, scan_id: ScanId, config: &AbmConfig) -> Option<LoadPlan> {
        let table = self.core.scans.get(&scan_id)?.request.table;
        let version_idx = self.core.scans.get(&scan_id)?.version;

        // Candidate chunks: not cached, not loading.
        let slot = self.slot(scan_id)?;
        let loadable: Vec<ChunkId> = if slot.in_order {
            slot.order
                .get(slot.next_in_order)
                .into_iter()
                .copied()
                .filter(|c| slot.flags.get(c).map(|f| f.is_loadable()).unwrap_or(false))
                .collect()
        } else {
            slot.needed
                .keys()
                .copied()
                .filter(|c| slot.flags.get(c).map(|f| f.is_loadable()).unwrap_or(false))
                .collect()
        };
        if loadable.is_empty() {
            return None;
        }

        // LoadRelevance: most interested scans (shared bonus), then lowest
        // id to preserve some sequential locality.
        let best_chunk = loadable.into_iter().max_by(|a, b| {
            let ra = self.load_relevance(scan_id, *a, config);
            let rb = self.load_relevance(scan_id, *b, config);
            relevance::load_candidate_order(ra, *a, rb, *b)
        })?;
        let load_relevance = self.load_relevance(scan_id, best_chunk, config);

        // Pages to load: union of the pages every interested scan needs for
        // this chunk, minus what is already resident in the buffer (pages
        // on chunk boundaries or shared between snapshot versions are not
        // read twice).
        let state = self.core.scans.get(&scan_id)?;
        let table_state = self.core.tables.get(&table)?;
        let chunk_state = table_state
            .versions
            .get(version_idx)?
            .chunks
            .get(&best_chunk)?;
        let mut pages: BTreeSet<PageId> = BTreeSet::new();
        for interested in &chunk_state.interested {
            if let Some(other) = self.core.scans.get(interested) {
                for &p in other.chunk_map.pages(best_chunk) {
                    pages.insert(p);
                }
            }
        }
        if pages.is_empty() {
            for &p in state.chunk_map.pages(best_chunk) {
                pages.insert(p);
            }
        }
        let full_pages: Vec<PageId> = pages.iter().copied().collect();
        let new_pages: Vec<PageId> = pages
            .into_iter()
            .filter(|p| !table_state.resident_pages.contains_key(p))
            .collect();
        let bytes = new_pages.len() as u64 * config.page_size_bytes;

        // Make room, evicting chunks whose KeepRelevance is lower than the
        // candidate's LoadRelevance (forced if the requesting scan is
        // starved).
        let starved = self.slot(scan_id)?.cached_candidate().is_none();
        if !self.make_room(
            bytes,
            load_relevance,
            starved,
            table,
            version_idx,
            best_chunk,
            config,
        ) {
            return None;
        }

        // Mark loading.
        let chunk_state = self
            .core
            .tables
            .get_mut(&table)
            .and_then(|t| t.versions.get_mut(version_idx))
            .and_then(|v| v.chunks.get_mut(&best_chunk))?;
        chunk_state.flags.set_loading();
        chunk_state.pending_pages = full_pages;

        Some(LoadPlan {
            scan: scan_id,
            chunk: best_chunk,
            table,
            pages: new_pages,
            bytes,
        })
    }

    /// Evicts cached chunks until `bytes` more fit in the buffer. Only
    /// chunks scoring below `load_relevance` are evicted unless `force` is
    /// set (the requesting query is starved). Returns whether enough space
    /// is free.
    #[allow(clippy::too_many_arguments)]
    fn make_room(
        &mut self,
        bytes: u64,
        load_relevance: f64,
        force: bool,
        skip_table: TableId,
        skip_version: usize,
        skip_chunk: ChunkId,
        config: &AbmConfig,
    ) -> bool {
        let capacity = config.buffer_capacity_bytes;
        let shared_bonus = config.shared_chunk_bonus;
        while self.core.cached_bytes + bytes > capacity {
            // Find the cached, unprotected chunk with the lowest
            // KeepRelevance; ties are broken by (table, version, chunk) so
            // the decision is deterministic.
            let mut victim: Option<(f64, TableId, usize, ChunkId)> = None;
            for (&table, table_state) in self.core.tables.iter() {
                for (vidx, version) in table_state.versions.iter().enumerate() {
                    for (&chunk, chunk_state) in &version.chunks {
                        if !chunk_state.flags.is_cached() {
                            continue;
                        }
                        if table == skip_table && vidx == skip_version && chunk == skip_chunk {
                            continue;
                        }
                        if self.is_protected(chunk_state) {
                            continue;
                        }
                        let keep = relevance::keep_relevance(
                            chunk_state.interested.len(),
                            chunk_state.shared,
                            shared_bonus,
                        );
                        let candidate = (keep, table, vidx, chunk);
                        let better = match &victim {
                            None => true,
                            Some(best) => candidate
                                .partial_cmp(best)
                                .map(|o| o.is_lt())
                                .unwrap_or(false),
                        };
                        if better {
                            victim = Some(candidate);
                        }
                    }
                }
            }
            let Some((keep, table, vidx, chunk)) = victim else {
                // Nothing can be evicted right now (everything cached is
                // either being loaded, protected for a starved scan, or
                // belongs to the chunk being admitted). Overcommit rather
                // than refuse: the protected chunks are about to be
                // consumed, after which the pool shrinks back below its
                // capacity.
                break;
            };
            if keep >= load_relevance && !force {
                return false;
            }
            let freed = self.evict_chunk(table, vidx, chunk, config);
            self.core.stats.evictions += freed / config.page_size_bytes;
        }
        true
    }

    /// A cached chunk is protected from eviction while it is the *only*
    /// cached chunk of some scan that still needs it: evicting it would put
    /// that scan right back to being starved, which (with several starved
    /// scans and a small pool) can livelock the ABM.
    fn is_protected(&self, chunk_state: &CoreChunk) -> bool {
        chunk_state.interested.iter().any(|scan| {
            self.slot(*scan)
                .map(|s| s.cached_available <= 1)
                .unwrap_or(false)
        })
    }

    /// Drops a cached chunk, releasing the pages no other cached chunk
    /// still holds. Returns the number of bytes actually freed.
    fn evict_chunk(
        &mut self,
        table: TableId,
        version_idx: usize,
        chunk: ChunkId,
        config: &AbmConfig,
    ) -> u64 {
        let page_size = config.page_size_bytes;
        let Some(table_state) = self.core.tables.get_mut(&table) else {
            return 0;
        };
        let Some(chunk_state) = table_state
            .versions
            .get_mut(version_idx)
            .and_then(|v| v.chunks.get_mut(&chunk))
        else {
            return 0;
        };
        if !chunk_state.flags.is_cached() {
            return 0;
        }
        let pages: Vec<PageId> = chunk_state.cached_pages.drain().collect();
        let interested: Vec<ScanId> = chunk_state.interested.iter().copied().collect();
        chunk_state.flags.set_empty();
        let mut freed = 0u64;
        for page in pages {
            if let Some(count) = table_state.resident_pages.get_mut(&page) {
                *count -= 1;
                if *count == 0 {
                    table_state.resident_pages.remove(&page);
                    freed += page_size;
                }
            }
        }
        for scan_id in interested {
            if let Some(slot) = self.slot_mut(scan_id) {
                slot.cached_available = slot.cached_available.saturating_sub(1);
            }
        }
        self.core.cached_bytes -= freed;
        freed
    }

    /// Marks a chunk load as finished. The chunk's pages now occupy buffer
    /// space; pages that were already resident (chunk boundaries, shared
    /// snapshot prefixes) are reference-counted rather than duplicated.
    fn complete_load(&mut self, plan: &LoadPlan, config: &AbmConfig) -> Result<()> {
        // Resolve the target version through the planning scan when it is
        // still registered. A scan may unregister (mid-flight abort, a
        // dropped operator) while its load sits in the scheduler's window;
        // the transfer still happened, so fall back to whichever version of
        // the table has the chunk mid-load — the load completes for the
        // surviving interested scans instead of poisoning the pipeline.
        // (The frozen `MonolithicAbm` errors here instead; its synchronous
        // callers completed every load before the scan could go away.)
        let version_idx = match self.core.scans.get(&plan.scan) {
            Some(scan) => Some(scan.version),
            None => self.core.tables.get(&plan.table).and_then(|t| {
                t.versions.iter().position(|v| {
                    v.chunks
                        .get(&plan.chunk)
                        .map(|c| c.flags.is_loading())
                        .unwrap_or(false)
                })
            }),
        };
        let Some(version_idx) = version_idx else {
            // The scan and its whole version are gone (it was the last
            // registered scan): there is nothing left to cache, but the
            // bytes were transferred — account them so the ABM and the
            // device keep agreeing on the I/O volume.
            self.core.stats.misses += 1;
            self.core.stats.pages_loaded += plan.pages.len() as u64;
            self.core.stats.io_bytes += plan.bytes;
            return Ok(());
        };
        let page_size = config.page_size_bytes;
        let table_state = self
            .core
            .tables
            .get_mut(&plan.table)
            .ok_or(Error::UnknownTable(plan.table))?;
        let chunk_state = table_state
            .versions
            .get_mut(version_idx)
            .and_then(|v| v.chunks.get_mut(&plan.chunk))
            .ok_or(Error::UnknownChunk(plan.chunk))?;
        if !chunk_state.flags.is_loading() {
            // The chunk is not mid-load: a straggler fallback (above) raced
            // this completion, or the registration is new. Re-applying the
            // completion side effects would double-count cached_available —
            // and silently defeat the is_protected anti-livelock rule — so
            // only account the transferred bytes.
            self.core.stats.misses += 1;
            self.core.stats.pages_loaded += plan.pages.len() as u64;
            self.core.stats.io_bytes += plan.bytes;
            return Ok(());
        }
        chunk_state.flags.set_cached();
        let full_pages = std::mem::take(&mut chunk_state.pending_pages);
        let interested: Vec<ScanId> = chunk_state.interested.iter().copied().collect();
        let mut newly_resident = 0u64;
        for page in full_pages {
            chunk_state.cached_pages.insert(page);
            let count = table_state.resident_pages.entry(page).or_insert(0);
            *count += 1;
            if *count == 1 {
                newly_resident += page_size;
            }
        }
        // The chunk is now available to every scan that still needs it.
        for scan_id in interested {
            if let Some(slot) = self.slot_mut(scan_id) {
                slot.cached_available += 1;
            }
        }
        self.core.cached_bytes += newly_resident;
        self.core.stats.misses += 1;
        self.core.stats.pages_loaded += plan.pages.len() as u64;
        self.core.stats.io_bytes += plan.bytes;
        Ok(())
    }
}

impl Abm {
    /// Creates an ABM managing a buffer of `config.buffer_capacity_bytes`,
    /// with its chunk directory partitioned into `config.directory_shards`
    /// lock domains.
    pub fn new(config: AbmConfig) -> Self {
        assert!(config.buffer_capacity_bytes >= config.page_size_bytes);
        let shards = config.directory_shards;
        Self {
            directory: ChunkDirectory::new(shards),
            core: Mutex::new(AbmCore::new()),
            config,
        }
    }

    /// Takes every lock (shards in ascending order, then the core) and
    /// replays all buffered delivery events in global arrival order,
    /// leaving the relevance core in exactly the state a single-lock ABM
    /// would be in.
    fn lock_all(&self) -> Locked<'_> {
        let mut shards = self.directory.lock_shards();
        let pending = ChunkDirectory::take_events(&mut shards);
        let mut core = self.core.lock();
        for (_, event) in pending {
            let DirEvent::Delivered { scan, chunk } = event;
            let Some((table, version)) =
                core.scans.get(&scan).map(|s| (s.request.table, s.version))
            else {
                continue;
            };
            if let Some(chunk_state) = core
                .tables
                .get_mut(&table)
                .and_then(|t| t.versions.get_mut(version))
                .and_then(|v| v.chunks.get_mut(&chunk))
            {
                chunk_state.interested.remove(&scan);
            }
        }
        Locked { shards, core }
    }

    /// Drains and replays all buffered delivery events (bounding buffer
    /// memory on delivery-heavy workloads).
    fn drain_events(&self) {
        drop(self.lock_all());
    }

    /// Number of chunk-directory shards.
    pub fn shard_count(&self) -> usize {
        self.directory.shard_count()
    }

    /// Accumulated statistics (`io_bytes` is the total I/O volume). Hits
    /// are aggregated from the directory shards, everything else from the
    /// relevance core.
    pub fn stats(&self) -> BufferStats {
        let mut total = self.directory.stats();
        total.merge(&self.core.lock().stats);
        total
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.core.lock().cached_bytes
    }

    /// Number of registered CScans.
    pub fn registered_scans(&self) -> usize {
        self.core.lock().scans.len()
    }

    /// Number of distinct table versions registered for `table`.
    pub fn version_count(&self, table: TableId) -> usize {
        self.core
            .lock()
            .tables
            .get(&table)
            .map(|t| t.versions.len())
            .unwrap_or(0)
    }

    /// Number of leading chunks of `table` currently marked shared.
    pub fn shared_prefix_chunks(&self, table: TableId) -> u32 {
        self.core
            .lock()
            .tables
            .get(&table)
            .map(|t| t.shared_prefix_chunks)
            .unwrap_or(0)
    }

    /// Whether `chunk` of the version used by `scan` is cached.
    pub fn chunk_is_cached(&self, scan: ScanId, chunk: ChunkId) -> bool {
        if let Some(cached) = self.directory.chunk_flag_cached(scan, chunk) {
            return cached;
        }
        // The chunk is outside the scan's registered set (or the scan is
        // unknown): answer from the version-level chunk table.
        let core = self.core.lock();
        let Some(state) = core.scans.get(&scan) else {
            return false;
        };
        core.tables
            .get(&state.request.table)
            .and_then(|t| t.versions.get(state.version))
            .and_then(|v| v.chunks.get(&chunk))
            .map(|c| c.flags.is_cached())
            .unwrap_or(false)
    }

    /// Registers a CScan (`RegisterCScan`).
    pub fn register_cscan(&self, request: CScanRequest) -> Result<CScanHandle> {
        // Pure derivation first: the chunk map and needed set depend only
        // on the request.
        let chunk_map = Arc::new(
            request
                .layout
                .chunk_map(&request.snapshot, &request.columns),
        );
        let stable = request.snapshot.stable_tuples();
        let chunk_ids = request.layout.chunks_for_ranges(&request.ranges, stable);
        let mut needed = HashMap::with_capacity(chunk_ids.len());
        let mut order = Vec::with_capacity(chunk_ids.len());
        let mut total_tuples = 0u64;
        for &chunk in &chunk_ids {
            let chunk_range = request.layout.chunk_sid_range(chunk, stable);
            let tuples = request.ranges.intersect_range(&chunk_range).total_tuples();
            if tuples == 0 {
                continue;
            }
            needed.insert(chunk, tuples);
            order.push(chunk);
            total_tuples += tuples;
        }
        order.sort_unstable();

        let mut locked = self.lock_all();
        let id = ScanId::new(locked.core.next_scan);
        locked.core.next_scan += 1;
        // The id is consumed even for an empty registration, exactly as the
        // monolithic ABM allocated it before validating.
        if chunk_ids.is_empty() {
            return Err(Error::plan("CScan covers no chunks"));
        }
        let table = request.table;
        let in_order = request.in_order;

        // Find or create the table version this snapshot belongs to
        // (checkpoint cases (i), (ii) and (iv) of Section 2.1).
        let table_state = locked.core.tables.entry(table).or_default();
        let version = match table_state
            .versions
            .iter()
            .position(|v| v.snapshot.same_pages(&request.snapshot))
        {
            Some(idx) => idx,
            None => {
                table_state.versions.push(VersionState {
                    snapshot: Arc::clone(&request.snapshot),
                    chunks: HashMap::new(),
                    scans: HashSet::new(),
                });
                table_state.versions.len() - 1
            }
        };
        table_state.versions[version].scans.insert(id);
        let mut flags = HashMap::with_capacity(order.len());
        for &chunk in order.iter() {
            let chunk_state = table_state.versions[version]
                .chunks
                .entry(chunk)
                .or_insert_with(CoreChunk::new);
            chunk_state.interested.insert(id);
            chunk_state.flags.add_interest();
            flags.insert(chunk, Arc::clone(&chunk_state.flags));
        }

        let handle = CScanHandle {
            id,
            total_chunks: order.len(),
            total_tuples,
        };
        // Some of the requested chunks may already be cached (loaded for
        // other scans or by a previous query on the same table version).
        let cached_available = order
            .iter()
            .filter(|c| flags.get(c).map(|f| f.is_cached()).unwrap_or(false))
            .count();
        locked.core.scans.insert(
            id,
            CoreScan {
                request,
                chunk_map,
                version,
            },
        );
        let shard_idx = locked.shard_index(id);
        locked.shards[shard_idx].scans.insert(
            id,
            ScanSlot {
                needed,
                order,
                next_in_order: 0,
                cached_available,
                in_order,
                flags,
            },
        );
        locked.core.recompute_shared_prefixes();
        Ok(handle)
    }

    /// Unregisters a finished (or aborted) CScan (`UnregisterCScan`). Chunk
    /// metadata of table versions that no longer have any registered scan
    /// is destroyed, as described for PDT checkpoints.
    pub fn unregister_cscan(&self, scan: ScanId) -> Result<()> {
        let mut locked = self.lock_all();
        let state = locked
            .core
            .scans
            .remove(&scan)
            .ok_or(Error::UnknownScan(scan))?;
        let shard_idx = locked.shard_index(scan);
        locked.shards[shard_idx].scans.remove(&scan);
        let table = state.request.table;
        if let Some(table_state) = locked.core.tables.get_mut(&table) {
            if let Some(version) = table_state.versions.get_mut(state.version) {
                version.scans.remove(&scan);
                for chunk in version.chunks.values_mut() {
                    if chunk.interested.remove(&scan) {
                        chunk.flags.remove_interest();
                    }
                }
            }
            // Drop versions without scans, releasing their cached bytes via
            // the page reference counts.
            let page_size = self.config.page_size_bytes;
            let mut freed = 0u64;
            let mut kept = Vec::new();
            for version in table_state.versions.drain(..) {
                if version.scans.is_empty() {
                    for chunk in version.chunks.values() {
                        for page in &chunk.cached_pages {
                            if let Some(count) = table_state.resident_pages.get_mut(page) {
                                *count -= 1;
                                if *count == 0 {
                                    table_state.resident_pages.remove(page);
                                    freed += page_size;
                                }
                            }
                        }
                    }
                } else {
                    kept.push(version);
                }
            }
            table_state.versions = kept;
            let empty = table_state.versions.is_empty();
            locked.core.cached_bytes -= freed;
            if empty {
                locked.core.tables.remove(&table);
            }
        }
        // Version indices of remaining scans may have shifted.
        locked.core.reindex_versions(table);
        locked.core.recompute_shared_prefix_for_table(table);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Decides what an ABM load pump should do next: either load a chunk
    /// (after freeing space) or stay idle.
    pub fn next_action(&self, now: VirtualInstant) -> AbmAction {
        match self.next_load(now) {
            Some(plan) => AbmAction::Load(plan),
            None => AbmAction::Idle,
        }
    }

    /// Chooses the next chunk to load (the
    /// QueryRelevance → LoadRelevance → KeepRelevance pipeline).
    pub fn next_load(&self, _now: VirtualInstant) -> Option<LoadPlan> {
        let mut locked = self.lock_all();
        locked.next_load(&self.config)
    }

    /// Marks a chunk load as finished (the caller performed and accounted
    /// the actual transfer).
    pub fn complete_load(&self, plan: &LoadPlan, _now: VirtualInstant) -> Result<()> {
        let mut locked = self.lock_all();
        locked.complete_load(plan, &self.config)
    }

    /// Hands the best cached chunk to `scan` (`GetChunk`). Returns `None`
    /// if nothing it needs is cached (the scan should block) or if it
    /// already received everything. This is the sharded fast path: only the
    /// shard owning `scan` is locked.
    pub fn get_chunk(&self, scan: ScanId) -> Result<Option<ChunkDelivery>> {
        let (delivery, flush) = self.directory.try_deliver(scan)?;
        if flush {
            self.drain_events();
        }
        Ok(delivery)
    }

    /// Whether a chunk is currently cached and available for `scan` (a
    /// non-consuming variant of [`Abm::get_chunk`]).
    pub fn has_cached_chunk(&self, scan: ScanId) -> bool {
        self.directory.has_cached_chunk(scan)
    }

    /// Whether `scan` has received every chunk it registered for.
    pub fn is_finished(&self, scan: ScanId) -> bool {
        self.directory.is_finished(scan)
    }

    /// Number of chunks `scan` still needs.
    pub fn remaining_chunks(&self, scan: ScanId) -> usize {
        self.directory.remaining_chunks(scan)
    }

    /// Distinct pages `scan` still has to consume, in ascending order (the
    /// sharing-potential sampling input of Figures 17/18).
    pub fn outstanding_pages(&self, scan: ScanId) -> Vec<PageId> {
        let needed = self.directory.needed_chunks(scan);
        if needed.is_empty() {
            return Vec::new();
        }
        let core = self.core.lock();
        let Some(state) = core.scans.get(&scan) else {
            return Vec::new();
        };
        let mut pages: Vec<PageId> = needed
            .iter()
            .flat_map(|chunk| state.chunk_map.pages(*chunk).iter().copied())
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    #[cfg(test)]
    pub(crate) fn plan_load_for(&self, scan: ScanId) -> Option<LoadPlan> {
        let mut locked = self.lock_all();
        locked.plan_load_for(scan, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::TupleRange;
    use scanshare_storage::column::{ColumnSpec, ColumnType};
    use scanshare_storage::datagen::DataGen;
    use scanshare_storage::storage::Storage;
    use scanshare_storage::table::TableSpec;

    const PAGE: u64 = 1024;
    const CHUNK: u64 = 1000;

    fn setup(base_tuples: u64) -> (Arc<Storage>, TableId) {
        let storage = Storage::with_seed(PAGE, CHUNK, 11);
        let spec = TableSpec::new(
            "lineitem",
            vec![
                ColumnSpec::with_width("a", ColumnType::Int64, 4.0),
                ColumnSpec::with_width("b", ColumnType::Int64, 2.0),
            ],
            base_tuples,
        );
        let id = storage
            .create_table_with_data(
                spec,
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(1),
                ],
            )
            .unwrap();
        (storage, id)
    }

    fn request(
        storage: &Arc<Storage>,
        table: TableId,
        range: TupleRange,
        in_order: bool,
    ) -> CScanRequest {
        let layout = storage.layout(table).unwrap();
        let snapshot = storage.master_snapshot(table).unwrap();
        CScanRequest {
            table,
            snapshot,
            layout,
            columns: vec![0, 1],
            ranges: RangeList::from_ranges([range]),
            in_order,
        }
    }

    /// Every test runs the decomposed ABM with a 2-way sharded directory, so
    /// the event-queue replay path is always exercised.
    fn abm(capacity_bytes: u64) -> Abm {
        Abm::new(AbmConfig::new(capacity_bytes, PAGE).with_shards(2))
    }

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    /// Drives the ABM until `scan` has consumed all of its chunks, returning
    /// the number of loads performed. Panics if no progress is possible.
    fn drain_scan(abm: &Abm, scan: ScanId) -> usize {
        let mut loads = 0;
        let mut guard = 0;
        while !abm.is_finished(scan) {
            guard += 1;
            assert!(guard < 10_000, "scan did not make progress");
            if let Some(delivery) = abm.get_chunk(scan).unwrap() {
                assert!(delivery.tuples > 0);
                continue;
            }
            match abm.next_action(now()) {
                AbmAction::Load(plan) => {
                    abm.complete_load(&plan, now()).unwrap();
                    loads += 1;
                }
                AbmAction::Idle => panic!("scan starved but ABM is idle"),
            }
        }
        loads
    }

    #[test]
    fn register_reports_chunks_and_tuples() {
        let (storage, table) = setup(10_000);
        let abm = abm(1 << 20);
        let handle = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000), false))
            .unwrap();
        assert_eq!(handle.total_chunks, 10);
        assert_eq!(handle.total_tuples, 10_000);
        assert_eq!(abm.registered_scans(), 1);
        // Partial range: 2.5 chunks worth of tuples.
        let handle2 = abm
            .register_cscan(request(&storage, table, TupleRange::new(500, 3000), false))
            .unwrap();
        assert_eq!(handle2.total_chunks, 3);
        assert_eq!(handle2.total_tuples, 2500);
    }

    #[test]
    fn empty_range_registration_is_rejected() {
        let (storage, table) = setup(1_000);
        let abm = abm(1 << 20);
        let mut req = request(&storage, table, TupleRange::new(0, 0), false);
        req.ranges = RangeList::new();
        assert!(abm.register_cscan(req).is_err());
    }

    #[test]
    fn single_scan_receives_all_chunks_exactly_once() {
        let (storage, table) = setup(5_000);
        let abm = abm(1 << 20);
        let handle = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 5_000), false))
            .unwrap();
        let mut delivered = Vec::new();
        let mut guard = 0;
        while !abm.is_finished(handle.id) {
            guard += 1;
            assert!(guard < 1000);
            if let Some(d) = abm.get_chunk(handle.id).unwrap() {
                delivered.push(d.chunk);
            } else {
                match abm.next_action(now()) {
                    AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                    AbmAction::Idle => panic!("starved"),
                }
            }
        }
        delivered.sort_unstable();
        delivered.dedup();
        assert_eq!(delivered.len(), handle.total_chunks);
        abm.unregister_cscan(handle.id).unwrap();
        assert_eq!(abm.registered_scans(), 0);
        assert_eq!(
            abm.version_count(table),
            0,
            "metadata destroyed with the last scan"
        );
    }

    #[test]
    fn concurrent_scans_share_loaded_chunks() {
        let (storage, table) = setup(10_000);
        // Plenty of buffer: every chunk is loaded at most once.
        let abm = abm(1 << 22);
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000), false))
            .unwrap();
        let b = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000), false))
            .unwrap();

        // Drive both scans round-robin.
        let mut guard = 0;
        while !(abm.is_finished(a.id) && abm.is_finished(b.id)) {
            guard += 1;
            assert!(guard < 10_000);
            let mut progressed = false;
            for scan in [a.id, b.id] {
                if !abm.is_finished(scan) && abm.get_chunk(scan).unwrap().is_some() {
                    progressed = true;
                }
            }
            if !progressed {
                match abm.next_action(now()) {
                    AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                    AbmAction::Idle => panic!("both scans starved but ABM idle"),
                }
            }
        }
        let stats = abm.stats();
        // 10 chunks were loaded once each but delivered twice (20 deliveries).
        assert_eq!(stats.misses, 10);
        assert_eq!(stats.hits, 20);
        // Total I/O equals the table size (each page loaded exactly once):
        // column a: 4 B/tuple -> 40 pages, column b: 2 B/tuple -> 20 pages.
        assert_eq!(stats.io_bytes, 60 * PAGE);
    }

    #[test]
    fn load_relevance_prefers_chunks_wanted_by_more_scans() {
        let (storage, table) = setup(10_000);
        let abm = abm(1 << 22);
        // Scan A needs everything; scan B only chunks 5..10.
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000), false))
            .unwrap();
        let _b = abm
            .register_cscan(request(
                &storage,
                table,
                TupleRange::new(5_000, 10_000),
                false,
            ))
            .unwrap();
        // First load decision for A must pick a chunk B also wants.
        let plan = abm.plan_load_for(a.id).unwrap();
        assert!(
            plan.chunk.raw() >= 5,
            "chunk {} is not shared with scan B",
            plan.chunk
        );
    }

    #[test]
    fn eviction_respects_keep_relevance_and_capacity() {
        let (storage, table) = setup(10_000);
        // Column a needs 4 pages per chunk, column b 2 pages per chunk ->
        // 6 KiB per chunk. Capacity of 2 chunks.
        let abm = abm(12 * PAGE);
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000), false))
            .unwrap();
        let loads = drain_scan(&abm, a.id);
        assert_eq!(loads, 10, "every chunk loaded exactly once");
        assert!(abm.stats().evictions > 0, "small buffer forces evictions");
        assert!(abm.cached_bytes() <= 12 * PAGE);
    }

    #[test]
    fn in_order_scans_get_chunks_sequentially() {
        let (storage, table) = setup(5_000);
        let abm = abm(1 << 22);
        let handle = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 5_000), true))
            .unwrap();
        let mut seen = Vec::new();
        while !abm.is_finished(handle.id) {
            if let Some(d) = abm.get_chunk(handle.id).unwrap() {
                seen.push(d.chunk.raw());
            } else {
                match abm.next_action(now()) {
                    AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                    AbmAction::Idle => panic!("starved"),
                }
            }
        }
        let expected: Vec<u32> = (0..5).collect();
        assert_eq!(
            seen, expected,
            "in-order CScan must receive chunks in table order"
        );
    }

    #[test]
    fn snapshots_with_common_prefix_share_chunks() {
        let (storage, table) = setup(10_000);
        let layout = storage.layout(table).unwrap();
        let base = storage.master_snapshot(table).unwrap();

        // An append transaction commits, creating a second snapshot version.
        let mut tx = storage.begin_append(table).unwrap();
        tx.append_rows(&[vec![1; 3000], vec![2; 3000]]).unwrap();
        let appended = tx.commit().unwrap();
        assert_eq!(appended.stable_tuples(), 13_000);

        let abm = abm(1 << 22);
        let old_req = CScanRequest {
            table,
            snapshot: Arc::clone(&base),
            layout: Arc::clone(&layout),
            columns: vec![0, 1],
            ranges: RangeList::single(0, 10_000),
            in_order: false,
        };
        let new_req = CScanRequest {
            table,
            snapshot: Arc::clone(&appended),
            layout: Arc::clone(&layout),
            columns: vec![0, 1],
            ranges: RangeList::single(0, 13_000),
            in_order: false,
        };
        let _a = abm.register_cscan(old_req).unwrap();
        let _b = abm.register_cscan(new_req).unwrap();
        assert_eq!(
            abm.version_count(table),
            2,
            "different snapshots are different versions"
        );
        // 10,000 base tuples: the wide column has 256 tuples/page so the last
        // partial page is rewritten by the append; the shared prefix covers
        // all but the tail of the table.
        let prefix = abm.shared_prefix_chunks(table);
        assert!(
            prefix >= 9,
            "most of the table is shared, got {prefix} chunks"
        );
        assert!(prefix <= 10);
    }

    #[test]
    fn disjoint_snapshots_after_checkpoint_share_nothing() {
        let (storage, table) = setup(5_000);
        let layout = storage.layout(table).unwrap();
        let old = storage.master_snapshot(table).unwrap();
        let new = storage.install_checkpoint(table, 5_000, None).unwrap();

        let abm = abm(1 << 22);
        let req_old = CScanRequest {
            table,
            snapshot: old,
            layout: Arc::clone(&layout),
            columns: vec![0],
            ranges: RangeList::single(0, 5_000),
            in_order: false,
        };
        let req_new = CScanRequest {
            table,
            snapshot: new,
            layout,
            columns: vec![0],
            ranges: RangeList::single(0, 5_000),
            in_order: false,
        };
        let a = abm.register_cscan(req_old).unwrap();
        let _b = abm.register_cscan(req_new).unwrap();
        assert_eq!(abm.version_count(table), 2);
        assert_eq!(abm.shared_prefix_chunks(table), 0);

        // Unregistering the old scan destroys its version's metadata.
        abm.unregister_cscan(a.id).unwrap();
        assert_eq!(abm.version_count(table), 1);
    }

    #[test]
    fn same_snapshot_scans_reuse_the_version() {
        let (storage, table) = setup(3_000);
        let abm = abm(1 << 22);
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 3_000), false))
            .unwrap();
        let b = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 3_000), false))
            .unwrap();
        assert_eq!(abm.version_count(table), 1);
        abm.unregister_cscan(a.id).unwrap();
        assert_eq!(abm.version_count(table), 1);
        abm.unregister_cscan(b.id).unwrap();
        assert_eq!(abm.version_count(table), 0);
    }

    #[test]
    fn starved_short_query_is_served_before_long_query() {
        let (storage, table) = setup(10_000);
        let abm = abm(1 << 22);
        let long = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 10_000), false))
            .unwrap();
        let short = abm
            .register_cscan(request(
                &storage,
                table,
                TupleRange::new(9_000, 10_000),
                false,
            ))
            .unwrap();
        // Both are starved; the shorter query (1 chunk) wins QueryRelevance.
        let plan = abm.next_load(now()).unwrap();
        assert_eq!(plan.scan, short.id);
        abm.complete_load(&plan, now()).unwrap();
        // The loaded chunk is also the one the long scan will reuse later.
        assert!(abm.chunk_is_cached(long.id, plan.chunk));
    }

    #[test]
    fn unknown_scan_operations_error() {
        let abm = abm(1 << 20);
        assert!(abm.get_chunk(ScanId::new(99)).is_err());
        assert!(abm.unregister_cscan(ScanId::new(99)).is_err());
        assert!(abm.is_finished(ScanId::new(99)));
        assert_eq!(abm.remaining_chunks(ScanId::new(99)), 0);
        assert!(!abm.has_cached_chunk(ScanId::new(99)));
        assert!(abm.outstanding_pages(ScanId::new(99)).is_empty());
    }

    #[test]
    fn outstanding_pages_shrink_as_chunks_are_delivered() {
        let (storage, table) = setup(5_000);
        let abm = abm(1 << 22);
        let handle = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 5_000), false))
            .unwrap();
        let initial = abm.outstanding_pages(handle.id);
        // Column a: 4 B/tuple -> 20 pages, column b: 2 B/tuple -> 10 pages.
        assert_eq!(initial.len(), 30);
        let mut previous = initial.len();
        while !abm.is_finished(handle.id) {
            if abm.get_chunk(handle.id).unwrap().is_some() {
                let outstanding = abm.outstanding_pages(handle.id).len();
                assert!(outstanding < previous, "delivery must shrink the tail");
                previous = outstanding;
            } else {
                match abm.next_action(now()) {
                    AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                    AbmAction::Idle => panic!("starved"),
                }
            }
        }
        assert!(abm.outstanding_pages(handle.id).is_empty());
    }

    #[test]
    fn loads_in_flight_survive_their_scan_unregistering() {
        // A load planned for one scan may still be in the scheduler's
        // window when that scan aborts. Completing it must neither error
        // nor leave the chunk stuck mid-load: survivors of the same
        // version get the chunk, and the transferred bytes stay accounted.
        let (storage, table) = setup(5_000);
        let abm = abm(1 << 22);
        let a = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 5_000), false))
            .unwrap();
        let b = abm
            .register_cscan(request(&storage, table, TupleRange::new(0, 5_000), false))
            .unwrap();
        let plan = abm.next_load(now()).unwrap();
        abm.unregister_cscan(plan.scan).unwrap();
        abm.complete_load(&plan, now()).unwrap();
        let survivor = if plan.scan == a.id { b.id } else { a.id };
        assert!(
            abm.chunk_is_cached(survivor, plan.chunk),
            "the completed load must serve the surviving scan"
        );
        assert_eq!(abm.get_chunk(survivor).unwrap().unwrap().chunk, plan.chunk);
        assert_eq!(abm.stats().io_bytes, plan.bytes);

        // When even the last scan of the version is gone, a straggler
        // completion only accounts its I/O (nothing is left to cache).
        let plan2 = abm.next_load(now()).unwrap();
        abm.unregister_cscan(plan2.scan).unwrap();
        abm.complete_load(&plan2, now()).unwrap();
        assert_eq!(abm.version_count(table), 0);
        assert_eq!(abm.stats().io_bytes, plan.bytes + plan2.bytes);
        assert_eq!(abm.cached_bytes(), 0);
    }

    #[test]
    fn shard_counts_do_not_change_decisions_or_io() {
        // The headline invariance property, in miniature (the randomized
        // version lives in tests/abm_equivalence.rs): the same two-scan
        // drive produces identical deliveries and stats per shard count.
        let (storage, table) = setup(8_000);
        let run = |shards: usize| {
            let abm = Abm::new(AbmConfig::new(20 * PAGE, PAGE).with_shards(shards));
            let a = abm
                .register_cscan(request(&storage, table, TupleRange::new(0, 8_000), false))
                .unwrap();
            let b = abm
                .register_cscan(request(
                    &storage,
                    table,
                    TupleRange::new(2_000, 8_000),
                    false,
                ))
                .unwrap();
            let mut trace: Vec<(u64, u32)> = Vec::new();
            let mut guard = 0;
            while !(abm.is_finished(a.id) && abm.is_finished(b.id)) {
                guard += 1;
                assert!(guard < 10_000);
                let mut progressed = false;
                for scan in [a.id, b.id] {
                    if !abm.is_finished(scan) {
                        if let Some(d) = abm.get_chunk(scan).unwrap() {
                            trace.push((scan.raw(), d.chunk.raw()));
                            progressed = true;
                        }
                    }
                }
                if !progressed {
                    match abm.next_action(now()) {
                        AbmAction::Load(plan) => abm.complete_load(&plan, now()).unwrap(),
                        AbmAction::Idle => panic!("starved"),
                    }
                }
            }
            (trace, abm.stats())
        };
        let reference = run(1);
        for shards in [2usize, 8] {
            assert_eq!(run(shards), reference, "shards {shards}");
        }
    }
}
