//! The page-level buffer pool.
//!
//! [`BufferPool`] tracks which pages are resident, delegates every
//! replacement decision to a pluggable [`ReplacementPolicy`] (LRU or PBM),
//! maintains the statistics reported in the paper's figures, and can record
//! a page-reference trace for the OPT simulation.
//!
//! The pool is deliberately free of timing concerns: callers (the execution
//! engine and the discrete-event simulator) decide *when* a miss completes
//! using the simulated I/O device; the pool only answers *whether* a request
//! hits and *which* pages get evicted.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use scanshare_common::{Error, PageId, Result, ScanId, VirtualInstant};
use scanshare_iosim::{BlockDevice, IoKind, ReadSpec, ReferenceTrace};
use scanshare_storage::layout::ScanPagePlan;

use crate::metrics::BufferStats;
use crate::policy::{ReplacementPolicy, ScanInfo};

/// The pool surface the asynchronous prefetch window drives: free-capacity
/// probes, policy-ranked candidates and speculative admission. Implemented
/// by [`BufferPool`] (the simulator's single-threaded pool) and by
/// `&`[`ShardedPool`](crate::sharded::ShardedPool) (the execution engine's
/// concurrent pool), so both run the identical window semantics.
pub trait PrefetchPool {
    /// Number of unused page slots (the only capacity prefetching may use).
    fn free_pages(&self) -> usize;
    /// Page size in bytes.
    fn page_size_bytes(&self) -> u64;
    /// Up to `budget` non-resident pages worth staging, most urgent first.
    fn prefetch_candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId>;
    /// Admits `page` speculatively; `false` when resident or full.
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool;
}

impl PrefetchPool for BufferPool {
    fn free_pages(&self) -> usize {
        BufferPool::free_pages(self)
    }
    fn page_size_bytes(&self) -> u64 {
        BufferPool::page_size_bytes(self)
    }
    fn prefetch_candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        BufferPool::prefetch_candidates(self, budget, now)
    }
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        BufferPool::admit_prefetch(self, page, now)
    }
}

/// Tops up a bounded asynchronous prefetch window: drops completed transfers
/// from `inflight`, asks the pool's policy for the most urgent non-resident
/// pages, admits them (never evicting — only free capacity is filled) and
/// submits their transfers to `device` without blocking.
///
/// This is the one implementation of the window semantics, shared by the
/// execution engine's `PooledBackend` and the discrete-event simulator so
/// the two timing models cannot drift apart.
pub fn top_up_prefetch_window<P: PrefetchPool>(
    pool: &mut P,
    device: &dyn BlockDevice,
    inflight: &mut HashMap<PageId, VirtualInstant>,
    window: usize,
    now: VirtualInstant,
) {
    if window == 0 {
        return;
    }
    // Completed transfers free their window slots; their pages stay
    // resident in the pool.
    inflight.retain(|_, done| *done > now);
    let slots = window.saturating_sub(inflight.len()).min(pool.free_pages());
    if slots == 0 {
        return;
    }
    let page_size = pool.page_size_bytes();
    for page in pool.prefetch_candidates(slots, now) {
        if pool.admit_prefetch(page, now) {
            let spec =
                ReadSpec::for_pages(std::slice::from_ref(&page), page_size, IoKind::Prefetch);
            // A failed speculative submission costs only the window slot:
            // the page stays admitted and a later demand access loads it
            // through the ordinary (error-reporting) miss path.
            if let Ok(completion) = device.submit_read(now, spec) {
                inflight.insert(page, completion.done_at);
            }
        }
    }
}

/// Result of a page request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The page was already resident.
    Hit,
    /// The page had to be loaded; the listed pages were evicted to make room.
    Miss {
        /// Pages evicted to make room for the new page.
        evicted: Vec<PageId>,
    },
}

impl AccessOutcome {
    /// Whether the access was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A fixed-capacity page buffer driven by a replacement policy.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: usize,
    page_size_bytes: u64,
    policy: Box<dyn ReplacementPolicy>,
    resident: HashSet<PageId>,
    pinned: HashMap<PageId, u32>,
    stats: BufferStats,
    trace: Option<Arc<ReferenceTrace>>,
    evict_batch: usize,
    next_scan: u64,
}

impl BufferPool {
    /// Creates a pool of `capacity_pages` pages of `page_size_bytes` each.
    pub fn new(
        capacity_pages: usize,
        page_size_bytes: u64,
        policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        assert!(
            capacity_pages > 0,
            "buffer pool must hold at least one page"
        );
        Self {
            capacity_pages,
            page_size_bytes,
            policy,
            resident: HashSet::new(),
            pinned: HashMap::new(),
            stats: BufferStats::default(),
            trace: None,
            evict_batch: 1,
            next_scan: 0,
        }
    }

    /// Attaches a reference-trace recorder (used to later replay the same
    /// page-reference sequence under OPT, exactly like the paper does with
    /// the trace of a PBM run).
    pub fn with_trace(mut self, trace: Arc<ReferenceTrace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Sets the eviction batch size (PBM amortizes evictions in groups of 16
    /// or more; the default here is 1 so that the pool always runs at full
    /// capacity).
    pub fn with_evict_batch(mut self, batch: usize) -> Self {
        self.evict_batch = batch.max(1);
        self
    }

    /// The policy's short name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Pool capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Page size in bytes.
    pub fn page_size_bytes(&self) -> u64 {
        self.page_size_bytes
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of unused page slots (the only capacity prefetching may use).
    pub fn free_pages(&self) -> usize {
        self.capacity_pages.saturating_sub(self.resident.len())
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Registers a scan and announces its page plan to the policy
    /// (`RegisterScan`). Returns the scan id to use in subsequent calls.
    pub fn register_scan(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        let id = ScanId::new(self.next_scan);
        self.next_scan += 1;
        let info = ScanInfo {
            id,
            total_tuples: plan.total_tuples,
            distinct_pages: plan.distinct_pages(),
        };
        self.policy.register_scan(&info, plan, now);
        id
    }

    /// Reports scan progress (`ReportScanPosition`).
    pub fn report_scan_position(
        &mut self,
        scan: ScanId,
        tuples_consumed: u64,
        now: VirtualInstant,
    ) {
        self.policy.report_scan_position(scan, tuples_consumed, now);
    }

    /// Unregisters a finished scan (`UnregisterScan`).
    pub fn unregister_scan(&mut self, scan: ScanId, now: VirtualInstant) {
        self.policy.unregister_scan(scan, now);
    }

    /// Pins a page, preventing its eviction until unpinned.
    pub fn pin(&mut self, page: PageId) {
        *self.pinned.entry(page).or_insert(0) += 1;
    }

    /// Unpins a page previously pinned.
    pub fn unpin(&mut self, page: PageId) {
        if let Some(count) = self.pinned.get_mut(&page) {
            *count -= 1;
            if *count == 0 {
                self.pinned.remove(&page);
            }
        }
    }

    /// Requests a page on behalf of `scan`. On a miss the page is admitted
    /// immediately (the caller accounts for the load time) after evicting
    /// enough unpinned pages to stay within capacity.
    pub fn request_page(
        &mut self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> Result<AccessOutcome> {
        if let Some(trace) = &self.trace {
            trace.record(page, scan);
        }
        if self.resident.contains(&page) {
            self.stats.hits += 1;
            self.policy.on_access(page, scan, now);
            return Ok(AccessOutcome::Hit);
        }

        // Make room.
        let mut evicted = Vec::new();
        if !self.make_room(Some(page), now, &mut evicted) {
            return Err(Error::BufferPoolTooSmall {
                capacity_pages: self.capacity_pages,
                required_pages: self.pinned.len() + 1,
            });
        }

        self.resident.insert(page);
        self.policy.on_admit(page, now);
        self.policy.on_access(page, scan, now);
        self.stats.misses += 1;
        self.stats.pages_loaded += 1;
        self.stats.io_bytes += self.page_size_bytes;
        Ok(AccessOutcome::Miss { evicted })
    }

    /// Evicts until one more page fits; returns false when pinned pages make
    /// that impossible.
    fn make_room(
        &mut self,
        admitting: Option<PageId>,
        now: VirtualInstant,
        evicted: &mut Vec<PageId>,
    ) -> bool {
        if self.resident.len() >= self.capacity_pages {
            let need = self.resident.len() + 1 - self.capacity_pages;
            let want = need.max(self.evict_batch).min(self.resident.len());
            let mut exclude: HashSet<PageId> = self.pinned.keys().copied().collect();
            if let Some(page) = admitting {
                exclude.insert(page);
            }
            let victims = self.policy.choose_victims(want, &exclude, now);
            for victim in victims {
                if self.resident.remove(&victim) {
                    self.policy.on_evict(victim);
                    self.stats.evictions += 1;
                    evicted.push(victim);
                }
            }
        }
        self.resident.len() < self.capacity_pages
    }

    /// Asks the policy which non-resident pages to stage next (see
    /// [`ReplacementPolicy::prefetch_hints`]) and filters the answer against
    /// the current residency set. Returns at most `budget` pages, most
    /// urgent first.
    pub fn prefetch_candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        if budget == 0 {
            return Vec::new();
        }
        let hints = self.policy.prefetch_hints(now, budget);
        let mut seen = HashSet::with_capacity(hints.len());
        hints
            .into_iter()
            .filter(|p| !self.resident.contains(p) && seen.insert(*p))
            .take(budget)
            .collect()
    }

    /// Admits `page` speculatively (the caller has submitted the transfer to
    /// the I/O device). Counts as prefetch I/O, not as a miss: the demand
    /// access that later consumes the page is a hit.
    ///
    /// Prefetch admissions **never evict**: they only fill otherwise-unused
    /// capacity. Evicting for a speculative load would let one scan's
    /// readahead displace pages other scans still need — under memory
    /// pressure that cascades into re-read storms that cost far more I/O
    /// than the overlap saves. Bounding prefetch to free buffers caps the
    /// downside at zero extra misses while keeping the full benefit where it
    /// exists (cold data, pools with headroom).
    ///
    /// Returns `false` without side effects when the page is already
    /// resident or the pool is full (prefetching is best-effort and never
    /// errors a scan).
    pub fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        if self.resident.contains(&page) || self.resident.len() >= self.capacity_pages {
            return false;
        }
        if let Some(trace) = &self.trace {
            trace.record_prefetch(page);
        }
        self.resident.insert(page);
        self.policy.on_admit(page, now);
        self.stats.pages_loaded += 1;
        self.stats.io_bytes += self.page_size_bytes;
        self.stats.prefetched_pages += 1;
        self.stats.prefetch_io_bytes += self.page_size_bytes;
        true
    }

    /// Drops the listed pages from the pool if resident and unpinned, in the
    /// given order, telling the policy to forget each one. Used when a
    /// checkpoint replaces a table's stable image: the old snapshot's pages
    /// can never be requested again, so keeping them resident only wastes
    /// capacity. Counted as `invalidated_pages`, not as evictions. Returns
    /// how many pages were dropped.
    pub fn invalidate_pages(&mut self, pages: &[PageId]) -> usize {
        let mut dropped = 0;
        for &page in pages {
            if self.pinned.contains_key(&page) {
                continue;
            }
            if self.resident.remove(&page) {
                self.policy.on_evict(page);
                self.stats.invalidated_pages += 1;
                dropped += 1;
            }
        }
        dropped
    }

    /// Drops every resident page and resets the statistics (the policy keeps
    /// its scan registrations). Mostly useful between experiment repetitions.
    pub fn clear(&mut self) {
        for page in self.resident.drain() {
            self.policy.on_evict(page);
        }
        self.pinned.clear();
        self.stats = BufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruPolicy;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(capacity, 1024, Box::new(LruPolicy::new()))
    }

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut pool = pool(2);
        assert!(!pool.request_page(p(1), None, now()).unwrap().is_hit());
        assert!(pool.request_page(p(1), None, now()).unwrap().is_hit());
        assert!(!pool.request_page(p(2), None, now()).unwrap().is_hit());
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.io_bytes, 2048);
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut pool = pool(3);
        for i in 0..10 {
            pool.request_page(p(i), None, now()).unwrap();
            assert!(pool.resident_count() <= 3);
        }
        assert_eq!(pool.stats().evictions, 7);
    }

    #[test]
    fn lru_pool_evicts_oldest_page() {
        let mut pool = pool(2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.request_page(p(2), None, now()).unwrap();
        pool.request_page(p(1), None, now()).unwrap(); // 1 most recent
        let outcome = pool.request_page(p(3), None, now()).unwrap();
        assert_eq!(
            outcome,
            AccessOutcome::Miss {
                evicted: vec![p(2)]
            }
        );
        assert!(pool.contains(p(1)));
        assert!(!pool.contains(p(2)));
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let mut pool = pool(2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.pin(p(1));
        pool.request_page(p(2), None, now()).unwrap();
        pool.request_page(p(3), None, now()).unwrap();
        assert!(pool.contains(p(1)), "pinned page survived eviction");
        pool.unpin(p(1));
        pool.request_page(p(4), None, now()).unwrap();
        // Now page 1 is evictable again (and is the LRU page).
        assert!(!pool.contains(p(1)));
    }

    #[test]
    fn fully_pinned_pool_reports_an_error() {
        let mut pool = pool(2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.request_page(p(2), None, now()).unwrap();
        pool.pin(p(1));
        pool.pin(p(2));
        let err = pool.request_page(p(3), None, now()).unwrap_err();
        assert!(matches!(err, Error::BufferPoolTooSmall { .. }));
    }

    #[test]
    fn trace_records_every_request_in_order() {
        let trace = Arc::new(ReferenceTrace::new());
        let mut pool =
            BufferPool::new(2, 1024, Box::new(LruPolicy::new())).with_trace(Arc::clone(&trace));
        pool.request_page(p(5), Some(ScanId::new(9)), now())
            .unwrap();
        pool.request_page(p(6), None, now()).unwrap();
        pool.request_page(p(5), None, now()).unwrap();
        assert_eq!(trace.pages(), vec![p(5), p(6), p(5)]);
        assert_eq!(trace.snapshot()[0].scan, Some(ScanId::new(9)));
    }

    #[test]
    fn evict_batch_frees_multiple_pages_at_once() {
        let mut pool = BufferPool::new(4, 1024, Box::new(LruPolicy::new())).with_evict_batch(2);
        for i in 0..4 {
            pool.request_page(p(i), None, now()).unwrap();
        }
        pool.request_page(p(10), None, now()).unwrap();
        // Two pages were evicted even though only one slot was needed.
        assert_eq!(pool.resident_count(), 3);
        assert_eq!(pool.stats().evictions, 2);
    }

    #[test]
    fn invalidation_drops_unpinned_pages_without_counting_evictions() {
        let mut pool = pool(4);
        for i in 0..3 {
            pool.request_page(p(i), None, now()).unwrap();
        }
        pool.pin(p(2));
        // Pages 0 and 2 are stale; 2 is pinned, 9 was never resident.
        let dropped = pool.invalidate_pages(&[p(0), p(2), p(9)]);
        assert_eq!(dropped, 1);
        assert!(!pool.contains(p(0)));
        assert!(pool.contains(p(1)) && pool.contains(p(2)));
        let stats = pool.stats();
        assert_eq!(stats.invalidated_pages, 1);
        assert_eq!(stats.evictions, 0);
        // The freed slot is reusable and the policy forgot the page.
        assert_eq!(pool.free_pages(), 2);
        assert!(!pool.request_page(p(0), None, now()).unwrap().is_hit());
    }

    #[test]
    fn clear_resets_contents_and_stats() {
        let mut pool = pool(2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.clear();
        assert_eq!(pool.resident_count(), 0);
        assert_eq!(pool.stats(), BufferStats::default());
        assert!(!pool.request_page(p(1), None, now()).unwrap().is_hit());
    }

    #[test]
    fn scan_registration_assigns_increasing_ids() {
        let mut pool = pool(2);
        let plan = ScanPagePlan {
            table: scanshare_common::TableId::new(0),
            total_tuples: 0,
            pages: vec![],
        };
        let a = pool.register_scan(&plan, now());
        let b = pool.register_scan(&plan, now());
        assert!(b > a);
        pool.report_scan_position(a, 10, now());
        pool.unregister_scan(a, now());
        pool.unregister_scan(b, now());
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_is_rejected() {
        let _ = pool(0);
    }

    #[test]
    fn prefetch_admission_counts_as_prefetch_io_not_as_miss() {
        let mut pool = pool(2);
        assert!(pool.admit_prefetch(p(1), now()));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.prefetched_pages, 1);
        assert_eq!(stats.prefetch_io_bytes, 1024);
        assert_eq!(stats.io_bytes, 1024);
        // The demand access that consumes the prefetched page is a hit.
        assert!(pool.request_page(p(1), None, now()).unwrap().is_hit());
        assert_eq!(pool.stats().hits, 1);
        // Re-prefetching a resident page is a no-op.
        assert!(!pool.admit_prefetch(p(1), now()));
        assert_eq!(pool.stats().prefetched_pages, 1);
    }

    #[test]
    fn prefetch_never_evicts_resident_pages() {
        let mut pool = pool(2);
        pool.request_page(p(1), None, now()).unwrap();
        pool.request_page(p(2), None, now()).unwrap();
        // A full pool rejects speculative admissions instead of displacing
        // pages some scan may still need.
        assert!(!pool.admit_prefetch(p(3), now()));
        assert_eq!(pool.stats().prefetched_pages, 0);
        assert_eq!(pool.stats().evictions, 0);
        assert!(pool.contains(p(1)) && pool.contains(p(2)));
        // Once capacity frees up, prefetching resumes.
        pool.clear();
        assert!(pool.admit_prefetch(p(3), now()));
        assert!(pool.contains(p(3)));
    }

    #[test]
    fn prefetch_candidates_come_from_the_policy_filtered_by_residency() {
        // The plain LRU pool only yields candidates once a scan registered a
        // plan; candidates never include resident pages.
        let mut pool = pool(4);
        let plan = ScanPagePlan {
            table: scanshare_common::TableId::new(0),
            total_tuples: 300,
            pages: (0..3)
                .map(|i| scanshare_storage::layout::PageDescriptor {
                    page: p(i),
                    column: scanshare_common::ColumnId::new(0),
                    column_index: 0,
                    sid_range: scanshare_common::TupleRange::new(i * 100, (i + 1) * 100),
                    tuples_behind: i * 100,
                    tuple_count: 100,
                })
                .collect(),
        };
        let scan = pool.register_scan(&plan, now());
        assert_eq!(pool.prefetch_candidates(2, now()), vec![p(0), p(1)]);
        pool.request_page(p(0), Some(scan), now()).unwrap();
        assert_eq!(pool.prefetch_candidates(4, now()), vec![p(1), p(2)]);
        assert!(pool.prefetch_candidates(0, now()).is_empty());
    }
}
