//! SIEVE replacement (Zhang et al., NSDI '24) — eviction with lazy promotion
//! and quick demotion.
//!
//! Pages live on a FIFO list (newest at the head). Each page carries a
//! *visited* bit set on re-reference — crucially, the access that faults a
//! page in does **not** count, which is what separates SIEVE from CLOCK. A
//! persistent hand starts at the tail (oldest) and walks toward the head:
//! visited pages have their bit cleared and *keep their position* (no
//! re-queueing, unlike CLOCK's second chance), unvisited pages are evicted.
//! The hand survives across evictions and wraps back to the tail when it
//! reaches the head, so one-hit-wonder pages admitted after the hand passed
//! are sifted out quickly while re-referenced pages survive laps in place.
//!
//! Like every policy in this crate the implementation is a deterministic
//! function of the observed event sequence — the linked list is traversed
//! through explicit indices, hash maps are used for keyed lookup only — so
//! [`ShardedPool`](crate::sharded::ShardedPool)'s replayed event queue keeps
//! decisions byte-identical across shard counts.

use std::collections::{HashMap, HashSet};

use scanshare_common::{PageId, ScanId, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

use crate::policy::{ReplacementPolicy, ScanInfo};

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    page: PageId,
    /// Set on re-reference, cleared by the sweeping hand.
    visited: bool,
    /// Admission is pending its first demand access (the buffer pool calls
    /// `on_admit` then `on_access` for the same fault; that first access is
    /// the insertion itself, not a re-reference).
    fresh: bool,
    /// Neighbor toward the head (more recently admitted); `NIL` at the head.
    newer: usize,
    /// Neighbor toward the tail (older); `NIL` at the tail.
    older: usize,
}

/// SIEVE replacement over a slab-allocated doubly-linked FIFO list.
#[derive(Debug, Default)]
pub struct SievePolicy {
    nodes: Vec<Node>,
    free: Vec<usize>,
    slot: HashMap<PageId, usize>,
    /// Most recently admitted page; `NIL` when empty.
    head: usize,
    /// Oldest page; `NIL` when empty.
    tail: usize,
    /// The sifting hand; `NIL` means "start from the tail".
    hand: usize,
}

impl SievePolicy {
    /// A fresh SIEVE policy.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            slot: HashMap::new(),
            head: NIL,
            tail: NIL,
            hand: NIL,
        }
    }

    /// The visited bit of `page`, or `None` when it is not tracked.
    pub fn visited(&self, page: PageId) -> Option<bool> {
        self.slot.get(&page).map(|&s| self.nodes[s].visited)
    }

    /// Tracked pages in FIFO order, oldest first (test observability).
    pub fn pages_oldest_first(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.slot.len());
        let mut cur = self.tail;
        while cur != NIL {
            out.push(self.nodes[cur].page);
            cur = self.nodes[cur].newer;
        }
        out
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (newer, older) = (self.nodes[idx].newer, self.nodes[idx].older);
        if newer != NIL {
            self.nodes[newer].older = older;
        } else {
            self.head = older;
        }
        if older != NIL {
            self.nodes[older].newer = newer;
        } else {
            self.tail = newer;
        }
        if self.hand == idx {
            // Continue from the node the hand would have examined next.
            self.hand = newer;
        }
        self.free.push(idx);
    }
}

impl ReplacementPolicy for SievePolicy {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn register_scan(&mut self, _: &ScanInfo, _: &ScanPagePlan, _: VirtualInstant) {}

    fn report_scan_position(&mut self, _: ScanId, _: u64, _: VirtualInstant) {}

    fn unregister_scan(&mut self, _: ScanId, _: VirtualInstant) {}

    fn on_access(&mut self, page: PageId, _: Option<ScanId>, _: VirtualInstant) {
        if let Some(&s) = self.slot.get(&page) {
            let node = &mut self.nodes[s];
            if node.fresh {
                node.fresh = false; // the faulting access: insertion, not reuse
            } else {
                node.visited = true;
            }
        }
    }

    fn on_admit(&mut self, page: PageId, _: VirtualInstant) {
        if self.slot.contains_key(&page) {
            return;
        }
        let old_head = self.head;
        let idx = self.alloc(Node {
            page,
            visited: false,
            fresh: true,
            newer: NIL,
            older: old_head,
        });
        if old_head != NIL {
            self.nodes[old_head].newer = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.slot.insert(page, idx);
    }

    fn on_evict(&mut self, page: PageId) {
        if let Some(idx) = self.slot.remove(&page) {
            self.unlink(idx);
        }
    }

    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        _: VirtualInstant,
    ) -> Vec<PageId> {
        let mut victims = Vec::with_capacity(count);
        // After one full lap every visited bit is clear, so a victim must
        // appear within two laps unless every page is excluded.
        let mut fruitless = 0usize;
        while victims.len() < count {
            if fruitless > 2 * self.slot.len() + 2 {
                break; // everything evictable is excluded
            }
            let cur = if self.hand != NIL {
                self.hand
            } else {
                self.tail
            };
            if cur == NIL {
                break; // nothing tracked
            }
            let node = &mut self.nodes[cur];
            if node.visited {
                node.visited = false;
                self.hand = node.newer; // bit spent; page keeps its position
                fruitless += 1;
                continue;
            }
            if exclude.contains(&node.page) {
                self.hand = node.newer; // pinned: pass without spending a bit
                fruitless += 1;
                continue;
            }
            let page = node.page;
            victims.push(page);
            fruitless = 0;
            // Remove now so a wrapping hand cannot re-select the page; the
            // pool's follow-up `on_evict` finds it already forgotten.
            self.slot.remove(&page);
            self.unlink(cur);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    /// Admit + demand access, exactly like the buffer pool's miss path.
    fn load(policy: &mut SievePolicy, page: PageId) {
        policy.on_admit(page, now());
        policy.on_access(page, None, now());
    }

    #[test]
    fn evicts_oldest_unvisited_first() {
        let mut sieve = SievePolicy::new();
        for i in 0..3 {
            load(&mut sieve, p(i));
        }
        assert_eq!(
            sieve.choose_victims(2, &HashSet::new(), now()),
            [p(0), p(1)]
        );
        assert_eq!(sieve.pages_oldest_first(), [p(2)]);
    }

    #[test]
    fn insertion_is_not_a_reference() {
        let mut sieve = SievePolicy::new();
        load(&mut sieve, p(0));
        load(&mut sieve, p(1));
        // The faulting accesses did not set visited bits: page 0 is evicted
        // immediately (this is where SIEVE differs from CLOCK).
        assert_eq!(sieve.visited(p(0)), Some(false));
        assert_eq!(sieve.choose_victims(1, &HashSet::new(), now()), [p(0)]);
    }

    #[test]
    fn visited_pages_survive_in_place_while_unvisited_exist() {
        let mut sieve = SievePolicy::new();
        for i in 0..3 {
            load(&mut sieve, p(i));
        }
        sieve.on_access(p(1), None, now()); // re-reference: visited
                                            // 1 is passed over (bit cleared, position kept); 0 and 2 go first.
        assert_eq!(
            sieve.choose_victims(2, &HashSet::new(), now()),
            [p(0), p(2)]
        );
        assert_eq!(sieve.pages_oldest_first(), [p(1)]);
        assert_eq!(sieve.visited(p(1)), Some(false));
        // Only now, with no unvisited page left, is 1 evicted.
        assert_eq!(sieve.choose_victims(1, &HashSet::new(), now()), [p(1)]);
    }

    #[test]
    fn hand_survives_evictions_and_wraps_to_the_tail() {
        let mut sieve = SievePolicy::new();
        for i in 0..4 {
            load(&mut sieve, p(i));
        }
        sieve.on_access(p(0), None, now());
        // Hand at tail: clears 0's bit, evicts 1. Hand now points at 2.
        assert_eq!(sieve.choose_victims(1, &HashSet::new(), now()), [p(1)]);
        // A page admitted at the head is behind the hand...
        load(&mut sieve, p(9));
        // ...so the sweep continues from 2, wraps past the head, and only
        // then reaches the unvisited tail page 0.
        assert_eq!(
            sieve.choose_victims(3, &HashSet::new(), now()),
            [p(2), p(3), p(9)]
        );
        assert_eq!(sieve.choose_victims(1, &HashSet::new(), now()), [p(0)]);
    }

    #[test]
    fn excluded_pages_are_passed_without_spending_their_bit() {
        let mut sieve = SievePolicy::new();
        for i in 0..3 {
            load(&mut sieve, p(i));
        }
        sieve.on_access(p(0), None, now());
        let mut pinned = HashSet::new();
        pinned.insert(p(1));
        assert_eq!(sieve.choose_victims(2, &pinned, now()), [p(2), p(0)]);
        assert_eq!(sieve.pages_oldest_first(), [p(1)]);
        // A fully pinned list terminates without victims.
        pinned.insert(p(0));
        assert!(sieve.choose_victims(1, &pinned, now()).is_empty());
    }

    #[test]
    fn never_evicts_a_visited_page_while_an_unvisited_one_exists() {
        // Randomized (deterministic LCG) version of the core invariant: as
        // long as some page has a clear visited bit, no set-bit page is the
        // next victim.
        for seed in 0..5u64 {
            let mut sieve = SievePolicy::new();
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut rng = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for i in 0..16 {
                load(&mut sieve, p(i));
            }
            let mut hot = HashSet::new();
            for _ in 0..8 {
                let page = p(rng() % 16);
                sieve.on_access(page, None, now());
                hot.insert(page);
            }
            let cold = 16 - hot.len();
            for k in 0..cold {
                let victim = sieve.choose_victims(1, &HashSet::new(), now());
                assert_eq!(victim.len(), 1, "seed {seed}");
                assert!(
                    !hot.contains(&victim[0]),
                    "seed {seed}: evicted visited page {:?} with {} unvisited left",
                    victim[0],
                    cold - k
                );
            }
        }
    }

    #[test]
    fn invalidation_of_the_hand_page_keeps_the_sweep_going() {
        let mut sieve = SievePolicy::new();
        for i in 0..3 {
            load(&mut sieve, p(i));
        }
        sieve.on_access(p(0), None, now());
        // Sweep once so the hand points at page 1.
        assert_eq!(sieve.choose_victims(1, &HashSet::new(), now()), [p(1)]);
        // A checkpoint invalidates the page under the hand (page 2).
        sieve.on_evict(p(2));
        // The hand falls through to the head and wraps back to page 0.
        assert_eq!(sieve.choose_victims(1, &HashSet::new(), now()), [p(0)]);
        assert!(sieve.pages_oldest_first().is_empty());
    }
}
