//! CLOCK (second-chance) replacement — a classic LRU approximation.
//!
//! Resident pages sit on a circular list swept by a *hand*. Every access
//! sets the page's reference bit; when a victim is needed the hand walks the
//! ring: a set bit buys the page one more lap (the bit is cleared and the
//! page re-queued behind the hand), a clear bit makes the page the victim.
//! The paper predates SIEVE but CLOCK was already the canonical low-overhead
//! baseline — racing it against LRU/PBM/CScan shows how much of PBM's win
//! comes from scan knowledge rather than from recency bookkeeping.
//!
//! Like [`LruPolicy`](crate::lru::LruPolicy), the implementation is a pure
//! deterministic function of the observed event sequence, so
//! [`ShardedPool`](crate::sharded::ShardedPool)'s order-preserving event
//! replay makes its decisions byte-identical at any shard count with no
//! extra code here. The hand only ever moves forward: [`ClockPolicy::
//! hand_advances`] exposes the monotone sweep counter the policy-zoo tests
//! assert on.

use std::collections::{HashMap, HashSet, VecDeque};

use scanshare_common::{PageId, ScanId, VirtualInstant};
use scanshare_storage::layout::ScanPagePlan;

use crate::policy::{ReplacementPolicy, ScanInfo};

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Stamp of the live ring entry; older entries for the page are stale.
    stamp: u64,
    /// The reference bit, set on access and cleared by the sweeping hand.
    referenced: bool,
}

/// CLOCK second-chance replacement over a lazily-compacted ring.
///
/// The ring is a deque whose front is the hand position: `choose_victims`
/// pops from the front, giving referenced pages a second chance by pushing
/// them to the back (one full lap behind the hand). Admissions also join at
/// the back, i.e. just behind the hand, so a fresh page is examined last —
/// the standard CLOCK insertion point. Evicted pages leave a stale deque
/// entry that is skipped (stamp mismatch) and periodically compacted away.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    resident: HashMap<PageId, Slot>,
    /// Sweep order, hand at the front. Entries are `(page, stamp)`; an entry
    /// whose stamp differs from the page's resident slot is stale.
    ring: VecDeque<(PageId, u64)>,
    next_stamp: u64,
    hand_advances: u64,
}

impl ClockPolicy {
    /// A fresh CLOCK policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of (non-stale) ring entries the hand has examined. The
    /// hand never moves backwards, so this counter is monotone — the
    /// policy-zoo invariant tests assert exactly that.
    pub fn hand_advances(&self) -> u64 {
        self.hand_advances
    }

    /// The reference bit of `page`, or `None` when it is not tracked.
    pub fn referenced(&self, page: PageId) -> Option<bool> {
        self.resident.get(&page).map(|slot| slot.referenced)
    }

    fn maybe_compact(&mut self) {
        if self.ring.len() > 4 * self.resident.len().max(16) {
            let resident = &self.resident;
            self.ring
                .retain(|(page, stamp)| resident.get(page).is_some_and(|s| s.stamp == *stamp));
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn register_scan(&mut self, _: &ScanInfo, _: &ScanPagePlan, _: VirtualInstant) {}

    fn report_scan_position(&mut self, _: ScanId, _: u64, _: VirtualInstant) {}

    fn unregister_scan(&mut self, _: ScanId, _: VirtualInstant) {}

    fn on_access(&mut self, page: PageId, _: Option<ScanId>, _: VirtualInstant) {
        if let Some(slot) = self.resident.get_mut(&page) {
            slot.referenced = true;
        }
    }

    fn on_admit(&mut self, page: PageId, _: VirtualInstant) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        // Admission does not count as a reference; the demand access that
        // follows a miss sets the bit (prefetch admissions stay clear until
        // first consumed, which is exactly what makes useless readahead the
        // first thing the hand reclaims).
        self.resident.insert(
            page,
            Slot {
                stamp,
                referenced: false,
            },
        );
        self.ring.push_back((page, stamp));
        self.maybe_compact();
    }

    fn on_evict(&mut self, page: PageId) {
        self.resident.remove(&page);
        if self.resident.is_empty() {
            self.ring.clear();
        }
    }

    fn choose_victims(
        &mut self,
        count: usize,
        exclude: &HashSet<PageId>,
        _: VirtualInstant,
    ) -> Vec<PageId> {
        let mut victims = Vec::with_capacity(count);
        // Pinned pages the hand passed over; restored in front of the hand
        // afterwards so their sweep position is preserved.
        let mut skipped = Vec::new();
        while victims.len() < count {
            let Some((page, stamp)) = self.ring.pop_front() else {
                break;
            };
            let Some(slot) = self.resident.get_mut(&page) else {
                continue; // stale: the page was evicted or invalidated
            };
            if slot.stamp != stamp {
                continue; // stale: the page was re-admitted since
            }
            self.hand_advances += 1;
            if exclude.contains(&page) {
                // Pinned (or being admitted): the hand passes without
                // spending the page's reference bit.
                skipped.push((page, stamp));
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
                self.ring.push_back((page, stamp)); // second chance
                continue;
            }
            victims.push(page);
        }
        for entry in skipped.into_iter().rev() {
            self.ring.push_front(entry);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn now() -> VirtualInstant {
        VirtualInstant::EPOCH
    }

    /// Admit + demand access, exactly like the buffer pool's miss path.
    fn load(policy: &mut ClockPolicy, page: PageId) {
        policy.on_admit(page, now());
        policy.on_access(page, None, now());
    }

    #[test]
    fn sweeps_in_ring_order() {
        let mut clock = ClockPolicy::new();
        for i in 0..4 {
            clock.on_admit(p(i), now());
        }
        assert_eq!(
            clock.choose_victims(2, &HashSet::new(), now()),
            [p(0), p(1)]
        );
        assert_eq!(
            clock.choose_victims(2, &HashSet::new(), now()),
            [p(2), p(3)]
        );
    }

    #[test]
    fn referenced_pages_get_a_second_chance() {
        let mut clock = ClockPolicy::new();
        for i in 0..3 {
            clock.on_admit(p(i), now());
        }
        clock.on_access(p(1), None, now());
        let mut order = Vec::new();
        for _ in 0..3 {
            let victim = clock.choose_victims(1, &HashSet::new(), now());
            order.extend(victim.iter().copied());
            for v in victim {
                clock.on_evict(v);
            }
        }
        // Page 1 spends its reference bit and survives one extra lap.
        assert_eq!(order, [p(0), p(2), p(1)]);
    }

    #[test]
    fn demand_loads_are_referenced_until_the_hand_passes() {
        let mut clock = ClockPolicy::new();
        load(&mut clock, p(0));
        load(&mut clock, p(1));
        assert_eq!(clock.referenced(p(0)), Some(true));
        // Both bits are spent on the first lap; the second lap finds page 0.
        assert_eq!(clock.choose_victims(1, &HashSet::new(), now()), [p(0)]);
        assert_eq!(clock.referenced(p(1)), Some(false));
    }

    #[test]
    fn excluded_pages_keep_position_and_reference_bit() {
        let mut clock = ClockPolicy::new();
        for i in 0..3 {
            clock.on_admit(p(i), now());
        }
        clock.on_access(p(0), None, now());
        let mut pinned = HashSet::new();
        pinned.insert(p(0));
        // 0 is pinned (bit untouched), 1 is the first clear-bit page.
        assert_eq!(clock.choose_victims(2, &pinned, now()), [p(1), p(2)]);
        assert_eq!(clock.referenced(p(0)), Some(true));
        // Unpinned again: still at the hand, spends its bit, then evicts.
        assert_eq!(clock.choose_victims(1, &HashSet::new(), now()), [p(0)]);
    }

    #[test]
    fn readmission_moves_a_page_behind_the_hand() {
        let mut clock = ClockPolicy::new();
        clock.on_admit(p(0), now());
        clock.on_admit(p(1), now());
        clock.on_evict(p(0));
        clock.on_admit(p(0), now());
        // The stale front entry for page 0 is skipped; 1 is now oldest.
        assert_eq!(clock.choose_victims(1, &HashSet::new(), now()), [p(1)]);
        assert_eq!(clock.choose_victims(1, &HashSet::new(), now()), [p(0)]);
    }

    #[test]
    fn hand_only_moves_forward() {
        let mut clock = ClockPolicy::new();
        let mut last = clock.hand_advances();
        for round in 0..50u64 {
            load(&mut clock, p(round % 7));
            if round % 3 == 0 {
                clock.on_access(p(round % 5), None, now());
            }
            if round % 2 == 0 {
                for v in clock.choose_victims(1, &HashSet::new(), now()) {
                    clock.on_evict(v);
                }
            }
            let advances = clock.hand_advances();
            assert!(advances >= last, "hand moved backwards at round {round}");
            last = advances;
        }
        assert!(last > 0);
    }

    #[test]
    fn fully_pinned_ring_yields_no_victims_and_preserves_order() {
        let mut clock = ClockPolicy::new();
        for i in 0..3 {
            clock.on_admit(p(i), now());
        }
        let pinned: HashSet<PageId> = (0..3).map(p).collect();
        assert!(clock.choose_victims(2, &pinned, now()).is_empty());
        // Positions survived the fruitless sweep.
        assert_eq!(
            clock.choose_victims(3, &HashSet::new(), now()),
            [p(0), p(1), p(2)]
        );
    }

    #[test]
    fn stale_entries_are_compacted_away() {
        let mut clock = ClockPolicy::new();
        clock.on_admit(p(1000), now());
        // Invalidations (evict without a hand sweep) leave stale ring
        // entries behind; compaction must keep the ring bounded.
        for i in 0..200 {
            clock.on_admit(p(i), now());
            clock.on_evict(p(i));
        }
        assert!(clock.ring.len() <= 4 * 16 + 2, "{}", clock.ring.len());
        // Every stale entry is skipped; the survivor is still found.
        assert_eq!(clock.choose_victims(1, &HashSet::new(), now()), [p(1000)]);
    }
}
