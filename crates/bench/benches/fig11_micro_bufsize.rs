//! Figure 11: microbenchmark results, varying the buffer pool size.
//!
//! Prints the full table (LRU / CScans / PBM / OPT × pool size as a fraction
//! of the accessed data volume) and measures the PBM point at the default
//! 40 % pool.

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig11_micro_buffer_sweep;
use scanshare_sim::report::format_rows;

fn bench(c: &mut Criterion) {
    let rows = fig11_micro_buffer_sweep(&bench_scale()).expect("fig11 sweep");
    println!(
        "{}",
        format_rows(
            "Figure 11: microbenchmark, varying the buffer pool size",
            &rows
        )
    );

    let mut group = c.benchmark_group("fig11_micro_bufsize");
    group.sample_size(10);
    group.bench_function("sweep_all_policies", |b| {
        let scale = measured_scale();
        b.iter(|| fig11_micro_buffer_sweep(&scale).expect("fig11 sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
