//! Figure 18: sharing potential in the TPC-H throughput run.

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig18_sharing_tpch;
use scanshare_sim::report::format_sharing;

fn bench(c: &mut Criterion) {
    let profile = fig18_sharing_tpch(&bench_scale()).expect("fig18 profile");
    println!(
        "{}",
        format_sharing("Figure 18: sharing potential in TPC-H throughput", &profile)
    );

    let mut group = c.benchmark_group("fig18_sharing_tpch");
    group.sample_size(10);
    group.bench_function("profile", |b| {
        let scale = measured_scale();
        b.iter(|| fig18_sharing_tpch(&scale).expect("fig18 profile"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
