//! Serving-layer scalability: thousands of closed-loop sessions multiplexed
//! onto a fixed pool of scheduler workers, measured through the real wire
//! protocol over a Unix-domain socket.
//!
//! Two experiments:
//!
//! 1. **Sessions scaling** — the session count sweeps far past the worker
//!    count with admission limits wide open; every query must be served and
//!    the p50/p95/p99/p999 tail latencies are reported per session count.
//!    On hosts with at least 8 CPUs (or with
//!    `SCANSHARE_BENCH_ASSERT_SCALING=1`), the ≥1000-session point is
//!    asserted: all queries served on ≤ 8 scheduler workers, no errors.
//! 2. **Overload** — admission is squeezed (`max_inflight` 8, tenant queue
//!    64) under a 1024-session burst of full-table scans, so shedding with
//!    `OVERLOADED` is certain. Every query must still be *answered*
//!    (result or typed error, nothing hangs) — that fraction and the fact
//!    that shedding engaged are the deterministic gated metrics.
//!
//! Wall-clock latencies are machine-dependent and reported ungated.

use std::path::PathBuf;
use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{PolicyKind, ScanShareConfig};
use scanshare_exec::{Aggregate, Engine};
use scanshare_serve::loadgen::{self, LoadgenConfig, Target};
use scanshare_serve::{QueryRequest, ServeConfig, Server};
use scanshare_storage::datagen::DataGen;
use scanshare_storage::{ColumnSpec, ColumnType, Storage, TableSpec};

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;
const WORKERS: usize = 8;

/// Self-cleaning tempdir for the Unix socket.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("scanshare-serving-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create bench tempdir");
        Self(path)
    }

    fn socket(&self, tag: &str) -> PathBuf {
        self.0.join(format!("{tag}.sock"))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_engine(tuples: u64) -> Arc<Engine> {
    let storage = Storage::with_seed(PAGE, CHUNK, 42);
    storage
        .create_table_with_data(
            TableSpec::new(
                "lineitem",
                vec![
                    ColumnSpec::new("l_orderkey", ColumnType::Int64),
                    ColumnSpec::new("l_quantity", ColumnType::Int64),
                ],
                tuples,
            ),
            vec![
                DataGen::Sequential { start: 1, step: 1 },
                DataGen::Uniform { min: 1, max: 50 },
            ],
        )
        .expect("lineitem");
    Engine::new(
        storage,
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: 16 << 20,
            policy: PolicyKind::Pbm,
            ..Default::default()
        }
        .with_scheduler_workers(WORKERS),
    )
    .expect("engine")
}

fn request(scan_tuples: u64) -> QueryRequest {
    let mut request =
        QueryRequest::count_star("lineitem", vec!["l_orderkey".into(), "l_quantity".into()]);
    request.end = Some(scan_tuples);
    request.aggregates.push(Aggregate::Sum(1));
    request
}

fn run_load(
    socket: PathBuf,
    sessions: usize,
    connections: usize,
    queries_per_session: usize,
    scan_tuples: u64,
) -> loadgen::LoadReport {
    loadgen::run(&LoadgenConfig {
        target: Target::Unix(socket),
        tenant: "bench".into(),
        connections,
        sessions,
        queries_per_session,
        request: request(scan_tuples),
    })
    .expect("loadgen run")
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn bench(c: &mut Criterion) {
    let preset = bench_preset();
    let (tuples, session_sweep, queries_per_session): (u64, &[usize], usize) = match preset {
        "smoke" => (200_000, &[64, 256, 1024], 2),
        _ => (400_000, &[64, 256, 1024, 2048], 3),
    };
    let scan_tuples = 5_000; // cheap per-query scan for the scaling sweep

    let dir = TempDir::new();
    let engine = build_engine(tuples);
    let mut metrics = Json::object();

    // --- 1. Sessions scaling: thousands of sessions on 8 workers ----------
    println!(
        "fig_serving [{preset}]: {tuples} tuples, {WORKERS} scheduler workers, \
         {queries_per_session} queries/session of {scan_tuples} tuples each"
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "sessions", "conns", "p50[ms]", "p95[ms]", "p99[ms]", "p999[ms]", "q/s", "shed"
    );
    let mut scaling_ok = true;
    let mut server = Server::new(
        Arc::clone(&engine),
        ServeConfig::default().with_max_queued_per_tenant(1 << 14),
    );
    let socket = dir.socket("scaling");
    server.bind_unix(&socket).expect("bind unix");
    for &sessions in session_sweep {
        let connections = 8.min(sessions);
        let report = run_load(
            socket.clone(),
            sessions,
            connections,
            queries_per_session,
            scan_tuples,
        );
        println!(
            "{:<10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.0} {:>8}",
            sessions,
            connections,
            ms(report.p50()),
            ms(report.p95()),
            ms(report.p99()),
            ms(report.p999()),
            report.qps(),
            report.shed
        );
        metrics
            .set(format!("p50_ms_s{sessions}"), ms(report.p50()))
            .set(format!("p95_ms_s{sessions}"), ms(report.p95()))
            .set(format!("p99_ms_s{sessions}"), ms(report.p99()))
            .set(format!("p999_ms_s{sessions}"), ms(report.p999()))
            .set(format!("qps_s{sessions}"), report.qps());
        if sessions >= 1000 {
            let expected = (sessions * queries_per_session) as u64;
            scaling_ok &= report.completed == expected && report.errors == 0;
            metrics.set(
                format!("served_frac_s{sessions}"),
                report.completed as f64 / expected as f64,
            );
        }
    }
    if let Some(stats) = server.scheduler_stats() {
        println!(
            "scheduler: {} tasks, {} yields, {} steals on {WORKERS} workers",
            stats.completed, stats.yields, stats.steals
        );
        metrics.set("scheduler_yields", stats.yields as f64);
    }
    server.shutdown();

    // --- 2. Overload: admission visibly sheds, everything is answered -----
    let mut server = Server::new(
        Arc::clone(&engine),
        ServeConfig::default()
            .with_max_inflight(8)
            .with_max_queued_per_tenant(64),
    );
    let socket = dir.socket("overload");
    server.bind_unix(&socket).expect("bind unix");
    let overload_sessions = 1024;
    // Full-table scans so admitted queries are slow enough for the burst
    // to pile up against max_inflight=8 deterministically.
    let report = run_load(socket, overload_sessions, 8, 1, tuples);
    let total = overload_sessions as u64;
    let answered_frac = (report.completed + report.shed) as f64 / total as f64;
    let overload_engaged = if report.shed > 0 { 1.0 } else { 0.0 };
    println!(
        "overload: {} sessions -> {} served, {} shed, {} errors \
         (p99 {:.3} ms over served)",
        overload_sessions,
        report.completed,
        report.shed,
        report.errors,
        ms(report.p99())
    );
    metrics
        .set("answered_frac_s1024", answered_frac)
        .set("overload_engaged_s1024", overload_engaged)
        .set("overload_served_s1024", report.completed as f64)
        .set("overload_shed_s1024", report.shed as f64)
        .set("overload_p99_ms", ms(report.p99()));
    server.shutdown();

    // Emit the artifact before any assertion so a failing run still uploads
    // the numbers behind the failure.
    let mut doc = Json::object();
    doc.set("figure", "fig_serving")
        .set("preset", preset)
        .set("scheduler_workers", WORKERS as f64)
        .set("metrics", metrics);
    write_bench_json("fig_serving", &doc);

    // Deterministic acceptance: overload answered everything and shed.
    assert!(
        (answered_frac - 1.0).abs() < f64::EPSILON,
        "under overload every query must get a result or a typed error \
         (answered fraction {answered_frac})"
    );
    assert!(
        overload_engaged == 1.0,
        "a 1024-session burst against max_inflight=8 must shed"
    );

    // Machine-dependent acceptance, gated only where the host can take it:
    // ≥1000 concurrent sessions served completely on ≤8 workers.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let assert_scaling = cpus >= 8
        || std::env::var("SCANSHARE_BENCH_ASSERT_SCALING")
            .map(|v| v == "1")
            .unwrap_or(false);
    if assert_scaling {
        assert!(
            scaling_ok,
            "the >=1000-session sweep must serve every query on {WORKERS} workers"
        );
    } else {
        println!("({cpus} CPUs: sessions-scaling assert skipped; set SCANSHARE_BENCH_ASSERT_SCALING=1 to force)");
    }

    // The timed point: one closed-loop round of 64 sessions over the wire.
    let mut server = Server::new(
        Arc::clone(&engine),
        ServeConfig::default().with_max_queued_per_tenant(1 << 14),
    );
    let socket = dir.socket("timed");
    server.bind_unix(&socket).expect("bind unix");
    let mut group = c.benchmark_group("fig_serving");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("serve_64_sessions_round"),
        &(),
        |b, ()| b.iter(|| run_load(socket.clone(), 64, 4, 1, scan_tuples)),
    );
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
