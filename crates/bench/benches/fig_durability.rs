//! Durability: commit throughput under the write-ahead log as the group
//! commit size and update rate grow — with a crash/recovery parity gate.
//!
//! The WAL turns every commit into an append + fsync; group commit batches
//! the fsyncs so one durable write amortizes over up to `group` commits, at
//! the cost of losing up to `group - 1` trailing commits in a crash. This
//! figure sweeps group commit size × update rate over the mixed
//! read/write microbenchmark running against a **durable** engine (real
//! on-disk segments, WAL appends on every commit, checkpoints installing
//! versioned images), and reports the committed-update throughput.
//!
//! After every swept point the engine is dropped — a simulated crash — and
//! `Engine::recover` rebuilds it cold from the directory. Two parity gates
//! run on the recovered state, collected first and asserted only after the
//! JSON artifact is written:
//!
//! 1. **recovery parity** — the recovered table must match the pre-crash
//!    committed rows cell for cell (`recovery_parity` = 1.0 is gated by
//!    `bench/baseline.json`, so a silent recovery regression fails CI);
//! 2. **engine == simulator bytes** — after a checkpoint folds the replayed
//!    deltas into a durable image, a read-only workload on a freshly
//!    recovered engine must move byte-for-byte the I/O volume the
//!    discrete-event simulator predicts for the reopened storage.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{PolicyKind, ScanShareConfig, TableId};
use scanshare_exec::{Engine, WorkloadDriver};
use scanshare_sim::{SimConfig, Simulation};
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench::{self, MicrobenchConfig};
use scanshare_workload::spec::{UpdateMix, UpdateStreamSpec, WorkloadSpec};

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;

struct Preset {
    queries_per_stream: usize,
    lineitem_tuples: u64,
    groups: Vec<usize>,
    rates: Vec<u64>,
}

fn preset_of(preset: &str) -> Preset {
    match preset {
        "smoke" => Preset {
            queries_per_stream: 3,
            lineitem_tuples: 60_000,
            groups: vec![1, 8],
            rates: vec![32, 128],
        },
        _ => Preset {
            queries_per_stream: 6,
            lineitem_tuples: 120_000,
            groups: vec![1, 4, 16],
            rates: vec![32, 128, 512],
        },
    }
}

/// Scratch durability directory for one swept point, removed on drop.
struct BenchDir(PathBuf);

impl BenchDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "scanshare-fig-durability-{tag}-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("bench dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Mixed read/write workload over a fresh deterministic lineitem table.
fn build(preset: &Preset, rate: u64) -> (Arc<Storage>, TableId, WorkloadSpec) {
    let config = MicrobenchConfig {
        streams: 1,
        queries_per_stream: preset.queries_per_stream,
        lineitem_tuples: preset.lineitem_tuples,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, PAGE, CHUNK).expect("workload");
    let table = storage.table_ids()[0];
    let workload = workload.with_update_stream(UpdateStreamSpec {
        label: "updates".into(),
        table,
        ops_per_round: rate,
        mix: UpdateMix::mostly_modifies(),
        checkpoint_every: Some(2),
        seed: 0xd0b,
    });
    (storage, table, workload)
}

/// The read-only slice of the same workload, for the post-recovery
/// engine == simulator comparison.
fn read_only(preset: &Preset) -> WorkloadSpec {
    let config = MicrobenchConfig {
        streams: 1,
        queries_per_stream: preset.queries_per_stream,
        lineitem_tuples: preset.lineitem_tuples,
        ..Default::default()
    };
    let (_, workload) = microbench::build(&config, PAGE, CHUNK).expect("workload");
    workload
}

fn scanshare_config(policy: PolicyKind, pool_bytes: u64) -> ScanShareConfig {
    ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: pool_bytes,
        policy,
        ..Default::default()
    }
}

fn sim_config(policy: PolicyKind, pool_bytes: u64) -> SimConfig {
    SimConfig {
        scanshare: scanshare_config(policy, pool_bytes),
        cores: 8,
        sharing_sample_interval: None,
    }
}

/// Every committed cell of `table`, in row order — the value recovery must
/// reproduce exactly.
fn table_rows(engine: &Arc<Engine>, table: TableId) -> Vec<Vec<i64>> {
    engine
        .query(table)
        .columns(["l_quantity", "l_extendedprice", "l_shipdate"])
        .range(..)
        .in_order()
        .rows()
        .expect("table rows")
}

fn bench(c: &mut Criterion) {
    let preset_name = bench_preset();
    let preset = preset_of(preset_name);

    // Pool under pressure, probed on the read-only slice like fig_updates.
    let accessed = {
        let (storage, _, _) = build(&preset, 0);
        Simulation::new(storage, sim_config(PolicyKind::Lru, 1 << 30))
            .expect("probe sim")
            .accessed_volume(&read_only(&preset))
            .expect("accessed volume")
    };
    let pool = (accessed * 2 / 5).max(8 * PAGE);

    println!(
        "fig_durability: 1 read stream x {} queries + update stream (checkpoint every 2 rounds), \
         durable engine (WAL + on-disk segments), pool {:.1} MB",
        preset.queries_per_stream,
        pool as f64 / 1e6
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "group", "ops/round", "commits/s", "engine qps", "wal MB", "parity"
    );

    let mut metrics = Json::object();
    let mut violations: Vec<String> = Vec::new();
    for &group in &preset.groups {
        for &rate in &preset.rates {
            let dir = BenchDir::new(&format!("g{group}-r{rate}"));
            let (storage, table, workload) = build(&preset, rate);
            let engine = Engine::new(
                storage,
                scanshare_config(PolicyKind::Pbm, pool)
                    .with_wal_dir(dir.path())
                    .with_wal_group_commit(group),
            )
            .expect("durable engine");
            let report = WorkloadDriver::new(engine.clone())
                .run(&workload)
                .expect("driver run");
            assert!(
                report.stream_errors.is_empty(),
                "group {group} rate {rate}: stream errors {:?}",
                report.stream_errors
            );
            let committed = table_rows(&engine, table);
            let ops_per_sec = report.update_ops as f64 / report.wall.as_secs_f64().max(1e-12);
            let wal_mb = std::fs::metadata(dir.path().join("wal.log"))
                .map(|m| m.len() as f64 / 1e6)
                .unwrap_or(0.0);
            drop(engine); // "crash"

            // Gate 1: cold recovery reproduces the committed state exactly.
            let recovered = Engine::recover(dir.path(), scanshare_config(PolicyKind::Pbm, pool))
                .expect("recover");
            let parity = if table_rows(&recovered, table) == committed {
                1.0
            } else {
                violations.push(format!(
                    "group {group} rate {rate}: recovered rows differ from committed rows"
                ));
                0.0
            };

            // Gate 2: checkpoint the replayed deltas into a durable image,
            // then a read-only run on a freshly recovered engine must match
            // the simulator on the reopened storage byte for byte.
            if group == preset.groups[0] && rate == *preset.rates.last().expect("rates") {
                recovered.checkpoint(table).expect("fold replayed deltas");
                drop(recovered);
                let fresh = Engine::recover(dir.path(), scanshare_config(PolicyKind::Pbm, pool))
                    .expect("recover checkpointed");
                let read_report = WorkloadDriver::new(fresh)
                    .run(&read_only(&preset))
                    .expect("read-only run");
                let sim_storage = Storage::open_directory(dir.path()).expect("reopen for sim");
                let sim = Simulation::new(sim_storage, sim_config(PolicyKind::Pbm, pool))
                    .expect("sim")
                    .run(&read_only(&preset))
                    .expect("sim run");
                if read_report.buffer.io_bytes != sim.total_io_bytes {
                    violations.push(format!(
                        "post-recovery read-only: engine {} vs simulator {} bytes",
                        read_report.buffer.io_bytes, sim.total_io_bytes
                    ));
                }
            }

            println!(
                "{:>6} {:>10} {:>12.0} {:>12.1} {:>12.2} {:>12.1}",
                group,
                rate,
                ops_per_sec,
                report.queries_per_sec(),
                wal_mb,
                parity
            );
            metrics
                .set(
                    format!("commit_ops_per_sec_g{group}_rate{rate}"),
                    ops_per_sec,
                )
                .set(format!("recovery_parity_g{group}_rate{rate}"), parity)
                .set(format!("wal_mb_g{group}_rate{rate}"), wal_mb);
        }
    }

    let mut doc = Json::object();
    doc.set("figure", "fig_durability")
        .set("preset", preset_name)
        .set("metrics", metrics);
    write_bench_json("fig_durability", &doc);

    assert!(
        violations.is_empty(),
        "crash recovery diverged from the committed state:\n{}",
        violations.join("\n")
    );

    // The measured point: a full durable mixed round (WAL appends, group
    // commit fsyncs, checkpoint materialization) at the middle update rate.
    let mid_rate = preset.rates[preset.rates.len() / 2];
    let group_commit = *preset.groups.last().expect("groups");
    let mut group = c.benchmark_group("fig_durability");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("durable_pbm_g{group_commit}_rate{mid_rate}")),
        &mid_rate,
        |b, &rate| {
            b.iter(|| {
                let dir = BenchDir::new("iter");
                let (storage, _, workload) = build(&preset, rate);
                let engine = Engine::new(
                    storage,
                    scanshare_config(PolicyKind::Pbm, pool)
                        .with_wal_dir(dir.path())
                        .with_wal_group_commit(group_commit),
                )
                .expect("durable engine");
                WorkloadDriver::new(engine)
                    .run(&workload)
                    .expect("bench run")
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
