//! Ablation: how PBM's design knobs affect the I/O volume it saves.
//!
//! The paper motivates two design choices we ablate here on the
//! microbenchmark workload at heavy memory pressure (10 % pool):
//!
//! * the bucket timeline granularity (`time_slice`, buckets per group) —
//!   coarse buckets approximate the next-consumption ordering badly;
//! * progress reporting — without `ReportScanPosition` the speed estimates
//!   never improve over the initial default.
//!
//! The printed table compares the resulting I/O volume against LRU and
//! against the default PBM configuration.

use std::sync::Arc;

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::measured_scale;
use scanshare_common::VirtualDuration;
use scanshare_common::{PolicyKind, ScanShareConfig, VirtualInstant};
use scanshare_core::bufferpool::BufferPool;
use scanshare_core::lru::LruPolicy;
use scanshare_core::pbm::{PbmConfig, PbmPolicy};
use scanshare_core::policy::ReplacementPolicy;
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench::{self, MicrobenchConfig};

/// Replays the interleaved page-reference streams of the microbenchmark
/// queries through a pool with the given policy, round-robin across streams,
/// and returns the resulting I/O bytes.
fn replay(
    storage: &Arc<Storage>,
    workload: &scanshare_workload::WorkloadSpec,
    pool_pages: usize,
    page_size: u64,
    policy: Box<dyn ReplacementPolicy>,
    report_progress: bool,
) -> u64 {
    let mut pool = BufferPool::new(pool_pages, page_size, policy);
    let now = VirtualInstant::EPOCH;
    // Build per-stream page queues (streams interleave page by page).
    let mut queues: Vec<Vec<(scanshare_common::ScanId, scanshare_common::PageId, u64, u64)>> =
        Vec::new();
    for stream in &workload.streams {
        let mut queue = Vec::new();
        for query in &stream.queries {
            for scan in &query.scans {
                let layout = storage.layout(scan.table).unwrap();
                let snapshot = storage.master_snapshot(scan.table).unwrap();
                let plan = layout.scan_page_plan(&snapshot, &scan.columns, &scan.ranges);
                let id = pool.register_scan(&plan, now);
                let mut consumed = 0;
                for page in plan.interleaved() {
                    consumed += page.tuple_count;
                    queue.push((id, page.page, page.tuple_count, consumed));
                }
            }
        }
        queues.push(queue);
    }
    let mut cursors = vec![0usize; queues.len()];
    loop {
        let mut progressed = false;
        for (s, queue) in queues.iter().enumerate() {
            if cursors[s] >= queue.len() {
                continue;
            }
            let (scan, page, _tuples, consumed) = queue[cursors[s]];
            cursors[s] += 1;
            progressed = true;
            pool.request_page(page, Some(scan), now).unwrap();
            if report_progress {
                pool.report_scan_position(scan, consumed, now);
            }
        }
        if !progressed {
            break;
        }
    }
    pool.stats().io_bytes
}

fn bench(c: &mut Criterion) {
    let scale = measured_scale();
    let micro = MicrobenchConfig {
        streams: 4,
        lineitem_tuples: scale.micro_lineitem_tuples,
        ..MicrobenchConfig::default()
    };
    let page_size = scale.page_size_bytes;
    let (storage, workload) = microbench::build(&micro, page_size, scale.chunk_tuples).unwrap();

    // Pool of roughly 10% of the table.
    let table_pages = {
        let layout = storage
            .layout(workload.streams[0].queries[0].scans[0].table)
            .unwrap();
        let cols: Vec<usize> = (0..layout.column_count()).collect();
        layout.bytes_for_scan(&cols, micro.lineitem_tuples) / page_size
    };
    let pool_pages = ((table_pages / 10) as usize).max(8);

    type PolicyFactory = Box<dyn Fn() -> Box<dyn ReplacementPolicy>>;
    let default_speed = ScanShareConfig::default().cpu_tuples_per_sec as f64;
    let variants: Vec<(&str, PolicyFactory, bool)> = vec![
        (
            "lru",
            Box::new(|| Box::new(LruPolicy::new()) as Box<dyn ReplacementPolicy>),
            true,
        ),
        (
            "pbm-default",
            Box::new(move || {
                Box::new(PbmPolicy::new(PbmConfig {
                    default_scan_speed: default_speed,
                    ..PbmConfig::default()
                })) as Box<dyn ReplacementPolicy>
            }),
            true,
        ),
        (
            "pbm-coarse-buckets",
            Box::new(move || {
                Box::new(PbmPolicy::new(PbmConfig {
                    default_scan_speed: default_speed,
                    time_slice: VirtualDuration::from_secs(10),
                    bucket_groups: 1,
                    buckets_per_group: 2,
                })) as Box<dyn ReplacementPolicy>
            }),
            true,
        ),
        (
            "pbm-no-progress-reports",
            Box::new(move || {
                Box::new(PbmPolicy::new(PbmConfig {
                    default_scan_speed: default_speed,
                    ..PbmConfig::default()
                })) as Box<dyn ReplacementPolicy>
            }),
            false,
        ),
    ];

    println!(
        "PBM ablation (pool = {pool_pages} pages, {PolicyKind:?})",
        PolicyKind = PolicyKind::Pbm
    );
    println!("{:<26}{:>16}", "variant", "I/O [MB]");
    for (name, make_policy, report) in &variants {
        let io = replay(
            &storage,
            &workload,
            pool_pages,
            page_size,
            make_policy(),
            *report,
        );
        println!("{name:<26}{:>16.1}", io as f64 / 1e6);
    }

    let mut group = c.benchmark_group("ablation_pbm");
    group.sample_size(10);
    for (name, make_policy, report) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                replay(
                    &storage,
                    &workload,
                    pool_pages,
                    page_size,
                    make_policy(),
                    report,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
