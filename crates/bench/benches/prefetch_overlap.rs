//! Prefetch overlap: stream time with and without the asynchronous prefetch
//! window, across the paper's bandwidth sweep.
//!
//! The synchronous model (`prefetch_pages = 0`, the configuration every
//! figure of the paper uses) serializes each miss behind the scan; with a
//! prefetch window the policy-predicted pages load while tuples are
//! processed. The single-stream setup below is the regime the window is for:
//! with concurrent streams one stream's compute already overlaps another's
//! I/O, but a lone scan on a synchronous device pays `io + cpu` per page —
//! prefetching turns that into `max(io, cpu)`, so once bandwidth is high
//! enough that compute dominates, the transfers vanish from the stream time.
//! The total I/O volume stays the same: prefetching changes *when* pages are
//! read, not *which* (it never evicts).

use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{Bandwidth, PolicyKind, ScanShareConfig};
use scanshare_sim::{SimConfig, Simulation};
use scanshare_workload::microbench::{self, MicrobenchConfig};

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;
const WINDOW: usize = 8;

fn sim(
    storage: &Arc<scanshare_storage::storage::Storage>,
    policy: PolicyKind,
    pool_bytes: u64,
    bandwidth_mb: f64,
    prefetch_pages: usize,
) -> Simulation {
    let config = SimConfig {
        scanshare: ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: pool_bytes,
            io_bandwidth: Bandwidth::from_mb_per_sec(bandwidth_mb),
            // A fast device: at 10us per request the fixed latency no longer
            // dominates the 64 KiB transfers, so the bandwidth sweep actually
            // moves the io/cpu balance.
            io_latency_nanos: 10_000,
            policy,
            prefetch_pages,
            ..Default::default()
        },
        // One core: a single scan-select-aggregate stream at the paper's
        // per-core processing rate, the regime where overlapping I/O with
        // computation is the only source of concurrency.
        cores: 1,
        sharing_sample_interval: None,
    };
    Simulation::new(Arc::clone(storage), config).expect("simulation")
}

fn bench(c: &mut Criterion) {
    // The smoke preset (CI's bench-smoke job) shrinks the workload so the
    // figure runs in seconds; both clocks here are *virtual*, so the
    // speedups are deterministic and machine-independent at either scale.
    let preset = bench_preset();
    let (queries_per_stream, lineitem_tuples) = match preset {
        "smoke" => (2, 120_000),
        _ => (4, 480_000),
    };
    let micro = MicrobenchConfig {
        streams: 1,
        queries_per_stream,
        lineitem_tuples,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&micro, PAGE, CHUNK).expect("workload");
    let accessed = sim(&storage, PolicyKind::Lru, 1 << 30, 700.0, 0)
        .accessed_volume(&workload)
        .expect("accessed volume");

    println!(
        "prefetch overlap: micro workload, {:.1} MB accessed, window {WINDOW} pages",
        accessed as f64 / 1e6
    );
    println!(
        "{:<8} {:>7} {:>8} {:>12} {:>12} {:>9} {:>10}",
        "policy", "pool %", "MB/s", "sync s", "prefetch s", "speedup", "io ratio"
    );
    let mut pbm_headroom_fast: Option<(f64, f64)> = None;
    let mut metrics = Json::object();
    let mut io_violations: Vec<String> = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        // 40 % is the paper's pressure point (prefetch never evicts, so it
        // is inert once the pool fills); 110 % is the headroom regime where
        // cold transfers fully overlap with computation.
        for fraction in [0.4, 1.1] {
            let pool = ((accessed as f64 * fraction) as u64).max((WINDOW as u64 + 4) * PAGE);
            for mb in [200.0, 700.0, 2000.0] {
                let sync = sim(&storage, policy, pool, mb, 0)
                    .run(&workload)
                    .expect("sync run");
                let prefetch = sim(&storage, policy, pool, mb, WINDOW)
                    .run(&workload)
                    .expect("prefetch run");
                let t_sync = sync.avg_stream_time_secs().expect("timing");
                let t_pf = prefetch.avg_stream_time_secs().expect("timing");
                println!(
                    "{:<8} {:>7.0} {:>8.0} {:>12.4} {:>12.4} {:>8.2}x {:>10.3}",
                    policy.name(),
                    fraction * 100.0,
                    mb,
                    t_sync,
                    t_pf,
                    t_sync / t_pf,
                    prefetch.total_io_bytes as f64 / sync.total_io_bytes as f64,
                );
                // Prefetching never evicts, so it must change *when* bytes
                // move, never *how many*. Collected here, asserted exactly
                // after the JSON artifact is written: a one-sided throughput
                // gate could not catch an upward regression of this ratio,
                // and a failing figure must still upload its numbers.
                if prefetch.total_io_bytes != sync.total_io_bytes {
                    io_violations.push(format!(
                        "{policy} pool {:.0}% bw {mb}: prefetch {} vs sync {} bytes",
                        fraction * 100.0,
                        prefetch.total_io_bytes,
                        sync.total_io_bytes
                    ));
                }
                metrics.set(
                    format!(
                        "virtual_speedup_{}_pool{:.0}_bw{:.0}",
                        policy.name(),
                        fraction * 100.0,
                        mb
                    ),
                    t_sync / t_pf,
                );
                if policy == PolicyKind::Pbm && fraction > 1.0 && mb >= 2000.0 {
                    pbm_headroom_fast = Some((t_sync, t_pf));
                    metrics.set(
                        "io_ratio_pbm_headroom",
                        prefetch.total_io_bytes as f64 / sync.total_io_bytes as f64,
                    );
                }
            }
        }
    }

    let (t_sync, t_pf) = pbm_headroom_fast.expect("PBM headroom high-bandwidth point");
    metrics.set("virtual_speedup_pbm_headroom", t_sync / t_pf);

    // Emit the artifact before any assertion so a failing figure still
    // uploads the numbers behind the failure.
    let mut doc = Json::object();
    doc.set("figure", "prefetch_overlap")
        .set("preset", preset)
        .set("metrics", metrics);
    write_bench_json("prefetch_overlap", &doc);

    assert!(
        io_violations.is_empty(),
        "prefetching changed the I/O volume:\n{}",
        io_violations.join("\n")
    );
    // The acceptance property of the figure: with bandwidth high enough that
    // compute can hide the transfers (and pool headroom for the window),
    // prefetching PBM beats the synchronous baseline on average stream time.
    assert!(
        t_pf < t_sync,
        "prefetching PBM must beat the synchronous baseline at high bandwidth \
         (sync {t_sync:.4}s vs prefetch {t_pf:.4}s)"
    );

    let headroom_pool = (accessed as f64 * 1.1) as u64;
    let mut group = c.benchmark_group("prefetch_overlap");
    group.sample_size(10);
    for prefetch_pages in [0usize, WINDOW] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pbm_window_{prefetch_pages}")),
            &prefetch_pages,
            |b, &window| {
                b.iter(|| {
                    sim(&storage, PolicyKind::Pbm, headroom_pool, 2000.0, window)
                        .run(&workload)
                        .expect("bench run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
