//! Figure 14: TPC-H throughput results, varying the buffer pool size.

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig14_tpch_buffer_sweep;
use scanshare_sim::report::format_rows;

fn bench(c: &mut Criterion) {
    let rows = fig14_tpch_buffer_sweep(&bench_scale()).expect("fig14 sweep");
    println!(
        "{}",
        format_rows(
            "Figure 14: TPC-H throughput, varying the buffer pool size",
            &rows
        )
    );

    let mut group = c.benchmark_group("fig14_tpch_bufsize");
    group.sample_size(10);
    group.bench_function("sweep_all_policies", |b| {
        let scale = measured_scale();
        b.iter(|| fig14_tpch_buffer_sweep(&scale).expect("fig14 sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
