//! Figure 13: microbenchmark results, varying the number of concurrent
//! streams (all queries scan 50 % of the table).

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig13_micro_stream_sweep;
use scanshare_sim::report::format_rows;

fn bench(c: &mut Criterion) {
    let rows = fig13_micro_stream_sweep(&bench_scale()).expect("fig13 sweep");
    println!(
        "{}",
        format_rows(
            "Figure 13: microbenchmark, varying the number of streams",
            &rows
        )
    );

    let mut group = c.benchmark_group("fig13_micro_streams");
    group.sample_size(10);
    group.bench_function("sweep_all_policies", |b| {
        let scale = measured_scale();
        b.iter(|| fig13_micro_stream_sweep(&scale).expect("fig13 sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
