//! Figure 15: TPC-H throughput results, varying the I/O bandwidth.

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig15_tpch_bandwidth_sweep;
use scanshare_sim::report::format_rows;

fn bench(c: &mut Criterion) {
    let rows = fig15_tpch_bandwidth_sweep(&bench_scale()).expect("fig15 sweep");
    println!(
        "{}",
        format_rows(
            "Figure 15: TPC-H throughput, varying the I/O bandwidth",
            &rows
        )
    );

    let mut group = c.benchmark_group("fig15_tpch_bandwidth");
    group.sample_size(10);
    group.bench_function("sweep_all_policies", |b| {
        let scale = measured_scale();
        b.iter(|| fig15_tpch_bandwidth_sweep(&scale).expect("fig15 sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
