//! Figure 12: microbenchmark results, varying the I/O bandwidth.

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig12_micro_bandwidth_sweep;
use scanshare_sim::report::format_rows;

fn bench(c: &mut Criterion) {
    let rows = fig12_micro_bandwidth_sweep(&bench_scale()).expect("fig12 sweep");
    println!(
        "{}",
        format_rows(
            "Figure 12: microbenchmark, varying the I/O bandwidth",
            &rows
        )
    );

    let mut group = c.benchmark_group("fig12_micro_bandwidth");
    group.sample_size(10);
    group.bench_function("sweep_all_policies", |b| {
        let scale = measured_scale();
        b.iter(|| fig12_micro_bandwidth_sweep(&scale).expect("fig12 sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
