//! Real-file I/O: the microbench figures re-run on the `FileIoDevice`
//! instead of the simulated device, plus the calibration loop that fits the
//! simulator's `L + bytes/B` model to the measured device.
//!
//! The table is materialized as on-disk column segments in a tempdir,
//! reopened cold, and every read goes through the worker-pool `pread` path.
//! Three things are measured:
//!
//! 1. **Calibration fit**: sequential probe batches of doubling sizes are
//!    timed on the real device and the simulator model is fitted by least
//!    squares. The mean relative fit error says how faithful a simulated
//!    twin of this machine's storage is (gated loosely — the score depends
//!    on the host, but a linear model should stay within a quarter of the
//!    measurement on average).
//! 2. **Prefetch overlap on real files**: single-stream wall time with and
//!    without the asynchronous prefetch window. Unlike the virtual-clock
//!    figure, this speedup is machine-dependent, so it is reported but not
//!    gated.
//! 3. **Multi-stream wall throughput**: aggregate bytes/s as concurrent
//!    streams scale, on the same cold files (reported, not gated).

use std::path::PathBuf;
use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{DeviceKind, PageId, PolicyKind, ScanShareConfig, TableId};
use scanshare_exec::{Engine, WorkloadDriver};
use scanshare_iosim::{calibrate_with_batches, probe_batches, FileIoDevice};
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench::{self, MicrobenchConfig};

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;
const WINDOW: usize = 8;

/// Self-cleaning tempdir (no external tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!("scanshare-fileio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create bench tempdir");
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(policy: PolicyKind, pool_bytes: u64, prefetch_pages: usize) -> ScanShareConfig {
    ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: pool_bytes,
        policy,
        device: DeviceKind::File,
        prefetch_pages,
        ..Default::default()
    }
}

fn file_engine(
    storage: &Arc<Storage>,
    policy: PolicyKind,
    pool_bytes: u64,
    prefetch_pages: usize,
) -> Arc<Engine> {
    Engine::new(
        Arc::clone(storage),
        config(policy, pool_bytes, prefetch_pages),
    )
    .expect("engine")
}

/// Fits the device model, keeping the best of a few attempts: on a shared
/// machine a single probe run can be disturbed by unrelated load, and the
/// figure is about how well the *model* can describe the device.
fn best_calibration(
    storage: &Arc<Storage>,
    pages: &[PageId],
    reps: usize,
) -> scanshare_iosim::CalibrationReport {
    let store = storage.file_store().expect("cold storage has a file store");
    // One worker: the sim models a device that serves one request at a time
    // (`L + bytes/B`), so the probes must not be parallelized across the
    // pool — with several workers every small batch finishes in roughly one
    // page-time and the size term disappears from the measurement.
    let device = FileIoDevice::new(store, 1, 64);
    // Probe with chunk-sized requests (8..128 pages): that is what the
    // engine's loads look like, and at one-page requests the thread-wakeup
    // jitter is the same magnitude as the transfer itself. The size rounds
    // are interleaved (8,16,...,128, then again) so a burst of unrelated
    // host load degrades every size equally instead of poisoning the
    // fastest observation of whichever size it lands on.
    let probes = |reps: usize| -> Vec<Vec<PageId>> {
        let mut batches = Vec::new();
        for _ in 0..reps {
            batches.extend(
                probe_batches(pages, 8, 1)
                    .into_iter()
                    .filter(|batch| batch.len() >= 8),
            );
        }
        batches
    };
    // Warm-up pass so every attempt sees the same OS cache state.
    let _ = calibrate_with_batches(&device, PAGE, &probes(1));
    let mut best: Option<scanshare_iosim::CalibrationReport> = None;
    for _ in 0..5 {
        let report = calibrate_with_batches(&device, PAGE, &probes(reps)).expect("calibration");
        if best.map_or(true, |b| report.fit_error < b.fit_error) {
            best = Some(report);
        }
    }
    best.expect("at least one calibration attempt")
}

fn run_wall(engine: &Arc<Engine>, workload: &scanshare_workload::WorkloadSpec) -> (f64, u64) {
    let report = WorkloadDriver::new(Arc::clone(engine))
        .run(workload)
        .expect("workload run");
    assert!(
        report.stream_errors.is_empty(),
        "file-backed run hit I/O errors: {:?}",
        report.stream_errors
    );
    (report.wall.as_secs_f64(), report.io.bytes_read)
}

fn bench(c: &mut Criterion) {
    let preset = bench_preset();
    let (lineitem_tuples, calib_reps) = match preset {
        "smoke" => (120_000, 9),
        _ => (480_000, 15),
    };

    // Materialize the microbench table as segment files and reopen it cold:
    // from here on, every page only exists on disk.
    let dir = TempDir::new();
    let warm = Storage::with_seed(PAGE, CHUNK, 42);
    let warm_table = microbench::setup_lineitem(&warm, lineitem_tuples).expect("lineitem");
    warm.materialize_table(warm_table, &dir.0)
        .expect("materialize");
    let storage = Storage::open_directory(&dir.0).expect("cold reopen");
    let table: TableId = storage.table_by_name("lineitem").expect("lineitem").id;
    let snapshot = storage.master_snapshot(table).expect("snapshot");
    let pages: Vec<PageId> = snapshot.pages().collect();
    let on_disk_bytes = pages.len() as u64 * PAGE;
    println!(
        "fig_fileio: {} tuples in {} pages ({:.1} MB) at {}",
        lineitem_tuples,
        pages.len(),
        on_disk_bytes as f64 / 1e6,
        dir.0.display()
    );

    let mut metrics = Json::object();

    // --- 1. Calibration: fit the sim model to the measured device ----------
    let calib = best_calibration(&storage, &pages, calib_reps);
    println!(
        "calibration: {:.0} MB/s, {:.0} us/request, fit error {:.1}% over {} probes",
        calib.bandwidth.mb_per_sec(),
        calib.request_latency.as_nanos() as f64 / 1e3,
        calib.fit_error * 100.0,
        calib.samples
    );
    metrics.set("calib_fit_score", 1.0 - calib.fit_error);
    metrics.set("calib_bandwidth_mbps", calib.bandwidth.mb_per_sec());
    metrics.set(
        "calib_latency_us",
        calib.request_latency.as_nanos() as f64 / 1e3,
    );

    // --- 2. Prefetch overlap on real files ---------------------------------
    // Single stream, pool with headroom: the window's transfers overlap the
    // scan's compute, exactly the regime of the virtual-clock figure.
    let single = MicrobenchConfig {
        streams: 1,
        queries_per_stream: 2,
        lineitem_tuples,
        ..Default::default()
    };
    let single_workload = microbench::generate(&single, table);
    let pool = on_disk_bytes + (WINDOW as u64 + 4) * PAGE;
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "policy", "sync s", "prefetch s", "speedup"
    );
    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        let (t_sync, _) = run_wall(&file_engine(&storage, policy, pool, 0), &single_workload);
        let (t_pf, _) = run_wall(
            &file_engine(&storage, policy, pool, WINDOW),
            &single_workload,
        );
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>8.2}x",
            policy.name(),
            t_sync,
            t_pf,
            t_sync / t_pf
        );
        metrics.set(
            format!("wall_prefetch_speedup_{}", policy.name()),
            t_sync / t_pf,
        );
    }

    // --- 3. Multi-stream wall throughput -----------------------------------
    println!(
        "{:<10} {:>8} {:>12} {:>14}",
        "policy", "streams", "wall s", "MB/s read"
    );
    for policy in [PolicyKind::Pbm, PolicyKind::CScan] {
        for streams in [1usize, 2, 4] {
            let micro = MicrobenchConfig {
                streams,
                queries_per_stream: 2,
                lineitem_tuples,
                ..Default::default()
            };
            let workload = microbench::generate(&micro, table);
            // A pool at ~40% of the table keeps real misses in play as
            // streams contend, like the paper's pressure-point figures.
            let engine = file_engine(&storage, policy, on_disk_bytes * 2 / 5, 0);
            let (wall, bytes) = run_wall(&engine, &workload);
            let mbps = bytes as f64 / 1e6 / wall;
            println!(
                "{:<10} {:>8} {:>12.4} {:>14.1}",
                policy.name(),
                streams,
                wall,
                mbps
            );
            metrics.set(
                format!("wall_mbps_{}_streams{streams}", policy.name()),
                mbps,
            );
        }
    }

    // Emit the artifact before any assertion so a failing figure still
    // uploads the numbers behind the failure.
    let mut doc = Json::object();
    doc.set("figure", "fig_fileio")
        .set("preset", preset)
        .set("metrics", metrics);
    write_bench_json("fig_fileio", &doc);

    // The acceptance property: the simulator's linear request model must
    // describe the measured device to within 25% on average.
    assert!(
        calib.fit_error <= 0.25,
        "calibration fit error {:.1}% exceeds 25%",
        calib.fit_error * 100.0
    );

    let mut group = c.benchmark_group("fig_fileio");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("pbm_file_single_stream"),
        &(),
        |b, ()| {
            b.iter(|| {
                run_wall(
                    &file_engine(&storage, PolicyKind::Pbm, pool, WINDOW),
                    &single_workload,
                )
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
