//! Zone-map data skipping: demand I/O versus predicate selectivity, per
//! buffer-management policy, with the skipping-disabled baseline and an
//! exact engine == simulator parity gate.
//!
//! The skipping workload scans a clustered `events` table filtered by
//! `ev_key < selectivity * tuples`: with zone maps enabled both executors
//! prune every chunk whose `[min, max]` refutes the predicate before the
//! buffer manager ever sees it — so cooperative-scan relevance accounting
//! and PBM consumption predictions only consider the chunks a query will
//! actually read. Swept knobs: selectivity (100 % / 10 % / 1 %) × policy
//! (LRU / PBM / CScan), each point simulated with zone maps on and off.
//!
//! The single read stream runs on the live engine too (`WorkloadDriver`):
//! its I/O volume and skipped-tuple count must match the simulator **byte
//! for byte** at every swept point, and at 1 % selectivity the pruned run
//! must move at least 10x fewer bytes than the skipping-off baseline; both
//! are asserted after the JSON artifact is written. The deterministic
//! `io_skip_ratio_*` metrics are gated by `bench/baseline.json` through
//! `bench_gate`.

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{PolicyKind, ScanShareConfig};
use scanshare_exec::{Engine, WorkloadDriver};
use scanshare_sim::{SimConfig, SimResult, Simulation};
use scanshare_workload::skipping::{self, SkippingConfig};

const PAGE: u64 = 16 * 1024;
const CHUNK: u64 = 1_000;

struct Preset {
    queries_per_stream: usize,
    tuples: u64,
    selectivities: Vec<f64>,
}

fn preset_of(preset: &str) -> Preset {
    match preset {
        "smoke" => Preset {
            queries_per_stream: 3,
            tuples: 100_000,
            selectivities: vec![1.0, 0.10, 0.01],
        },
        _ => Preset {
            queries_per_stream: 4,
            tuples: 500_000,
            selectivities: vec![1.0, 0.10, 0.01],
        },
    }
}

/// One swept point: a single stream (so the engine's page-request sequence
/// is deterministic and the parity gate can demand byte equality, as in the
/// other single-stream figures) at one fixed selectivity.
fn skip_config(preset: &Preset, selectivity: f64) -> SkippingConfig {
    SkippingConfig {
        streams: 1,
        queries_per_stream: preset.queries_per_stream,
        tuples: preset.tuples,
        value_span: 10_000,
        seed: 0x51a9,
        ..SkippingConfig::default()
    }
    .with_selectivity(selectivity)
}

fn scanshare_config(policy: PolicyKind, pool_bytes: u64, zone_maps: bool) -> ScanShareConfig {
    ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: pool_bytes,
        policy,
        zone_maps,
        ..Default::default()
    }
}

fn run_sim(
    config: &SkippingConfig,
    policy: PolicyKind,
    pool_bytes: u64,
    zone_maps: bool,
) -> SimResult {
    let (storage, workload) = skipping::build(config, PAGE, CHUNK).expect("workload");
    Simulation::new(
        storage,
        SimConfig {
            scanshare: scanshare_config(policy, pool_bytes, zone_maps),
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .expect("sim")
    .run(&workload)
    .expect("sim run")
}

fn bench(c: &mut Criterion) {
    let preset_name = bench_preset();
    let preset = preset_of(preset_name);

    // Pool under pressure: 40 % of the unpruned accessed volume, so the
    // skipping-off baseline actually churns while a pruned probe fits.
    let accessed = {
        let config = skip_config(&preset, 1.0);
        let (storage, workload) = skipping::build(&config, PAGE, CHUNK).expect("workload");
        Simulation::new(
            storage,
            SimConfig {
                scanshare: scanshare_config(PolicyKind::Lru, 1 << 30, false),
                cores: 8,
                sharing_sample_interval: None,
            },
        )
        .expect("probe sim")
        .accessed_volume(&workload)
        .expect("accessed volume")
    };
    let pool = (accessed * 2 / 5).max(8 * PAGE);

    println!(
        "fig_skipping: 1 stream x {} predicated scans of {} tuples, \
         {:.1} MB accessed, pool {:.1} MB",
        preset.queries_per_stream,
        preset.tuples,
        accessed as f64 / 1e6,
        pool as f64 / 1e6
    );
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "policy", "sel%", "skip MB", "noskip MB", "ratio", "engine MB", "pruned tuples"
    );

    let mut metrics = Json::object();
    let mut violations: Vec<String> = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        for &selectivity in &preset.selectivities {
            let config = skip_config(&preset, selectivity);
            let on = run_sim(&config, policy, pool, true);
            let off = run_sim(&config, policy, pool, false);

            let (engine_storage, workload) =
                skipping::build(&config, PAGE, CHUNK).expect("workload");
            let engine =
                Engine::new(engine_storage, scanshare_config(policy, pool, true)).expect("engine");
            let report = WorkloadDriver::new(engine)
                .run(&workload)
                .expect("driver run");
            assert!(
                report.stream_errors.is_empty(),
                "{policy} sel {selectivity}: stream errors {:?}",
                report.stream_errors
            );

            let sel_pct = (selectivity * 100.0).round() as u64;
            let ratio = off.total_io_bytes as f64 / (on.total_io_bytes as f64).max(1.0);
            println!(
                "{:<8} {:>6} {:>12.2} {:>12.2} {:>8.1} {:>14.2} {:>14}",
                policy.name(),
                sel_pct,
                on.total_io_bytes as f64 / 1e6,
                off.total_io_bytes as f64 / 1e6,
                ratio,
                report.buffer.io_bytes as f64 / 1e6,
                on.buffer.pruned_tuples,
            );
            // Collected here, asserted after the JSON artifact is written:
            // a failing figure must still upload its numbers.
            if report.buffer.io_bytes != on.total_io_bytes {
                violations.push(format!(
                    "{policy} sel {selectivity}: engine {} vs simulator {} bytes",
                    report.buffer.io_bytes, on.total_io_bytes
                ));
            }
            if report.buffer.pruned_tuples != on.buffer.pruned_tuples {
                violations.push(format!(
                    "{policy} sel {selectivity}: engine pruned {} vs simulator {} tuples",
                    report.buffer.pruned_tuples, on.buffer.pruned_tuples
                ));
            }
            if selectivity < 1.0 && on.buffer.pruned_tuples == 0 {
                violations.push(format!("{policy} sel {selectivity}: nothing was pruned"));
            }
            metrics
                .set(
                    format!("io_mb_skip_{}_sel{sel_pct}", policy.name()),
                    on.total_io_bytes as f64 / 1e6,
                )
                .set(
                    format!("io_mb_noskip_{}_sel{sel_pct}", policy.name()),
                    off.total_io_bytes as f64 / 1e6,
                )
                .set(
                    format!("io_skip_ratio_{}_sel{sel_pct}", policy.name()),
                    ratio,
                );
        }
    }

    let mut doc = Json::object();
    doc.set("figure", "fig_skipping")
        .set("preset", preset_name)
        .set("metrics", metrics);
    write_bench_json("fig_skipping", &doc);

    assert!(
        violations.is_empty(),
        "engine and simulator disagreed under zone-map skipping:\n{}",
        violations.join("\n")
    );
    // The headline acceptance bar: at 1 % selectivity, pruning cuts the
    // I/O moved by at least an order of magnitude under every policy.
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let config = skip_config(&preset, 0.01);
        let on = run_sim(&config, policy, pool, true);
        let off = run_sim(&config, policy, pool, false);
        assert!(
            on.total_io_bytes * 10 <= off.total_io_bytes,
            "{policy}: skipping saved less than 10x at 1% selectivity \
             ({} vs {} bytes)",
            on.total_io_bytes,
            off.total_io_bytes
        );
    }

    // The measured point: the full pruned pipeline at the most selective
    // sweep value.
    let mut group = c.benchmark_group("fig_skipping");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("sim_pbm_sel1_zones_on"),
        &(),
        |b, _| {
            let config = skip_config(&preset, 0.01);
            b.iter(|| run_sim(&config, PolicyKind::Pbm, pool, true))
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
