//! Query-pipeline figure: plan shape × replacement policy.
//!
//! Sweeps three single-stream plan shapes — a plain projection scan, a
//! zone-map-prunable filtered scan, and a broadcast hash join (build side
//! scanned and hashed first, probe side streamed through the shared-scan
//! machinery) — across the full policy zoo: LRU, PBM, Cooperative Scans,
//! plus CLOCK and SIEVE resolved by name through the `PolicyRegistry`.
//!
//! Every swept point runs on both executors. The workload driver (real
//! engine, real buffer pool) must account **byte-identical** I/O to the
//! discrete-event simulator — collected as `parity_*` metrics (1.0 = equal)
//! and asserted after the JSON artifact is written. The simulator's virtual
//! stream times yield the deterministic `virtual_speedup_<shape>_<policy>`
//! metrics (time under LRU / time under the policy, > 1 means the policy
//! beats LRU) gated by `bench/baseline.json`, exact on any machine.
//!
//! Wall-clock measurements cover the engine-side operator pipelines
//! (multi-key group-by, top-k, join via the `Query` builder) and are
//! reported but not gated.

use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{PolicyKind, RangeList, ScanShareConfig, TableId, TupleRange};
use scanshare_exec::ops::{AggrSpec, Aggregate, SortOrder};
use scanshare_exec::{Engine, WorkloadDriver};
use scanshare_sim::{SimConfig, SimResult, Simulation};
use scanshare_storage::datagen::DataGen;
use scanshare_storage::{ColumnSpec, ColumnType, Storage, TableSpec};
use scanshare_workload::spec::{JoinSpec, QuerySpec, ScanSpec, StreamSpec, WorkloadSpec};

const PAGE: u64 = 16 * 1024;
const CHUNK: u64 = 1_000;
const DIM_ROWS: u64 = 32;

struct Preset {
    tuples: u64,
    queries_per_shape: usize,
}

fn preset_of(preset: &str) -> Preset {
    match preset {
        "smoke" => Preset {
            tuples: 60_000,
            queries_per_shape: 4,
        },
        _ => Preset {
            tuples: 300_000,
            queries_per_shape: 6,
        },
    }
}

/// `fact` (projection columns f_key/f_cat/f_val/f_qty) plus a 32-row `dim`
/// whose key exactly covers f_cat's domain, so each probe row joins one
/// build row.
fn setup(tuples: u64) -> (Arc<Storage>, TableId, TableId) {
    let storage = Storage::with_seed(PAGE, CHUNK, 0x00f1_90e5);
    let fact = storage
        .create_table_with_data(
            TableSpec::new(
                "fact",
                vec![
                    ColumnSpec::new("f_key", ColumnType::Int64),
                    ColumnSpec::new("f_cat", ColumnType::Int64),
                    ColumnSpec::new("f_val", ColumnType::Int64),
                    ColumnSpec::new("f_qty", ColumnType::Int64),
                ],
                tuples,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Cyclic {
                    period: DIM_ROWS,
                    min: 0,
                    max: DIM_ROWS as i64 - 1,
                },
                DataGen::Uniform { min: -50, max: 50 },
                DataGen::Uniform { min: 1, max: 20 },
            ],
        )
        .expect("fact table");
    let dim = storage
        .create_table_with_data(
            TableSpec::new(
                "dim",
                vec![
                    ColumnSpec::new("d_key", ColumnType::Int64),
                    ColumnSpec::new("d_bonus", ColumnType::Int64),
                ],
                DIM_ROWS,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Sequential {
                    start: 100,
                    step: 10,
                },
            ],
        )
        .expect("dim table");
    (storage, fact, dim)
}

/// One single-stream workload per plan shape; single stream + parallelism 1
/// keeps the request sequence deterministic so engine/simulator parity can
/// be byte-exact (as in the other single-stream figures).
fn shape_workload(shape: &str, preset: &Preset, fact: TableId, dim: TableId) -> WorkloadSpec {
    use scanshare_storage::zone::{ZoneOp, ZonePredicate};
    let tuples = preset.tuples;
    let queries = (0..preset.queries_per_shape)
        .map(|i| {
            // Overlapping windows so scans share pages across queries.
            let start = (i as u64 * tuples / 8) % (tuples / 2);
            let end = (start + tuples / 2).min(tuples);
            let probe = ScanSpec {
                table: fact,
                columns: vec![0, 1, 2, 3],
                ranges: RangeList::from_ranges([TupleRange::new(start, end)]),
                predicate: (shape == "filter").then(|| {
                    // f_key is sequential: "< 10%" prunes ~90% of chunks.
                    ZonePredicate::new(0, ZoneOp::Lt, (tuples / 10) as i64)
                }),
            };
            QuerySpec {
                label: format!("{shape}{i}"),
                scans: if shape == "join" {
                    vec![
                        ScanSpec {
                            table: dim,
                            columns: vec![0, 1],
                            ranges: RangeList::single(0, DIM_ROWS),
                            predicate: None,
                        },
                        probe,
                    ]
                } else {
                    vec![probe]
                },
                cpu_factor: 1.0,
                join: (shape == "join").then_some(JoinSpec {
                    left_col: 1, // f_cat within the probe projection
                    right_col: 0,
                }),
            }
        })
        .collect();
    WorkloadSpec::read_only(
        format!("fig-queries-{shape}"),
        vec![StreamSpec {
            label: "s0".into(),
            queries,
        }],
    )
}

/// The policy zoo: built-in kinds plus clock/sieve via the registry.
fn policies() -> Vec<(&'static str, ScanShareConfig)> {
    let base = ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        ..Default::default()
    };
    vec![
        (
            "lru",
            ScanShareConfig {
                policy: PolicyKind::Lru,
                ..base.clone()
            },
        ),
        (
            "pbm",
            ScanShareConfig {
                policy: PolicyKind::Pbm,
                ..base.clone()
            },
        ),
        (
            "cscan",
            ScanShareConfig {
                policy: PolicyKind::CScan,
                ..base.clone()
            },
        ),
        ("clock", base.clone().with_custom_policy("clock")),
        ("sieve", base.with_custom_policy("sieve")),
    ]
}

fn run_sim(storage: &Arc<Storage>, workload: &WorkloadSpec, config: ScanShareConfig) -> SimResult {
    Simulation::new(
        Arc::clone(storage),
        SimConfig {
            scanshare: config,
            cores: 4,
            sharing_sample_interval: None,
        },
    )
    .expect("sim")
    .run(workload)
    .expect("sim run")
}

fn bench(c: &mut Criterion) {
    let preset_name = bench_preset();
    let preset = preset_of(preset_name);
    let (storage, fact, dim) = setup(preset.tuples);

    // Pool under pressure: 40% of the plain-scan accessed volume, so
    // replacement decisions actually differentiate the policies.
    let accessed = {
        let workload = shape_workload("scan", &preset, fact, dim);
        Simulation::new(
            Arc::clone(&storage),
            SimConfig {
                scanshare: ScanShareConfig {
                    page_size_bytes: PAGE,
                    chunk_tuples: CHUNK,
                    buffer_pool_bytes: 1 << 30,
                    ..Default::default()
                },
                cores: 4,
                sharing_sample_interval: None,
            },
        )
        .expect("probe sim")
        .accessed_volume(&workload)
        .expect("accessed volume")
    };
    let pool = (accessed * 2 / 5).max(8 * PAGE);

    println!(
        "fig_queries: {} tuples, {} queries per shape, {:.1} MB accessed, pool {:.1} MB",
        preset.tuples,
        preset.queries_per_shape,
        accessed as f64 / 1e6,
        pool as f64 / 1e6
    );
    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>10} {:>10}",
        "shape", "policy", "sim MB", "engine MB", "v-time s", "speedup"
    );

    let mut metrics = Json::object();
    let mut violations: Vec<String> = Vec::new();
    for shape in ["scan", "filter", "join"] {
        let workload = shape_workload(shape, &preset, fact, dim);
        let mut lru_time = None;
        for (name, config) in policies() {
            let config = ScanShareConfig {
                buffer_pool_bytes: pool,
                ..config
            };
            let sim = run_sim(&storage, &workload, config.clone());
            let engine = Engine::new(Arc::clone(&storage), config).expect("engine");
            let report = WorkloadDriver::new(engine).run(&workload).expect("driver");
            if !report.stream_errors.is_empty() {
                violations.push(format!(
                    "{shape}/{name}: stream errors {:?}",
                    report.stream_errors
                ));
            }
            let parity = if report.buffer.io_bytes == sim.total_io_bytes {
                1.0
            } else {
                violations.push(format!(
                    "{shape}/{name}: engine {} vs simulator {} bytes",
                    report.buffer.io_bytes, sim.total_io_bytes
                ));
                0.0
            };
            let vtime = sim.avg_stream_time_secs().expect("stream time");
            let speedup = match lru_time {
                None => {
                    lru_time = Some(vtime);
                    1.0
                }
                Some(lru) => lru / vtime,
            };
            println!(
                "{:<8} {:<8} {:>10.2} {:>12.2} {:>10.4} {:>10.3}",
                shape,
                name,
                sim.total_io_bytes as f64 / 1e6,
                report.buffer.io_bytes as f64 / 1e6,
                vtime,
                speedup,
            );
            metrics
                .set(
                    format!("io_mb_{shape}_{name}"),
                    sim.total_io_bytes as f64 / 1e6,
                )
                .set(format!("parity_{shape}_{name}"), parity)
                .set(format!("virtual_speedup_{shape}_{name}"), speedup);
        }
    }

    let mut doc = Json::object();
    doc.set("figure", "fig_queries")
        .set("preset", preset_name)
        .set("metrics", metrics);
    write_bench_json("fig_queries", &doc);

    assert!(
        violations.is_empty(),
        "engine and simulator disagreed on query-pipeline workloads:\n{}",
        violations.join("\n")
    );

    // Wall-clock points: the operator pipelines themselves (group-by,
    // top-k, join) through the Query builder on a PBM engine. Reported,
    // not gated — the deterministic gate is the virtual metrics above.
    let engine = Engine::new(
        Arc::clone(&storage),
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: pool,
            policy: PolicyKind::Pbm,
            ..Default::default()
        },
    )
    .expect("engine");
    let mut group = c.benchmark_group("fig_queries");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("engine_group_by"),
        &(),
        |b, _| {
            b.iter(|| {
                engine
                    .query(fact)
                    .columns(["f_cat", "f_val", "f_qty"])
                    .group_by(&[0])
                    .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]))
                    .run_grouped()
                    .expect("group_by")
            })
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("engine_top_k"), &(), |b, _| {
        b.iter(|| {
            engine
                .query(fact)
                .columns(["f_key", "f_val"])
                .top_k(1, 10, SortOrder::Desc)
                .rows()
                .expect("top_k")
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("engine_join"), &(), |b, _| {
        b.iter(|| {
            engine
                .query(fact)
                .columns(["f_key", "f_cat"])
                .join(dim, 1, "d_key")
                .join_columns(["d_bonus"])
                .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(3)]))
                .run()
                .expect("join")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
