//! Figure 8 / Equation 1: intra-query parallelism by static range
//! partitioning.
//!
//! Measures the parallel scan-aggregate plan of the execution engine at
//! 1, 2, 4 and 8 workers over the same table, under PBM. The partitioning is
//! exactly Equation 1 of the paper; the printed summary shows that results
//! are identical regardless of the worker count.

use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_common::{PolicyKind, ScanShareConfig, TupleRange};
use scanshare_core::metrics::BufferStats;
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench;

fn setup() -> (Arc<scanshare_exec::Engine>, scanshare_common::TableId) {
    let storage = Storage::with_seed(128 * 1024, 50_000, 42);
    let lineitem = microbench::setup_lineitem(&storage, 500_000).expect("table");
    let config = ScanShareConfig {
        page_size_bytes: 128 * 1024,
        chunk_tuples: 50_000,
        buffer_pool_bytes: 16 << 20,
        policy: PolicyKind::Pbm,
        ..Default::default()
    };
    (
        scanshare_exec::Engine::new(storage, config).expect("engine"),
        lineitem,
    )
}

fn q6(
    engine: &Arc<scanshare_exec::Engine>,
    table: scanshare_common::TableId,
    threads: usize,
) -> i64 {
    use scanshare_exec::ops::{AggrSpec, Aggregate, CompareOp, Predicate};
    let result = engine
        .query(table)
        .columns(["l_quantity", "l_extendedprice", "l_discount", "l_shipdate"])
        .tuple_range(TupleRange::new(0, 500_000))
        .filter(Predicate::new(0, CompareOp::Le, 24))
        .aggregate(AggrSpec::global(vec![Aggregate::Sum(1), Aggregate::Count]))
        .parallelism(threads)
        .run()
        .expect("query");
    result[&0].accumulators[0]
}

fn bench(c: &mut Criterion) {
    let (engine, table) = setup();
    // Correctness summary: every worker count returns the same answer.
    let reference = q6(&engine, table, 1);
    for threads in [2usize, 4, 8] {
        assert_eq!(q6(&engine, table, threads), reference);
    }
    let stats: BufferStats = engine.buffer_stats();
    println!(
        "Figure 8 / Eq. 1: Q6-style aggregate = {reference}, identical for 1/2/4/8 workers \
         (buffer: {} hits, {} misses)",
        stats.hits, stats.misses
    );

    let mut group = c.benchmark_group("fig08_parallel_split");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| q6(&engine, table, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
