//! Figure 17: sharing potential in the microbenchmark.

use scanshare_bench::crit::Criterion;
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_bench::{bench_scale, measured_scale};
use scanshare_sim::experiment::fig17_sharing_micro;
use scanshare_sim::report::format_sharing;

fn bench(c: &mut Criterion) {
    let profile = fig17_sharing_micro(&bench_scale()).expect("fig17 profile");
    println!(
        "{}",
        format_sharing(
            "Figure 17: sharing potential in the microbenchmark",
            &profile
        )
    );

    let mut group = c.benchmark_group("fig17_sharing_micro");
    group.sample_size(10);
    group.bench_function("profile", |b| {
        let scale = measured_scale();
        b.iter(|| fig17_sharing_micro(&scale).expect("fig17 profile"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
