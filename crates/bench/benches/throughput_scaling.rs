//! Throughput scaling: wall-clock multi-stream throughput of the live
//! engine across buffer-pool shard counts (streams × shards × policy),
//! with LRU, PBM **and Cooperative Scans** competing in one gated figure.
//!
//! Two measurements per configuration, both at 8 concurrent streams:
//!
//! * **end-to-end**: the [`WorkloadDriver`] runs a microbenchmark
//!   [`WorkloadSpec`](scanshare_workload::WorkloadSpec) against the engine —
//!   one real thread per stream, full scan → select → aggregate queries.
//!   This number includes tuple materialization and aggregation, which
//!   dominate the engine's per-tuple cost, so it bounds how much of a real
//!   query the buffer manager is;
//! * **backend**: the same thread count drives the buffer-manager protocol
//!   itself (register scan → page requests over a warm [`ShardedPool`] →
//!   progress reports → unregister) with no tuple processing. This isolates
//!   the structure the shards exist to scale — the paper-relevant question
//!   "how many concurrent scans can one buffer manager feed?" — and is the
//!   figure's queries/s metric.
//!
//! Sharding never changes *what* is read: replacement decisions are
//! globally exact (see `scanshare_core::sharded`), so the figure asserts
//! that total I/O volume is byte-identical across shard counts. The
//! wall-clock speedup, by contrast, requires physical parallelism: the
//! ≥1.5× scaling assertion is enforced on hosts with ≥8 logical CPUs (or
//! whenever `SCANSHARE_BENCH_ASSERT_SCALING` is set) — a lock can only be
//! contended if threads actually run at once, and small shared runners are
//! too jittery to enforce a wall-clock ratio on. The measured factor is
//! always printed and emitted to `BENCH_throughput_scaling.json`.
//!
//! The Cooperative Scans side mirrors both measurements: an end-to-end
//! `WorkloadDriver` run under `PolicyKind::CScan` (directory shards ×
//! load-scheduler window), and a backend phase driving the raw ABM chunk
//! protocol — `RegisterCScan` → `GetChunk`… → `UnregisterCScan` over a
//! warm chunk cache — against the decomposed ABM at several shard counts
//! *and* against the pre-refactor `Mutex<MonolithicAbm>`, whose single
//! lock serializes every stream. Accounting is asserted identical across
//! implementations and shard counts; the decomposed-vs-monolithic speedup
//! is gated (≥1.1×) on parallel hosts.

use std::sync::Arc;
use std::time::Instant;

use scanshare_bench::crit::Criterion;
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::sync::Mutex;
use scanshare_common::{
    ColumnId, PageId, PolicyKind, RangeList, ScanShareConfig, TupleRange, VirtualInstant,
};
use scanshare_core::abm::{Abm, AbmConfig, CScanRequest, MonolithicAbm};
use scanshare_core::metrics::BufferStats;
use scanshare_core::registry::{pooled_policy_name, PolicyRegistry};
use scanshare_core::sharded::ShardedPool;
use scanshare_exec::{Engine, WorkloadDriver};
use scanshare_sim::{SimConfig, Simulation};
use scanshare_storage::column::{ColumnSpec, ColumnType};
use scanshare_storage::datagen::DataGen;
use scanshare_storage::layout::{PageDescriptor, ScanPagePlan};
use scanshare_storage::storage::Storage;
use scanshare_storage::table::TableSpec;
use scanshare_workload::microbench::{self, MicrobenchConfig};

const STREAMS: usize = 8;
const PAGE: u64 = 16 * 1024;
const CHUNK: u64 = 5_000;

struct Preset {
    name: &'static str,
    lineitem_tuples: u64,
    queries_per_stream: usize,
    e2e_shards: &'static [usize],
    backend_shards: &'static [usize],
    /// Backend phase: pages in the (fully warm) pool.
    backend_pages: u64,
    /// Backend phase: page requests per backend query.
    backend_query_pages: u64,
    /// Backend phase: queries per stream thread.
    backend_queries: u64,
    /// CScan backend phase: chunks in the (fully warm) ABM.
    cscan_chunks: u64,
    /// CScan backend phase: chunks per protocol query.
    cscan_span_chunks: u64,
    /// CScan backend phase: queries per stream thread.
    cscan_queries: u64,
}

fn preset() -> Preset {
    match bench_preset() {
        "smoke" => Preset {
            name: "smoke",
            lineitem_tuples: 40_000,
            queries_per_stream: 3,
            e2e_shards: &[1, 4],
            backend_shards: &[1, 2, 4, 8],
            backend_pages: 4_096,
            backend_query_pages: 512,
            backend_queries: 48,
            cscan_chunks: 32,
            cscan_span_chunks: 8,
            cscan_queries: 64,
        },
        _ => Preset {
            name: "full",
            lineitem_tuples: 200_000,
            queries_per_stream: 8,
            e2e_shards: &[1, 2, 4, 8],
            backend_shards: &[1, 2, 4, 8],
            backend_pages: 8_192,
            backend_query_pages: 512,
            backend_queries: 192,
            cscan_chunks: 64,
            cscan_span_chunks: 16,
            cscan_queries: 256,
        },
    }
}

fn engine_config(policy: PolicyKind, pool_bytes: u64, shards: usize) -> ScanShareConfig {
    ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: pool_bytes,
        policy,
        pool_shards: shards,
        ..Default::default()
    }
}

/// A synthetic single-column page plan over `pages` pages starting at
/// `first`, used to register backend-phase scans (PBM derives its
/// next-consumption estimates from `tuples_behind`).
fn backend_plan(first: u64, pages: u64, total_pages: u64) -> ScanPagePlan {
    const TUPLES_PER_PAGE: u64 = 1_000;
    let descs: Vec<PageDescriptor> = (0..pages)
        .map(|i| {
            let page = (first + i) % total_pages;
            PageDescriptor {
                page: PageId::new(page),
                column: ColumnId::new(0),
                column_index: 0,
                sid_range: TupleRange::new(i * TUPLES_PER_PAGE, (i + 1) * TUPLES_PER_PAGE),
                tuples_behind: i * TUPLES_PER_PAGE,
                tuple_count: TUPLES_PER_PAGE,
            }
        })
        .collect();
    ScanPagePlan {
        table: scanshare_common::TableId::new(0),
        total_tuples: pages * TUPLES_PER_PAGE,
        pages: descs,
    }
}

/// Runs the backend-protocol phase: `STREAMS` threads, each registering
/// scans over a warm pool and sweeping their pages. Returns (queries/s,
/// total I/O bytes, hits+misses).
fn backend_throughput(policy: PolicyKind, shards: usize, preset: &Preset) -> (f64, u64, u64) {
    let config = engine_config(policy, preset.backend_pages * PAGE, shards);
    let name = pooled_policy_name(&config, policy);
    let replacement = PolicyRegistry::default()
        .build(name, &config)
        .expect("policy");
    let pool = Arc::new(ShardedPool::new(
        preset.backend_pages as usize,
        PAGE,
        replacement,
        shards,
    ));
    let now = VirtualInstant::EPOCH;

    // Warm the pool: every page misses exactly once, then stays resident
    // (capacity equals the page count, so no eviction ever runs and the
    // measured phase is pure hits).
    for page in 0..preset.backend_pages {
        pool.request_page(PageId::new(page), None, now)
            .expect("warm");
    }

    let started = Instant::now();
    std::thread::scope(|scope| {
        for stream in 0..STREAMS as u64 {
            let pool = Arc::clone(&pool);
            let pages = preset.backend_pages;
            let query_pages = preset.backend_query_pages;
            let queries = preset.backend_queries;
            scope.spawn(move || {
                // Each stream starts its sweeps at a different offset so
                // concurrent scans spread over the page (and shard) space,
                // like the microbenchmark's random scan placement.
                let mut cursor = stream * (pages / STREAMS as u64);
                for _ in 0..queries {
                    let plan = backend_plan(cursor, query_pages, pages);
                    let scan = pool.register_scan(&plan, now);
                    for (i, desc) in plan.pages.iter().enumerate() {
                        pool.request_page(desc.page, Some(scan), now).expect("hit");
                        if i % 64 == 63 {
                            pool.report_scan_position(scan, desc.tuples_behind, now);
                        }
                    }
                    pool.unregister_scan(scan, now);
                    cursor = (cursor + query_pages) % pages;
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = pool.stats();
    let total_queries = (STREAMS as u64 * preset.backend_queries) as f64;
    (
        total_queries / elapsed,
        stats.io_bytes,
        stats.hits + stats.misses,
    )
}

// ---------------------------------------------------------------------------
// CScan backend phase: the ABM protocol (RegisterCScan -> GetChunk ->
// UnregisterCScan) over a warm chunk cache, decomposed ABM vs the
// pre-refactor Mutex<MonolithicAbm>
// ---------------------------------------------------------------------------

/// The two ABM implementations behind the one protocol the phase drives.
enum CscanPool {
    /// The pre-refactor single-lock ABM behind the outer mutex the old
    /// `CScanBackend` used: every stream serializes on one lock.
    Monolithic(Mutex<MonolithicAbm>),
    /// The decomposed ABM: sharded directory, internal synchronization.
    Decomposed(Abm),
}

impl CscanPool {
    fn register(&self, request: CScanRequest) -> scanshare_core::abm::CScanHandle {
        match self {
            CscanPool::Monolithic(abm) => abm.lock().register_cscan(request).expect("register"),
            CscanPool::Decomposed(abm) => abm.register_cscan(request).expect("register"),
        }
    }
    fn get_chunk(
        &self,
        scan: scanshare_common::ScanId,
    ) -> Option<scanshare_core::abm::ChunkDelivery> {
        match self {
            CscanPool::Monolithic(abm) => abm.lock().get_chunk(scan).expect("get_chunk"),
            CscanPool::Decomposed(abm) => abm.get_chunk(scan).expect("get_chunk"),
        }
    }
    fn load_step(&self) -> bool {
        let now = VirtualInstant::EPOCH;
        match self {
            CscanPool::Monolithic(abm) => {
                let mut abm = abm.lock();
                match abm.next_load(now) {
                    Some(plan) => {
                        abm.complete_load(&plan, now).expect("complete");
                        true
                    }
                    None => false,
                }
            }
            CscanPool::Decomposed(abm) => match abm.next_load(now) {
                Some(plan) => {
                    abm.complete_load(&plan, now).expect("complete");
                    true
                }
                None => false,
            },
        }
    }
    fn unregister(&self, scan: scanshare_common::ScanId) {
        match self {
            CscanPool::Monolithic(abm) => abm.lock().unregister_cscan(scan).expect("unregister"),
            CscanPool::Decomposed(abm) => abm.unregister_cscan(scan).expect("unregister"),
        }
    }
    fn stats(&self) -> BufferStats {
        match self {
            CscanPool::Monolithic(abm) => abm.lock().stats(),
            CscanPool::Decomposed(abm) => abm.stats(),
        }
    }
}

/// Builds the CScan phase table: two columns over `chunks` ABM chunks.
fn cscan_storage(chunks: u64) -> (Arc<Storage>, scanshare_common::TableId, u64) {
    const CHUNK_TUPLES: u64 = 1_000;
    let tuples = chunks * CHUNK_TUPLES;
    let storage = Storage::with_seed(1024, CHUNK_TUPLES, 17);
    let spec = TableSpec::new(
        "t",
        vec![
            ColumnSpec::with_width("a", ColumnType::Int64, 4.0),
            ColumnSpec::with_width("b", ColumnType::Int64, 2.0),
        ],
        tuples,
    );
    let table = storage
        .create_table_with_data(
            spec,
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Constant(1),
            ],
        )
        .expect("cscan table");
    (storage, table, tuples)
}

/// Runs the CScan protocol phase: a keeper scan warms every chunk, then
/// `STREAMS` threads register scans over cached subranges and drain their
/// chunk deliveries — the ABM hot path with zero load traffic, so the
/// measurement isolates the delivery/registration structure the directory
/// shards exist to scale. Returns (queries/s, total I/O bytes, deliveries).
fn cscan_backend_throughput(pool: &CscanPool, preset: &Preset) -> (f64, u64, u64) {
    const CHUNK_TUPLES: u64 = 1_000;
    let (storage, table, tuples) = cscan_storage(preset.cscan_chunks);
    let layout = storage.layout(table).expect("layout");
    let snapshot = storage.master_snapshot(table).expect("snapshot");
    let request = |start: u64, end: u64| CScanRequest {
        table,
        snapshot: Arc::clone(&snapshot),
        layout: Arc::clone(&layout),
        columns: vec![0, 1],
        ranges: RangeList::single(start, end),
        in_order: false,
    };

    // Warm phase: a keeper scan pins the table version and pulls every
    // chunk into the ABM cache. It never consumes, so the chunks stay
    // cached (and protected from metadata teardown) for the whole
    // measured phase.
    let keeper = pool.register(request(0, tuples));
    while pool.load_step() {}

    let span = preset.cscan_span_chunks * CHUNK_TUPLES;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for stream in 0..STREAMS as u64 {
            let pool = &pool;
            let request = &request;
            let queries = preset.cscan_queries;
            scope.spawn(move || {
                for q in 0..queries {
                    // Spread scans over the chunk space like the
                    // microbenchmark's random placement.
                    let positions = preset.cscan_chunks - preset.cscan_span_chunks;
                    let start = ((stream * 7 + q * 3) % positions.max(1)) * CHUNK_TUPLES;
                    let handle = pool.register(request(start, start + span));
                    let mut delivered = 0usize;
                    while pool.get_chunk(handle.id).is_some() {
                        delivered += 1;
                    }
                    assert_eq!(
                        delivered, handle.total_chunks,
                        "warm ABM must deliver every chunk without loads"
                    );
                    pool.unregister(handle.id);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = pool.stats();
    pool.unregister(keeper.id);
    let total_queries = (STREAMS as u64 * preset.cscan_queries) as f64;
    (total_queries / elapsed, stats.io_bytes, stats.hits)
}

fn bench(c: &mut Criterion) {
    let preset = preset();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let micro = MicrobenchConfig {
        streams: STREAMS,
        queries_per_stream: preset.queries_per_stream,
        lineitem_tuples: preset.lineitem_tuples,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&micro, PAGE, CHUNK).expect("workload");
    let accessed = Simulation::new(
        Arc::clone(&storage),
        SimConfig {
            scanshare: engine_config(PolicyKind::Lru, 1 << 30, 1),
            cores: STREAMS,
            sharing_sample_interval: None,
        },
    )
    .expect("sim")
    .accessed_volume(&workload)
    .expect("accessed volume");
    // Headroom pool: every accessed page loads exactly once, so the I/O
    // volume is deterministic under any thread interleaving.
    let pool_bytes = accessed * 2;

    println!(
        "throughput scaling ({}): {} streams, {:.1} MB accessed, host parallelism {}",
        preset.name,
        STREAMS,
        accessed as f64 / 1e6,
        parallelism
    );

    let mut metrics = Json::object();
    let mut io_bytes_doc = Json::object();
    let mut best_backend_speedup: f64 = 0.0;

    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        // -------------------------------------------------------------
        // End-to-end: WorkloadDriver against the live engine
        // -------------------------------------------------------------
        println!(
            "{:<8} {:>7} {:>12} {:>14} {:>12} {:>10} {:>10}",
            "policy", "shards", "e2e q/s", "e2e Mtup/s", "p95 ms", "io MB", "hits"
        );
        let mut e2e_qps_by_shards: Vec<(usize, f64)> = Vec::new();
        let mut reference_io: Option<(u64, u64)> = None;
        for &shards in preset.e2e_shards {
            let engine = Engine::new(
                Arc::clone(&storage),
                engine_config(policy, pool_bytes, shards),
            )
            .expect("engine");
            let driver = WorkloadDriver::new(engine);
            // Cold pass loads every accessed page; its I/O volume is the
            // deterministic quantity sharding must not change.
            let cold = driver.run(&workload).expect("cold run");
            match reference_io {
                None => {
                    reference_io =
                        Some((cold.buffer.io_bytes, cold.buffer.hits + cold.buffer.misses))
                }
                Some((io, requests)) => {
                    assert_eq!(
                        cold.buffer.io_bytes, io,
                        "{policy}: I/O volume must be identical across shard counts"
                    );
                    assert_eq!(
                        cold.buffer.hits + cold.buffer.misses,
                        requests,
                        "{policy}: page-request count must be identical across shard counts"
                    );
                }
            }
            // Warm pass: the throughput measurement.
            let warm = driver.run(&workload).expect("warm run");
            assert_eq!(
                warm.buffer.misses, 0,
                "{policy}: the warm pass must be served entirely from the pool"
            );
            let qps = warm.queries_per_sec();
            println!(
                "{:<8} {:>7} {:>12.1} {:>14.2} {:>12.3} {:>10.1} {:>10}",
                policy.name(),
                shards,
                qps,
                warm.tuples_per_sec() / 1e6,
                warm.p95().map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
                cold.buffer.io_megabytes(),
                warm.buffer.hits,
            );
            metrics.set(format!("qps_e2e_s{STREAMS}_sh{shards}_{policy}"), qps);
            e2e_qps_by_shards.push((shards, qps));
        }
        let (io, _) = reference_io.expect("at least one shard count ran");
        io_bytes_doc.set(format!("cold_io_bytes_s{STREAMS}_{policy}"), io);
        if let Some(speedup) = speedup_vs_one_shard(&e2e_qps_by_shards) {
            println!("{policy}: end-to-end speedup 1 -> >=4 shards: {speedup:.2}x");
            metrics.set(format!("speedup_e2e_s{STREAMS}_{policy}"), speedup);
        }

        // -------------------------------------------------------------
        // Backend protocol: ShardedPool driven directly
        // -------------------------------------------------------------
        println!(
            "{:<8} {:>7} {:>14} {:>14}",
            "policy", "shards", "backend q/s", "Mpages/s"
        );
        let mut backend_qps_by_shards: Vec<(usize, f64)> = Vec::new();
        let mut backend_reference: Option<(u64, u64)> = None;
        for &shards in preset.backend_shards {
            let (qps, io, requests) = backend_throughput(policy, shards, &preset);
            match backend_reference {
                None => backend_reference = Some((io, requests)),
                Some(expected) => assert_eq!(
                    (io, requests),
                    expected,
                    "{policy}: backend I/O accounting must be identical across shard counts"
                ),
            }
            println!(
                "{:<8} {:>7} {:>14.1} {:>14.2}",
                policy.name(),
                shards,
                qps,
                qps * preset.backend_query_pages as f64 / 1e6,
            );
            metrics.set(format!("qps_backend_s{STREAMS}_sh{shards}_{policy}"), qps);
            backend_qps_by_shards.push((shards, qps));
        }
        if let Some(speedup) = speedup_vs_one_shard(&backend_qps_by_shards) {
            println!("{policy}: backend speedup 1 -> >=4 shards: {speedup:.2}x");
            metrics.set(format!("speedup_backend_s{STREAMS}_{policy}"), speedup);
            best_backend_speedup = best_backend_speedup.max(speedup);
        }
    }

    // -----------------------------------------------------------------
    // Cooperative Scans: end-to-end driver throughput
    // -----------------------------------------------------------------
    println!(
        "{:<8} {:>7} {:>7} {:>12} {:>14} {:>12} {:>10}",
        "policy", "shards", "window", "e2e q/s", "e2e Mtup/s", "p95 ms", "io MB"
    );
    for (shards, window) in [(1usize, 1usize), (4, 4)] {
        let mut config = engine_config(PolicyKind::CScan, pool_bytes, shards);
        config.cscan_load_window = window;
        let engine = Engine::new(Arc::clone(&storage), config).expect("cscan engine");
        let driver = WorkloadDriver::new(engine);
        // First pass warms nothing durable — ABM chunk metadata lives only
        // while scans are registered — so both passes do real chunk I/O;
        // the second pass is the measurement.
        let _first = driver.run(&workload).expect("cscan first run");
        let report = driver.run(&workload).expect("cscan run");
        assert!(report.stream_errors.is_empty(), "no stream may starve");
        let qps = report.queries_per_sec();
        println!(
            "{:<8} {:>7} {:>7} {:>12.1} {:>14.2} {:>12.3} {:>10.1}",
            "cscan",
            shards,
            window,
            qps,
            report.tuples_per_sec() / 1e6,
            report.p95().map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
            report.buffer.io_megabytes(),
        );
        metrics.set(
            format!("qps_e2e_s{STREAMS}_sh{shards}_w{window}_cscan"),
            qps,
        );
    }

    // -----------------------------------------------------------------
    // Cooperative Scans: ABM protocol, decomposed vs pre-refactor
    // Mutex<MonolithicAbm>
    // -----------------------------------------------------------------
    println!(
        "{:<14} {:>7} {:>14} {:>14}",
        "abm impl", "shards", "cscan q/s", "deliveries/s"
    );
    let span = preset.cscan_span_chunks as f64;
    let (mono_qps, mono_io, mono_hits) = cscan_backend_throughput(
        &CscanPool::Monolithic(Mutex::new(MonolithicAbm::new(AbmConfig::new(
            1 << 22,
            1024,
        )))),
        &preset,
    );
    println!(
        "{:<14} {:>7} {:>14.1} {:>14.1}",
        "monolithic",
        "-",
        mono_qps,
        mono_qps * span
    );
    metrics.set(format!("qps_backend_cscan_s{STREAMS}_mono"), mono_qps);
    let mut best_cscan_qps: f64 = 0.0;
    for &shards in preset.backend_shards {
        let (qps, io, hits) = cscan_backend_throughput(
            &CscanPool::Decomposed(Abm::new(AbmConfig::new(1 << 22, 1024).with_shards(shards))),
            &preset,
        );
        // The protocol is deterministic in what it reads and delivers:
        // both implementations, at every shard count, must account the
        // identical I/O volume and delivery count.
        assert_eq!(
            (io, hits),
            (mono_io, mono_hits),
            "cscan backend accounting must match the monolithic ABM (shards {shards})"
        );
        println!(
            "{:<14} {:>7} {:>14.1} {:>14.1}",
            "decomposed",
            shards,
            qps,
            qps * span
        );
        metrics.set(format!("qps_backend_cscan_s{STREAMS}_sh{shards}"), qps);
        best_cscan_qps = best_cscan_qps.max(qps);
    }
    let cscan_speedup = if mono_qps > 0.0 {
        best_cscan_qps / mono_qps
    } else {
        0.0
    };
    println!("cscan: decomposed ABM speedup over Mutex<MonolithicAbm>: {cscan_speedup:.2}x");
    metrics.set(format!("speedup_cscan_backend_s{STREAMS}"), cscan_speedup);

    // Emit the machine-readable results *before* any wall-clock assertion:
    // if the scaling check fails, the numbers behind it must still land in
    // the CI artifact for diagnosis.
    let mut doc = Json::object();
    doc.set("figure", "throughput_scaling")
        .set("preset", preset.name)
        .set("streams", STREAMS)
        .set("host_parallelism", parallelism)
        .set("metrics", metrics)
        .set("io_bytes", io_bytes_doc);
    write_bench_json("throughput_scaling", &doc);

    // The scaling claim needs hardware that can actually run streams in
    // parallel: a single-core host serializes every thread and measures
    // scheduler noise, and small shared runners report SMT-inflated logical
    // counts (4 vCPUs = 2 busy physical cores) that are too jittery to
    // enforce a wall-clock ratio on. Enforce at >= 8 logical CPUs, or
    // whenever SCANSHARE_BENCH_ASSERT_SCALING is set; otherwise report.
    let force = std::env::var_os("SCANSHARE_BENCH_ASSERT_SCALING").is_some();
    if parallelism >= 8 || force {
        assert!(
            best_backend_speedup >= 1.5,
            "sharding the pool must scale the backend path at {STREAMS} streams \
             (measured {best_backend_speedup:.2}x, expected >= 1.5x)"
        );
        assert!(
            cscan_speedup >= 1.1,
            "the decomposed ABM must beat the pre-refactor Mutex<MonolithicAbm> \
             at {STREAMS} streams (measured {cscan_speedup:.2}x, expected >= 1.1x)"
        );
    } else {
        println!(
            "note: host parallelism {parallelism} < 8; scaling assertions skipped \
             (best backend speedup {best_backend_speedup:.2}x, cscan speedup \
             {cscan_speedup:.2}x; set SCANSHARE_BENCH_ASSERT_SCALING=1 to enforce)"
        );
    }

    // A stable point for the crit harness: backend throughput at 4 shards.
    let mut group = c.benchmark_group("throughput_scaling");
    group.sample_size(3);
    group.bench_function("backend_pbm_4shards", |b| {
        b.iter(|| backend_throughput(PolicyKind::Pbm, 4, &preset))
    });
    group.finish();
}

/// Best throughput at >= 4 shards relative to the 1-shard configuration.
fn speedup_vs_one_shard(qps_by_shards: &[(usize, f64)]) -> Option<f64> {
    let one = qps_by_shards
        .iter()
        .find(|(s, _)| *s == 1)
        .map(|(_, q)| *q)?;
    let best = qps_by_shards
        .iter()
        .filter(|(s, _)| *s >= 4)
        .map(|(_, q)| *q)
        .fold(f64::NAN, f64::max);
    (best.is_finite() && one > 0.0).then(|| best / one)
}

criterion_group!(benches, bench);
criterion_main!(benches);
