//! Updates vs. scans: total I/O and throughput as the update rate grows,
//! per buffer-management policy — with an exact engine == simulator parity
//! gate.
//!
//! The paper's central argument for retiring Cooperative Scans was the
//! interaction between buffer management and Vectorwise's differential
//! update infrastructure (PDTs, checkpoints). This figure measures that
//! interaction end to end: a read stream scans `lineitem` while an update
//! stream applies insert/delete/modify batches between queries and
//! periodically checkpoints the table — swapping the whole stable image and
//! invalidating the superseded pages from the buffer manager. Swept knobs:
//! update rate (operations per round) × policy (LRU / PBM / CScan).
//!
//! Two executors run the identical round schedule: the live engine
//! (`WorkloadDriver`, real threads, snapshot-isolated `Txn` commits,
//! background-safe checkpoints) and the discrete-event simulator (the
//! mirrored `PdtStack` algebra). Their I/O volumes must match **byte for
//! byte** at every swept point; any divergence fails the figure after the
//! JSON artifact is written. The `virtual_qps_*` metrics come from the
//! simulator's deterministic virtual clock and are gated by
//! `bench/baseline.json` through `bench_gate`.

use std::sync::Arc;

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::json::Json;
use scanshare_bench::{bench_preset, criterion_group, criterion_main, write_bench_json};

use scanshare_common::{PolicyKind, ScanShareConfig};
use scanshare_exec::{Engine, WorkloadDriver};
use scanshare_sim::{SimConfig, Simulation};
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench::{self, MicrobenchConfig};
use scanshare_workload::spec::{UpdateMix, UpdateStreamSpec, WorkloadSpec};

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;

struct Preset {
    queries_per_stream: usize,
    lineitem_tuples: u64,
    rates: Vec<u64>,
}

fn preset_of(preset: &str) -> Preset {
    match preset {
        "smoke" => Preset {
            queries_per_stream: 4,
            lineitem_tuples: 60_000,
            rates: vec![0, 32, 128],
        },
        _ => Preset {
            queries_per_stream: 8,
            lineitem_tuples: 200_000,
            rates: vec![0, 64, 256, 1024],
        },
    }
}

/// Builds a fresh storage + mixed workload for one swept point. Mixed runs
/// mutate storage (checkpoints install snapshots), so the engine and the
/// simulator each get their own deterministically rebuilt instance.
fn build(preset: &Preset, rate: u64) -> (Arc<Storage>, WorkloadSpec) {
    let config = MicrobenchConfig {
        streams: 1,
        queries_per_stream: preset.queries_per_stream,
        lineitem_tuples: preset.lineitem_tuples,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, PAGE, CHUNK).expect("workload");
    let table = storage.table_ids()[0];
    let workload = workload.with_update_stream(UpdateStreamSpec {
        label: "updates".into(),
        table,
        ops_per_round: rate,
        mix: UpdateMix::mostly_modifies(),
        checkpoint_every: Some(2),
        seed: 0xf19,
    });
    (storage, workload)
}

fn scanshare_config(policy: PolicyKind, pool_bytes: u64) -> ScanShareConfig {
    ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: pool_bytes,
        policy,
        ..Default::default()
    }
}

fn sim_config(policy: PolicyKind, pool_bytes: u64) -> SimConfig {
    SimConfig {
        scanshare: scanshare_config(policy, pool_bytes),
        cores: 8,
        sharing_sample_interval: None,
    }
}

fn bench(c: &mut Criterion) {
    let preset_name = bench_preset();
    let preset = preset_of(preset_name);

    // Pool under pressure: 40 % of the accessed volume, the paper's default
    // setting, probed on the read-only slice of the workload.
    let accessed = {
        let (storage, workload) = build(&preset, 0);
        Simulation::new(storage, sim_config(PolicyKind::Lru, 1 << 30))
            .expect("probe sim")
            .accessed_volume(&workload)
            .expect("accessed volume")
    };
    let pool = (accessed * 2 / 5).max(8 * PAGE);

    println!(
        "fig_updates: 1 read stream x {} queries, update stream (checkpoint every 2 rounds), \
         {:.1} MB accessed, pool {:.1} MB",
        preset.queries_per_stream,
        accessed as f64 / 1e6,
        pool as f64 / 1e6
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "policy", "ops/round", "engine MB", "sim MB", "engine qps", "virtual qps", "invalidated"
    );

    let mut metrics = Json::object();
    let mut parity_violations: Vec<String> = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        for &rate in &preset.rates {
            let (engine_storage, workload) = build(&preset, rate);
            let engine =
                Engine::new(engine_storage, scanshare_config(policy, pool)).expect("engine");
            let report = WorkloadDriver::new(engine)
                .run(&workload)
                .expect("driver run");
            assert!(
                report.stream_errors.is_empty(),
                "{policy} rate {rate}: stream errors {:?}",
                report.stream_errors
            );

            let (sim_storage, workload) = build(&preset, rate);
            let sim = Simulation::new(sim_storage, sim_config(policy, pool))
                .expect("sim")
                .run(&workload)
                .expect("sim run");

            let virtual_qps = report.queries as f64 / sim.makespan.as_secs_f64().max(1e-12);
            println!(
                "{:<8} {:>10} {:>12.2} {:>12.2} {:>12.1} {:>12.2} {:>10}",
                policy.name(),
                rate,
                report.buffer.io_bytes as f64 / 1e6,
                sim.total_io_bytes as f64 / 1e6,
                report.queries_per_sec(),
                virtual_qps,
                report.buffer.invalidated_pages,
            );
            // Collected here, asserted after the JSON artifact is written:
            // a failing figure must still upload its numbers.
            if report.buffer.io_bytes != sim.total_io_bytes {
                parity_violations.push(format!(
                    "{policy} rate {rate}: engine {} vs simulator {} bytes",
                    report.buffer.io_bytes, sim.total_io_bytes
                ));
            }
            if report.buffer.invalidated_pages != sim.buffer.invalidated_pages {
                parity_violations.push(format!(
                    "{policy} rate {rate}: engine invalidated {} vs simulator {} pages",
                    report.buffer.invalidated_pages, sim.buffer.invalidated_pages
                ));
            }
            metrics
                .set(
                    format!("io_mb_{}_rate{rate}", policy.name()),
                    sim.total_io_bytes as f64 / 1e6,
                )
                .set(
                    format!("virtual_qps_{}_rate{rate}", policy.name()),
                    virtual_qps,
                )
                .set(
                    format!("qps_engine_{}_rate{rate}", policy.name()),
                    report.queries_per_sec(),
                );
        }
    }

    let mut doc = Json::object();
    doc.set("figure", "fig_updates")
        .set("preset", preset_name)
        .set("metrics", metrics);
    write_bench_json("fig_updates", &doc);

    assert!(
        parity_violations.is_empty(),
        "engine and simulator disagreed on mixed read/write I/O:\n{}",
        parity_violations.join("\n")
    );

    // The measured point: the full mixed pipeline (mirror, translation,
    // checkpoint invalidation, event loop) at the middle update rate.
    let mid_rate = preset.rates[preset.rates.len() / 2];
    let mut group = c.benchmark_group("fig_updates");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("sim_pbm_rate{mid_rate}")),
        &mid_rate,
        |b, &rate| {
            b.iter(|| {
                let (storage, workload) = build(&preset, rate);
                Simulation::new(storage, sim_config(PolicyKind::Pbm, pool))
                    .expect("sim")
                    .run(&workload)
                    .expect("bench run")
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
