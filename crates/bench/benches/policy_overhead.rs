//! CPU overhead of the buffer-management policies themselves.
//!
//! Section 3 of the paper stresses that PBM must be CPU-efficient: its bucket
//! timeline gives O(1) page registration, priority updates and victim
//! selection (a binary heap "turned out to incur too much overhead").
//! This bench measures the per-operation cost of LRU and PBM on the hot
//! paths: page requests (hits), scan registration and eviction decisions,
//! plus the OPT replay used by the harness.

use scanshare_bench::crit::{BenchmarkId, Criterion};
use scanshare_bench::{criterion_group, criterion_main};

use scanshare_common::{PageId, ScanShareConfig, VirtualInstant};
use scanshare_core::bufferpool::BufferPool;
use scanshare_core::lru::LruPolicy;
use scanshare_core::opt::simulate_opt;
use scanshare_core::pbm::{PbmConfig, PbmPolicy};
use scanshare_core::policy::ReplacementPolicy;
use scanshare_storage::storage::Storage;
use scanshare_workload::microbench;

fn make_policy(name: &str) -> Box<dyn ReplacementPolicy> {
    match name {
        "lru" => Box::new(LruPolicy::new()),
        _ => Box::new(PbmPolicy::new(PbmConfig {
            default_scan_speed: ScanShareConfig::default().cpu_tuples_per_sec as f64,
            ..PbmConfig::default()
        })),
    }
}

fn bench(c: &mut Criterion) {
    let page_size = 64 * 1024u64;
    let storage = Storage::with_seed(page_size, 10_000, 9);
    let lineitem = microbench::setup_lineitem(&storage, 200_000).expect("table");
    let layout = storage.layout(lineitem).unwrap();
    let snapshot = storage.master_snapshot(lineitem).unwrap();
    let columns: Vec<usize> = (0..layout.column_count()).collect();
    let plan = layout.scan_page_plan(
        &snapshot,
        &columns,
        &scanshare_common::RangeList::single(0, 200_000),
    );
    let now = VirtualInstant::EPOCH;

    // Hot path 1: page request hits on a warm pool.
    let mut group = c.benchmark_group("request_page_hit");
    for policy_name in ["lru", "pbm"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy_name),
            &policy_name,
            |b, name| {
                let mut pool = BufferPool::new(4096, page_size, make_policy(name));
                let scan = pool.register_scan(&plan, now);
                for desc in plan.interleaved() {
                    pool.request_page(desc.page, Some(scan), now).unwrap();
                }
                let pages: Vec<PageId> = plan.interleaved().iter().map(|d| d.page).collect();
                let mut i = 0;
                b.iter(|| {
                    let page = pages[i % pages.len()];
                    i += 1;
                    pool.request_page(page, Some(scan), now).unwrap()
                });
            },
        );
    }
    group.finish();

    // Hot path 2: RegisterScan over the whole table plan.
    let mut group = c.benchmark_group("register_scan");
    for policy_name in ["lru", "pbm"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy_name),
            &policy_name,
            |b, name| {
                b.iter(|| {
                    let mut pool = BufferPool::new(4096, page_size, make_policy(name));
                    let id = pool.register_scan(&plan, now);
                    pool.unregister_scan(id, now);
                });
            },
        );
    }
    group.finish();

    // Hot path 3: eviction pressure (every request misses and evicts).
    let mut group = c.benchmark_group("evict_under_pressure");
    for policy_name in ["lru", "pbm"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy_name),
            &policy_name,
            |b, name| {
                let mut pool = BufferPool::new(64, page_size, make_policy(name));
                let scan = pool.register_scan(&plan, now);
                let pages: Vec<PageId> = plan.interleaved().iter().map(|d| d.page).collect();
                let mut i = 0;
                b.iter(|| {
                    let page = pages[i % pages.len()];
                    i += 1;
                    pool.request_page(page, Some(scan), now).unwrap()
                });
            },
        );
    }
    group.finish();

    // The OPT replay itself (cost of the oracle simulation, not a policy).
    let mut group = c.benchmark_group("opt_replay");
    let trace: Vec<PageId> = (0..50_000u64).map(|i| PageId::new(i % 1000)).collect();
    group.bench_function("50k_refs_256_pages", |b| {
        b.iter(|| simulate_opt(&trace, 256))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
