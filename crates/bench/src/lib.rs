//! Shared helpers for the benchmark harness.
//!
//! Every `benches/figNN_*.rs` target regenerates one figure of the paper:
//! it prints the figure's data table (policies × swept parameter, average
//! stream time and total I/O volume) and then measures a representative
//! simulation point with the [`crit`] mini-harness (a dependency-free
//! Criterion stand-in).
//!
//! The scale of the printed figures is controlled with the
//! `SCANSHARE_BENCH_SCALE` environment variable: `test` (default, seconds),
//! `quick` (tens of seconds) or `paper` (minutes, closest to the paper's
//! setup).

#![warn(missing_docs)]

pub mod crit;

use scanshare_sim::ExperimentScale;

/// The experiment scale selected via `SCANSHARE_BENCH_SCALE`.
pub fn bench_scale() -> ExperimentScale {
    match std::env::var("SCANSHARE_BENCH_SCALE").as_deref() {
        Ok("paper") => ExperimentScale::paper(),
        Ok("quick") => ExperimentScale::quick(),
        _ => ExperimentScale::test(),
    }
}

/// A smaller scale used for the point measured inside the Criterion loop
/// (so `cargo bench` stays fast even when the printed figure is large).
pub fn measured_scale() -> ExperimentScale {
    ExperimentScale::test()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_the_test_scale() {
        // The env var is not set in unit tests.
        if std::env::var("SCANSHARE_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), ExperimentScale::test());
        }
        assert_eq!(measured_scale(), ExperimentScale::test());
    }
}
