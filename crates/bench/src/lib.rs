//! Shared helpers for the benchmark harness.
//!
//! Every `benches/figNN_*.rs` target regenerates one figure of the paper:
//! it prints the figure's data table (policies × swept parameter, average
//! stream time and total I/O volume) and then measures a representative
//! simulation point with the [`crit`] mini-harness (a dependency-free
//! Criterion stand-in).
//!
//! The scale of the printed figures is controlled with the
//! `SCANSHARE_BENCH_SCALE` environment variable: `test` (default, seconds),
//! `quick` (tens of seconds) or `paper` (minutes, closest to the paper's
//! setup).

#![warn(missing_docs)]

pub mod crit;
pub mod json;

use std::path::PathBuf;

use scanshare_sim::ExperimentScale;

/// The figure preset selected via `SCANSHARE_BENCH_PRESET`: `"smoke"` (the
/// CI `bench-smoke` job: small tables, few queries, runs in seconds) or
/// anything else / unset for the full figure.
pub fn bench_preset() -> &'static str {
    match std::env::var("SCANSHARE_BENCH_PRESET").as_deref() {
        Ok("smoke") => "smoke",
        _ => "full",
    }
}

/// Where `BENCH_<figure>.json` files are written: the directory named by
/// `SCANSHARE_BENCH_JSON_DIR`, defaulting to the current directory.
pub fn bench_json_path(figure: &str) -> PathBuf {
    let dir = std::env::var("SCANSHARE_BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(dir).join(format!("BENCH_{figure}.json"))
}

/// Writes a figure's machine-readable results next to its printed table and
/// reports where they went.
pub fn write_bench_json(figure: &str, doc: &json::Json) {
    let path = bench_json_path(figure);
    match std::fs::write(&path, doc.to_pretty()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

/// The experiment scale selected via `SCANSHARE_BENCH_SCALE`.
pub fn bench_scale() -> ExperimentScale {
    match std::env::var("SCANSHARE_BENCH_SCALE").as_deref() {
        Ok("paper") => ExperimentScale::paper(),
        Ok("quick") => ExperimentScale::quick(),
        _ => ExperimentScale::test(),
    }
}

/// A smaller scale used for the point measured inside the Criterion loop
/// (so `cargo bench` stays fast even when the printed figure is large).
pub fn measured_scale() -> ExperimentScale {
    ExperimentScale::test()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_the_test_scale() {
        // The env var is not set in unit tests.
        if std::env::var("SCANSHARE_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), ExperimentScale::test());
        }
        assert_eq!(measured_scale(), ExperimentScale::test());
    }
}
