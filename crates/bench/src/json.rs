//! A minimal JSON value type with a writer and a parser.
//!
//! The figure benches emit machine-readable `BENCH_*.json` files and the
//! `bench_gate` binary compares them against `bench/baseline.json`; the
//! workspace builds without external dependencies, so this module provides
//! the small JSON subset those files need (objects, arrays, strings,
//! finite numbers, booleans, null) instead of pulling in `serde`.
//!
//! Objects preserve insertion order, so emitted files are deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Self {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        let Json::Obj(entries) = self else {
            panic!("Json::set called on a non-object");
        };
        let key = key.into();
        let value = value.into();
        match entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => entries.push((key, value)),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's entries, in insertion order.
    pub fn entries(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(entries) => entries,
            _ => &[],
        }
    }

    /// Serializes the value with two-space indentation and a trailing
    /// newline (stable, diff-friendly output for checked-in baselines).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module emits, which is all
    /// of JSON except exotic number forms and `\u` surrogate pairs beyond
    /// the BMP).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_round_trip_preserving_order() {
        let mut metrics = Json::object();
        metrics.set("qps_a", 123.5).set("qps_b", 7u64);
        let mut doc = Json::object();
        doc.set("figure", "throughput_scaling")
            .set("metrics", metrics.clone())
            .set("ok", true)
            .set("none", Json::Null)
            .set("list", Json::Arr(vec![1u64.into(), 2u64.into()]));
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.get("figure").unwrap().as_str(),
            Some("throughput_scaling")
        );
        assert_eq!(
            parsed
                .get("metrics")
                .unwrap()
                .get("qps_a")
                .unwrap()
                .as_f64(),
            Some(123.5)
        );
        let keys: Vec<&str> = parsed
            .get("metrics")
            .unwrap()
            .entries()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["qps_a", "qps_b"]);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }

    #[test]
    fn numbers_cover_integers_and_floats() {
        assert_eq!(Json::parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        let mut doc = Json::object();
        doc.set("int", 1_000_000u64).set("float", 0.125);
        let text = doc.to_pretty();
        assert!(text.contains("1000000"), "{text}");
        assert!(text.contains("0.125"), "{text}");
        // Non-finite numbers degrade to null rather than invalid JSON.
        assert_eq!(Json::Num(f64::NAN).to_pretty().trim(), "null");
    }

    #[test]
    fn malformed_documents_report_errors() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut doc = Json::object();
        doc.set("k", 1u64);
        doc.set("k", 2u64);
        assert_eq!(doc.entries().len(), 1);
        assert_eq!(doc.get("k").unwrap().as_f64(), Some(2.0));
        assert!(doc.get("missing").is_none());
    }
}
