//! The CI bench-regression gate.
//!
//! Compares `BENCH_*.json` files produced by the figure benches against the
//! checked-in `bench/baseline.json` and exits non-zero when any gated
//! throughput metric regressed by more than the configured tolerance
//! (default 20%).
//!
//! ```text
//! bench_gate --baseline bench/baseline.json BENCH_throughput_scaling.json ...
//! ```
//!
//! The baseline lists, per figure, the metrics it gates and their expected
//! values; metrics a bench emits but the baseline does not name are
//! reported informationally and never fail the gate. Gating is one-sided —
//! higher is better — because every gated metric is a throughput or a
//! speedup. Wall-clock baselines are intentionally conservative (CI runners
//! and developer machines differ widely); the virtual-time metrics from the
//! simulator-backed figures are deterministic and gate tightly.

use std::process::ExitCode;

use scanshare_bench::json::Json;

struct Args {
    baseline: String,
    tolerance_override: Option<f64>,
    bench_files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = String::from("bench/baseline.json");
    let mut tolerance_override = None;
    let mut bench_files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = args.next().ok_or("--baseline needs a path")?;
            }
            "--tolerance" => {
                let raw = args.next().ok_or("--tolerance needs a fraction")?;
                tolerance_override = Some(
                    raw.parse::<f64>()
                        .map_err(|e| format!("bad tolerance: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_gate [--baseline <path>] [--tolerance <frac>] <BENCH_*.json>..."
                        .into(),
                );
            }
            other => bench_files.push(other.to_string()),
        }
    }
    if bench_files.is_empty() {
        return Err("no bench result files given".into());
    }
    Ok(Args {
        baseline,
        tolerance_override,
        bench_files,
    })
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = load(&args.baseline)?;
    let tolerance = args.tolerance_override.unwrap_or_else(|| {
        baseline
            .get("tolerance")
            .and_then(Json::as_f64)
            .unwrap_or(0.2)
    });
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} must be in [0, 1)"));
    }
    let figures = baseline
        .get("figures")
        .ok_or("baseline has no \"figures\" object")?;

    let mut failures = 0usize;
    let mut checked = 0usize;
    for path in &args.bench_files {
        let bench = load(path)?;
        let figure = bench
            .get("figure")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path} has no \"figure\" field"))?;
        let metrics = bench
            .get("metrics")
            .ok_or_else(|| format!("{path} has no \"metrics\" object"))?;
        let Some(gated) = figures.get(figure) else {
            println!("{figure}: no baseline entry, skipping ({path})");
            continue;
        };
        println!("{figure} ({path}), tolerance {:.0}%:", tolerance * 100.0);
        for (key, expected) in gated.entries() {
            let expected = expected
                .as_f64()
                .ok_or_else(|| format!("baseline {figure}.{key} is not a number"))?;
            checked += 1;
            match metrics.get(key).and_then(Json::as_f64) {
                None => {
                    failures += 1;
                    println!("  FAIL {key}: missing from the bench output");
                }
                Some(actual) => {
                    let floor = expected * (1.0 - tolerance);
                    if actual < floor {
                        failures += 1;
                        println!(
                            "  FAIL {key}: {actual:.3} < {floor:.3} \
                             (baseline {expected:.3} - {:.0}%)",
                            tolerance * 100.0
                        );
                    } else {
                        println!("  ok   {key}: {actual:.3} (baseline {expected:.3})");
                    }
                }
            }
        }
        // Ungated metrics are still worth a line in the CI log.
        for (key, value) in metrics.entries() {
            if gated.get(key).is_none() {
                if let Some(v) = value.as_f64() {
                    println!("  info {key}: {v:.3}");
                }
            }
        }
    }

    println!("bench gate: {checked} metric(s) checked, {failures} failure(s)");
    Ok(failures == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
