//! A minimal, dependency-free stand-in for the parts of the Criterion API
//! the figure benches use.
//!
//! The container this workspace builds in has no network access, so the real
//! `criterion` crate cannot be fetched. The benches only need wall-clock
//! timing of a closure plus the `benchmark_group` / `bench_function` /
//! `bench_with_input` surface; this module provides exactly that and prints
//! one line per measurement (`<group>/<id>: mean ... over N samples`).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level handle passed to every bench function (mirrors
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Measures a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
        };
        group.bench_function(id, f);
        self
    }
}

/// A named benchmark id (mirrors `criterion::BenchmarkId`).
#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the swept parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of measurements sharing a name and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each measurement takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Measures `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&self.name, id);
        self
    }

    /// Measures `f` applied to `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times the measured closure (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `samples` executions of `f` (after one untimed warm-up run).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, id: impl Display) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.iters == 0 {
            println!("{label}: no samples");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!("{label}: mean {mean:?} over {} samples", self.iters);
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::crit::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` from runner
/// functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure_and_accumulates_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7u64), &7u64, |b, &x| {
            b.iter(|| seen = x)
        });
        assert_eq!(seen, 7);
        assert_eq!(BenchmarkId::from_parameter("abc").to_string(), "abc");
    }
}
