//! A bandwidth-limited I/O device in virtual time.
//!
//! The device serves page-load requests sequentially: a request issued while
//! the device is busy queues behind the in-flight transfers (FIFO service
//! order). Each request pays a fixed latency (seek / queueing overhead) plus
//! `bytes / bandwidth` transfer time. This reproduces the paper's
//! experimental knob of limiting the rate of page delivery from the storage
//! layer to the buffer manager.
//!
//! Requests come in two flavours ([`IoKind`]): *demand* reads a scan blocks
//! on ([`IoDevice::submit`]), and *prefetch* reads issued asynchronously
//! ahead of the scan cursor ([`IoDevice::submit_async`]). Asynchronous
//! submission returns an [`IoCompletion`] handle instead of blocking the
//! caller's virtual time, so the caller can overlap the transfer with
//! computation and only wait (via the completion's `done_at`) when it
//! actually consumes the data.

use scanshare_common::sync::Mutex;

use scanshare_common::{Bandwidth, VirtualDuration, VirtualInstant};

use crate::stats::{IoKind, IoStats};

/// The per-request completion handle returned by [`IoDevice::submit_async`].
///
/// All times are in virtual time. `started_at - submitted_at` is the queue
/// wait behind earlier transfers; `done_at - started_at` is the service time
/// (fixed latency plus transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCompletion {
    /// When the request entered the device queue.
    pub submitted_at: VirtualInstant,
    /// When the device started serving the request (end of queue wait).
    pub started_at: VirtualInstant,
    /// When the transfer completes; waiting callers resume here.
    pub done_at: VirtualInstant,
    /// Transferred bytes.
    pub bytes: u64,
    /// Demand or prefetch.
    pub kind: IoKind,
}

impl IoCompletion {
    /// Time the request spent queued behind earlier transfers.
    pub fn queue_wait(&self) -> VirtualDuration {
        self.started_at.since(self.submitted_at)
    }

    /// Time the device spent serving the request (latency + transfer).
    pub fn service_time(&self) -> VirtualDuration {
        self.done_at.since(self.started_at)
    }
}

#[derive(Debug)]
struct DeviceState {
    busy_until: VirtualInstant,
    stats: IoStats,
}

/// A shared, bandwidth-limited sequential I/O device.
#[derive(Debug)]
pub struct IoDevice {
    bandwidth: Bandwidth,
    request_latency: VirtualDuration,
    state: Mutex<DeviceState>,
}

impl IoDevice {
    /// Creates a device with the given bandwidth and fixed per-request
    /// latency.
    pub fn new(bandwidth: Bandwidth, request_latency: VirtualDuration) -> Self {
        Self {
            bandwidth,
            request_latency,
            state: Mutex::new(DeviceState {
                busy_until: VirtualInstant::EPOCH,
                stats: IoStats::default(),
            }),
        }
    }

    /// The configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The configured per-request latency.
    pub fn request_latency(&self) -> VirtualDuration {
        self.request_latency
    }

    /// Enqueues a read of `bytes` bytes at virtual time `now` without
    /// blocking, returning a completion handle. Requests are served strictly
    /// in submission order; a request issued while the device is busy starts
    /// when the device frees up.
    ///
    /// This is the primitive behind asynchronous prefetching: the caller
    /// keeps computing while the transfer is in flight and only waits for
    /// [`IoCompletion::done_at`] when it consumes the data.
    pub fn submit_async(&self, now: VirtualInstant, bytes: u64, kind: IoKind) -> IoCompletion {
        self.submit_internal(now, bytes, 0, kind)
    }

    pub(crate) fn submit_internal(
        &self,
        now: VirtualInstant,
        bytes: u64,
        pages: u64,
        kind: IoKind,
    ) -> IoCompletion {
        let mut state = self.state.lock();
        let start = if state.busy_until > now {
            state.busy_until
        } else {
            now
        };
        let service = self.request_latency + self.bandwidth.transfer_time(bytes);
        let done = start.after(service);
        state.busy_until = done;
        state
            .stats
            .record_request(kind, bytes, start.since(now), service);
        state.stats.pages_read += pages;
        IoCompletion {
            submitted_at: now,
            started_at: start,
            done_at: done,
            bytes,
            kind,
        }
    }

    /// Submits a blocking (demand) read of `bytes` bytes at virtual time
    /// `now` and returns the completion time.
    pub fn submit(&self, now: VirtualInstant, bytes: u64) -> VirtualInstant {
        self.submit_async(now, bytes, IoKind::Demand).done_at
    }

    /// Submits a demand read of `pages` pages of `page_size` bytes each, as
    /// one sequential request (used for chunk loads, which preserve
    /// sequential locality at the page level).
    pub fn submit_pages(&self, now: VirtualInstant, pages: u64, page_size: u64) -> VirtualInstant {
        if pages == 0 {
            return now;
        }
        self.submit_internal(now, pages * page_size, pages, IoKind::Demand)
            .done_at
    }

    /// The time at which the device becomes idle.
    pub fn busy_until(&self) -> VirtualInstant {
        self.state.lock().busy_until
    }

    /// Whether the device would be idle at `now`.
    pub fn is_idle_at(&self, now: VirtualInstant) -> bool {
        self.state.lock().busy_until <= now
    }

    /// Snapshot of the accumulated I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Resets the statistics (the busy horizon is kept).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(mb_per_sec: f64) -> IoDevice {
        IoDevice::new(
            Bandwidth::from_mb_per_sec(mb_per_sec),
            VirtualDuration::from_micros(100),
        )
    }

    #[test]
    fn single_request_takes_latency_plus_transfer() {
        let dev = device(100.0); // 100 MB/s
        let done = dev.submit(VirtualInstant::EPOCH, 1_000_000); // 1 MB
                                                                 // 100us latency + 10ms transfer
        assert_eq!(done.as_nanos(), 100_000 + 10_000_000);
        assert_eq!(dev.stats().bytes_read, 1_000_000);
        assert_eq!(dev.stats().requests, 1);
        assert_eq!(dev.stats().demand_bytes, 1_000_000);
        assert_eq!(dev.stats().prefetch_bytes, 0);
    }

    #[test]
    fn queued_requests_serialize() {
        let dev = device(100.0);
        let first = dev.submit(VirtualInstant::EPOCH, 1_000_000);
        let second = dev.submit(VirtualInstant::EPOCH, 1_000_000);
        assert!(second > first);
        assert_eq!(second.as_nanos(), 2 * first.as_nanos());
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let dev = device(100.0);
        let first = dev.submit(VirtualInstant::EPOCH, 1_000_000);
        // Submit long after the device went idle: starts immediately.
        let later = first.after(VirtualDuration::from_secs(1));
        let second = dev.submit(later, 1_000_000);
        assert_eq!(second.since(later), first.since(VirtualInstant::EPOCH));
    }

    #[test]
    fn faster_bandwidth_means_shorter_transfers() {
        let slow = device(200.0);
        let fast = device(2000.0);
        let t_slow = slow.submit(VirtualInstant::EPOCH, 10_000_000);
        let t_fast = fast.submit(VirtualInstant::EPOCH, 10_000_000);
        assert!(t_fast < t_slow);
    }

    #[test]
    fn submit_pages_accounts_pages_and_bytes() {
        let dev = device(700.0);
        let done = dev.submit_pages(VirtualInstant::EPOCH, 16, 256 * 1024);
        assert!(done > VirtualInstant::EPOCH);
        let stats = dev.stats();
        assert_eq!(stats.pages_read, 16);
        assert_eq!(stats.bytes_read, 16 * 256 * 1024);
        assert_eq!(stats.requests, 1);
        // Zero pages is a no-op.
        let t = dev.submit_pages(VirtualInstant::EPOCH, 0, 256 * 1024);
        assert_eq!(t, VirtualInstant::EPOCH);
        assert_eq!(dev.stats().requests, 1);
    }

    #[test]
    fn busy_until_and_reset_stats() {
        let dev = device(100.0);
        assert!(dev.is_idle_at(VirtualInstant::EPOCH));
        let done = dev.submit(VirtualInstant::EPOCH, 500_000);
        assert_eq!(dev.busy_until(), done);
        assert!(!dev.is_idle_at(VirtualInstant::EPOCH));
        assert!(dev.is_idle_at(done));
        dev.reset_stats();
        assert_eq!(dev.stats().bytes_read, 0);
        assert_eq!(dev.busy_until(), done, "reset_stats keeps the busy horizon");
    }

    #[test]
    fn async_submission_does_not_block_but_keeps_fifo_order() {
        let dev = device(100.0);
        let now = VirtualInstant::EPOCH;
        // A prefetch issued first is served first; the demand read behind it
        // queues until the prefetch transfer finishes.
        let prefetch = dev.submit_async(now, 1_000_000, IoKind::Prefetch);
        let demand = dev.submit_async(now, 1_000_000, IoKind::Demand);
        assert_eq!(prefetch.queue_wait(), VirtualDuration::ZERO);
        assert_eq!(demand.started_at, prefetch.done_at);
        assert_eq!(demand.queue_wait(), prefetch.service_time());
        assert_eq!(demand.service_time(), prefetch.service_time());
        assert!(demand.done_at > prefetch.done_at);

        let stats = dev.stats();
        assert_eq!(stats.demand_bytes + stats.prefetch_bytes, stats.bytes_read);
        assert_eq!(stats.prefetch_requests, 1);
        assert_eq!(stats.demand_requests, 1);
        assert_eq!(stats.queue_wait_nanos, demand.queue_wait().as_nanos());
        assert_eq!(
            stats.service_nanos,
            prefetch.service_time().as_nanos() + demand.service_time().as_nanos()
        );
    }

    #[test]
    fn completion_windows_attribute_wait_and_service() {
        let dev = device(100.0);
        let a = dev.submit_async(VirtualInstant::EPOCH, 2_000_000, IoKind::Demand);
        // Submitted mid-transfer: waits for `a`, then pays its own service.
        let mid = VirtualInstant::from_nanos(a.done_at.as_nanos() / 2);
        let b = dev.submit_async(mid, 1_000_000, IoKind::Prefetch);
        assert_eq!(b.submitted_at, mid);
        assert_eq!(b.started_at, a.done_at);
        assert_eq!(b.done_at, b.started_at.after(b.service_time()));
        assert_eq!(
            b.done_at.since(b.submitted_at),
            b.queue_wait() + b.service_time(),
            "queue wait and service time partition the request's latency"
        );
    }
}
