//! A bandwidth-limited I/O device in virtual time.
//!
//! The device serves page-load requests sequentially: a request issued while
//! the device is busy queues behind the in-flight transfers. Each request
//! pays a fixed latency (seek / queueing overhead) plus `bytes / bandwidth`
//! transfer time. This reproduces the paper's experimental knob of limiting
//! the rate of page delivery from the storage layer to the buffer manager.

use scanshare_common::sync::Mutex;

use scanshare_common::{Bandwidth, VirtualDuration, VirtualInstant};

use crate::stats::IoStats;

#[derive(Debug)]
struct DeviceState {
    busy_until: VirtualInstant,
    stats: IoStats,
}

/// A shared, bandwidth-limited sequential I/O device.
#[derive(Debug)]
pub struct IoDevice {
    bandwidth: Bandwidth,
    request_latency: VirtualDuration,
    state: Mutex<DeviceState>,
}

impl IoDevice {
    /// Creates a device with the given bandwidth and fixed per-request
    /// latency.
    pub fn new(bandwidth: Bandwidth, request_latency: VirtualDuration) -> Self {
        Self {
            bandwidth,
            request_latency,
            state: Mutex::new(DeviceState {
                busy_until: VirtualInstant::EPOCH,
                stats: IoStats::default(),
            }),
        }
    }

    /// The configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The configured per-request latency.
    pub fn request_latency(&self) -> VirtualDuration {
        self.request_latency
    }

    /// Submits a read of `bytes` bytes at virtual time `now` and returns the
    /// completion time. Requests are served in submission order; a request
    /// issued while the device is busy starts when the device frees up.
    pub fn submit(&self, now: VirtualInstant, bytes: u64) -> VirtualInstant {
        let mut state = self.state.lock();
        let start = if state.busy_until > now {
            state.busy_until
        } else {
            now
        };
        let service = self.request_latency + self.bandwidth.transfer_time(bytes);
        let done = start.after(service);
        state.busy_until = done;
        state.stats.record_read(bytes);
        done
    }

    /// Submits a read of `pages` pages of `page_size` bytes each, as one
    /// sequential request (used for chunk loads, which preserve sequential
    /// locality at the page level).
    pub fn submit_pages(&self, now: VirtualInstant, pages: u64, page_size: u64) -> VirtualInstant {
        if pages == 0 {
            return now;
        }
        let mut state = self.state.lock();
        let start = if state.busy_until > now {
            state.busy_until
        } else {
            now
        };
        let service = self.request_latency + self.bandwidth.transfer_time(pages * page_size);
        let done = start.after(service);
        state.busy_until = done;
        state.stats.record_pages(pages, page_size);
        done
    }

    /// The time at which the device becomes idle.
    pub fn busy_until(&self) -> VirtualInstant {
        self.state.lock().busy_until
    }

    /// Whether the device would be idle at `now`.
    pub fn is_idle_at(&self, now: VirtualInstant) -> bool {
        self.state.lock().busy_until <= now
    }

    /// Snapshot of the accumulated I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Resets the statistics (the busy horizon is kept).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(mb_per_sec: f64) -> IoDevice {
        IoDevice::new(
            Bandwidth::from_mb_per_sec(mb_per_sec),
            VirtualDuration::from_micros(100),
        )
    }

    #[test]
    fn single_request_takes_latency_plus_transfer() {
        let dev = device(100.0); // 100 MB/s
        let done = dev.submit(VirtualInstant::EPOCH, 1_000_000); // 1 MB
                                                                 // 100us latency + 10ms transfer
        assert_eq!(done.as_nanos(), 100_000 + 10_000_000);
        assert_eq!(dev.stats().bytes_read, 1_000_000);
        assert_eq!(dev.stats().requests, 1);
    }

    #[test]
    fn queued_requests_serialize() {
        let dev = device(100.0);
        let first = dev.submit(VirtualInstant::EPOCH, 1_000_000);
        let second = dev.submit(VirtualInstant::EPOCH, 1_000_000);
        assert!(second > first);
        assert_eq!(second.as_nanos(), 2 * first.as_nanos());
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let dev = device(100.0);
        let first = dev.submit(VirtualInstant::EPOCH, 1_000_000);
        // Submit long after the device went idle: starts immediately.
        let later = first.after(VirtualDuration::from_secs(1));
        let second = dev.submit(later, 1_000_000);
        assert_eq!(second.since(later), first.since(VirtualInstant::EPOCH));
    }

    #[test]
    fn faster_bandwidth_means_shorter_transfers() {
        let slow = device(200.0);
        let fast = device(2000.0);
        let t_slow = slow.submit(VirtualInstant::EPOCH, 10_000_000);
        let t_fast = fast.submit(VirtualInstant::EPOCH, 10_000_000);
        assert!(t_fast < t_slow);
    }

    #[test]
    fn submit_pages_accounts_pages_and_bytes() {
        let dev = device(700.0);
        let done = dev.submit_pages(VirtualInstant::EPOCH, 16, 256 * 1024);
        assert!(done > VirtualInstant::EPOCH);
        let stats = dev.stats();
        assert_eq!(stats.pages_read, 16);
        assert_eq!(stats.bytes_read, 16 * 256 * 1024);
        assert_eq!(stats.requests, 1);
        // Zero pages is a no-op.
        let t = dev.submit_pages(VirtualInstant::EPOCH, 0, 256 * 1024);
        assert_eq!(t, VirtualInstant::EPOCH);
        assert_eq!(dev.stats().requests, 1);
    }

    #[test]
    fn busy_until_and_reset_stats() {
        let dev = device(100.0);
        assert!(dev.is_idle_at(VirtualInstant::EPOCH));
        let done = dev.submit(VirtualInstant::EPOCH, 500_000);
        assert_eq!(dev.busy_until(), done);
        assert!(!dev.is_idle_at(VirtualInstant::EPOCH));
        assert!(dev.is_idle_at(done));
        dev.reset_stats();
        assert_eq!(dev.stats().bytes_read, 0);
        assert_eq!(dev.busy_until(), done, "reset_stats keeps the busy horizon");
    }
}
