//! A fault-injecting [`BlockDevice`] wrapper for failure testing.
//!
//! [`FaultInjectingDevice`] wraps any device and injects scripted failures
//! at chosen request indices: hard I/O errors, short reads, and transient
//! `EINTR`-style faults that a real device would retry internally. It exists
//! so integration tests can prove that device errors surface as typed
//! [`Error::Io`] values on the stream that hit them — instead of panicking,
//! corrupting accounting, or wedging in-flight completions.

use std::collections::HashMap;
use std::sync::Arc;

use scanshare_common::sync::Mutex;
use scanshare_common::{Error, Result, VirtualInstant};

use crate::block::{BlockDevice, ReadSpec};
use crate::device::IoCompletion;
use crate::stats::{IoLatency, IoStats};

/// What kind of failure to inject at a request index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The read returns fewer bytes than requested and cannot make progress:
    /// surfaced as a typed error.
    ShortRead,
    /// The read fails `failures` times with an interrupted-call error that
    /// the device retries internally, then succeeds. Proves transient faults
    /// don't surface and don't wedge the request.
    Transient {
        /// How many interrupted attempts precede the success.
        failures: u32,
    },
    /// A hard, non-retryable I/O error (`EIO`).
    HardError,
}

#[derive(Debug, Default)]
struct FaultState {
    seen: u64,
    faults: HashMap<u64, FaultKind>,
    fail_all_after: Option<u64>,
    injected: u64,
    retries_injected: u64,
}

/// A [`BlockDevice`] wrapper injecting scripted faults by request index.
///
/// Requests are counted across both kinds in submission order; with the
/// default configuration (no prefetching) every request is a demand read, so
/// indices are deterministic for a given workload.
#[derive(Debug)]
pub struct FaultInjectingDevice {
    inner: Arc<dyn BlockDevice>,
    state: Mutex<FaultState>,
}

impl FaultInjectingDevice {
    /// Wraps `inner` with an empty fault script (transparent until faults
    /// are added).
    pub fn new(inner: Arc<dyn BlockDevice>) -> Self {
        Self {
            inner,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Injects `fault` at the request with 0-based submission index `index`.
    pub fn with_fault(self, index: u64, fault: FaultKind) -> Self {
        self.state.lock().faults.insert(index, fault);
        self
    }

    /// Makes every request from index `n` onwards fail hard (a device that
    /// died mid-workload).
    pub fn with_fail_all_after(self, n: u64) -> Self {
        self.state.lock().fail_all_after = Some(n);
        self
    }

    /// Total requests submitted through the wrapper.
    pub fn requests_seen(&self) -> u64 {
        self.state.lock().seen
    }

    /// Faults injected so far (transient faults count once).
    pub fn injected_faults(&self) -> u64 {
        self.state.lock().injected
    }

    /// Individual interrupted attempts injected by transient faults.
    pub fn retries_injected(&self) -> u64 {
        self.state.lock().retries_injected
    }
}

impl BlockDevice for FaultInjectingDevice {
    fn submit_read(&self, now: VirtualInstant, spec: ReadSpec<'_>) -> Result<IoCompletion> {
        let fault = {
            let mut state = self.state.lock();
            let index = state.seen;
            state.seen += 1;
            let fault = state
                .faults
                .get(&index)
                .copied()
                .or(match state.fail_all_after {
                    Some(n) if index >= n => Some(FaultKind::HardError),
                    _ => None,
                });
            match fault {
                Some(FaultKind::Transient { failures }) => {
                    state.injected += 1;
                    state.retries_injected += u64::from(failures);
                }
                Some(_) => state.injected += 1,
                None => {}
            }
            fault
        };
        match fault {
            Some(FaultKind::ShortRead) => Err(Error::io(format!(
                "short read: got {} of {} bytes",
                spec.bytes / 2,
                spec.bytes
            ))),
            Some(FaultKind::HardError) => {
                Err(Error::io("injected hard I/O error (EIO)".to_string()))
            }
            // Transient faults are retried inside the device (mirroring the
            // file device's EINTR loop) and then served normally.
            Some(FaultKind::Transient { .. }) | None => self.inner.submit_read(now, spec),
        }
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn busy_until(&self) -> VirtualInstant {
        self.inner.busy_until()
    }

    fn name(&self) -> &'static str {
        "fault-injecting"
    }

    fn latency(&self) -> Option<IoLatency> {
        self.inner.latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::IoDevice;
    use crate::stats::IoKind;
    use scanshare_common::{Bandwidth, VirtualDuration};

    fn wrapped() -> (Arc<dyn BlockDevice>, FaultInjectingDevice) {
        let inner: Arc<dyn BlockDevice> = Arc::new(IoDevice::new(
            Bandwidth::from_mb_per_sec(100.0),
            VirtualDuration::from_micros(100),
        ));
        (Arc::clone(&inner), FaultInjectingDevice::new(inner))
    }

    fn read(dev: &FaultInjectingDevice) -> Result<IoCompletion> {
        dev.submit_read(
            VirtualInstant::EPOCH,
            ReadSpec::accounting(4096, IoKind::Demand),
        )
    }

    #[test]
    fn scripted_faults_fire_at_their_index() {
        let (_, dev) = wrapped();
        let dev = dev
            .with_fault(1, FaultKind::ShortRead)
            .with_fault(3, FaultKind::HardError);
        assert!(read(&dev).is_ok());
        let short = read(&dev).unwrap_err();
        assert!(short.to_string().contains("short read"));
        assert!(read(&dev).is_ok());
        let hard = read(&dev).unwrap_err();
        assert!(matches!(hard, Error::Io(_)));
        assert_eq!(dev.requests_seen(), 4);
        assert_eq!(dev.injected_faults(), 2);
    }

    #[test]
    fn transient_faults_are_retried_not_surfaced() {
        let (inner, dev) = wrapped();
        let dev = dev.with_fault(0, FaultKind::Transient { failures: 3 });
        let completion = read(&dev).unwrap();
        assert_eq!(completion.bytes, 4096);
        assert_eq!(dev.retries_injected(), 3);
        // The request still reached the inner device exactly once.
        assert_eq!(inner.stats().demand_requests, 1);
    }

    #[test]
    fn fail_all_after_kills_the_tail() {
        let (_, dev) = wrapped();
        let dev = dev.with_fail_all_after(2);
        assert!(read(&dev).is_ok());
        assert!(read(&dev).is_ok());
        assert!(read(&dev).is_err());
        assert!(read(&dev).is_err());
    }

    #[test]
    fn stats_and_accounting_pass_through() {
        let (inner, dev) = wrapped();
        read(&dev).unwrap();
        assert_eq!(dev.stats(), inner.stats());
        assert_eq!(dev.busy_until(), inner.busy_until());
        dev.reset_stats();
        assert_eq!(inner.stats(), IoStats::default());
    }
}
