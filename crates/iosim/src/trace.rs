//! Page-reference traces.
//!
//! To evaluate OPT, the paper gathers a trace of all page references made in
//! a PBM run and feeds it to an OPT simulator. [`ReferenceTrace`] is that
//! trace: an append-only sequence of page references, optionally tagged with
//! the scan that issued them.

use scanshare_common::sync::Mutex;

use scanshare_common::{PageId, ScanId};

use crate::stats::IoKind;

/// One recorded page reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// The referenced page.
    pub page: PageId,
    /// The scan that referenced it, if known.
    pub scan: Option<ScanId>,
    /// Whether the reference was a demand access or a speculative prefetch
    /// admission. Only demand references form the OPT reference string.
    pub kind: IoKind,
}

/// A thread-safe, append-only page-reference trace.
#[derive(Debug, Default)]
pub struct ReferenceTrace {
    refs: Mutex<Vec<Reference>>,
}

impl ReferenceTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a demand reference to `page` by `scan`.
    pub fn record(&self, page: PageId, scan: Option<ScanId>) {
        self.refs.lock().push(Reference {
            page,
            scan,
            kind: IoKind::Demand,
        });
    }

    /// Records a speculative prefetch admission of `page`. Prefetches are
    /// kept out of [`ReferenceTrace::pages`] so that an OPT replay of the
    /// trace still sees exactly the pages the scans consumed, in consumption
    /// order — the paper's trace methodology.
    pub fn record_prefetch(&self, page: PageId) {
        self.refs.lock().push(Reference {
            page,
            scan: None,
            kind: IoKind::Prefetch,
        });
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.refs.lock().len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.lock().is_empty()
    }

    /// Returns a copy of the recorded references, in order.
    pub fn snapshot(&self) -> Vec<Reference> {
        self.refs.lock().clone()
    }

    /// Returns the page ids of the *demand* references, in reference order —
    /// the reference string an OPT replay consumes.
    pub fn pages(&self) -> Vec<PageId> {
        self.refs
            .lock()
            .iter()
            .filter(|r| r.kind == IoKind::Demand)
            .map(|r| r.page)
            .collect()
    }

    /// Number of distinct pages referenced.
    pub fn distinct_pages(&self) -> usize {
        let mut pages = self.pages();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Clears the trace.
    pub fn clear(&self) {
        self.refs.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_preserve_order() {
        let trace = ReferenceTrace::new();
        assert!(trace.is_empty());
        trace.record(PageId::new(3), Some(ScanId::new(1)));
        trace.record(PageId::new(1), None);
        trace.record(PageId::new(3), Some(ScanId::new(2)));
        assert_eq!(trace.len(), 3);
        assert_eq!(
            trace.pages(),
            vec![PageId::new(3), PageId::new(1), PageId::new(3)]
        );
        assert_eq!(trace.distinct_pages(), 2);
        let snap = trace.snapshot();
        assert_eq!(snap[0].scan, Some(ScanId::new(1)));
        assert_eq!(snap[1].scan, None);
        trace.clear();
        assert!(trace.is_empty());
    }

    #[test]
    fn prefetch_references_stay_out_of_the_opt_string() {
        let trace = ReferenceTrace::new();
        trace.record(PageId::new(1), None);
        trace.record_prefetch(PageId::new(2));
        trace.record(PageId::new(2), None);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.pages(), vec![PageId::new(1), PageId::new(2)]);
        let snap = trace.snapshot();
        assert_eq!(snap[1].kind, IoKind::Prefetch);
        assert_eq!(snap[2].kind, IoKind::Demand);
    }

    #[test]
    fn trace_is_thread_safe() {
        use std::sync::Arc;
        let trace = Arc::new(ReferenceTrace::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tr = Arc::clone(&trace);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tr.record(PageId::new(t * 1000 + i), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(trace.len(), 400);
        assert_eq!(trace.distinct_pages(), 400);
    }
}
