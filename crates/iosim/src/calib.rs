//! Fitting the simulator's device model to a measured device.
//!
//! The simulated [`IoDevice`](crate::IoDevice) models a request as a fixed
//! per-request latency `L` plus `bytes / B` of transfer time. Calibration
//! issues a batch of sequential demand reads of varying sizes through any
//! [`BlockDevice`], observes each request's service time and fits `(L, B)`
//! by ordinary least squares on `service = L + bytes / B`. The resulting
//! [`CalibrationReport`] carries the fitted parameters plus the mean
//! relative fit error, so a simulated twin of a real disk is one
//! `IoDevice::new(report.bandwidth, report.request_latency)` away — and the
//! fit error says how well the linear model describes the hardware.
//!
//! Run against the simulated device itself the fit recovers the configured
//! parameters with near-zero error, which is the self-test in this module.

use scanshare_common::{Bandwidth, Error, PageId, Result, VirtualDuration};

use crate::block::{BlockDevice, ReadSpec};
use crate::stats::IoKind;

/// The outcome of fitting the simulator's `L + bytes/B` request model to a
/// measured device.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationReport {
    /// Fitted sequential bandwidth `B`.
    pub bandwidth: Bandwidth,
    /// Fitted fixed per-request latency `L`.
    pub request_latency: VirtualDuration,
    /// Mean relative error of the fit: `mean(|predicted - observed| /
    /// observed)` over the fastest service time per request size. `0.1`
    /// means the linear model is within 10% of the measured device on
    /// average.
    pub fit_error: f64,
    /// Number of probe requests behind the fit (before the per-size median
    /// aggregation).
    pub samples: usize,
}

/// Issues one sequential demand read per batch of pages and fits the device
/// model to the observed service times.
///
/// The batches should span a range of sizes (say 1 to 32 pages) so the fit
/// can separate the fixed latency from the bandwidth term; repeating each
/// size several times suppresses measurement noise on a real device (the
/// fit runs over the fastest observed service time per distinct size). On
/// the simulated device `targets` are ignored and only the byte counts
/// matter; on the file device each batch must name real pages of the backing
/// store.
pub fn calibrate_with_batches(
    device: &dyn BlockDevice,
    page_size: u64,
    batches: &[Vec<PageId>],
) -> Result<CalibrationReport> {
    if batches.iter().filter(|b| !b.is_empty()).count() < 2 {
        return Err(Error::config(
            "calibration needs at least two non-empty probe batches",
        ));
    }
    // Serialize the probes: each is submitted at the previous completion, so
    // queue waits are zero and the observed service time is the pure request
    // cost.
    let mut now = device.busy_until();
    let mut samples: Vec<(u64, u64)> = Vec::with_capacity(batches.len());
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let completion =
            device.submit_read(now, ReadSpec::for_pages(batch, page_size, IoKind::Demand))?;
        let service = completion.done_at.since(completion.started_at).as_nanos();
        if service > 0 && completion.bytes > 0 {
            samples.push((completion.bytes, service));
        }
        now = completion.done_at;
    }
    if samples.len() < 2 {
        return Err(Error::io(
            "calibration probes produced fewer than two usable samples",
        ));
    }
    let raw_samples = samples.len();

    // Aggregate repeated probes of the same size to their *fastest* service
    // time before fitting: a descheduled worker or cache hiccup only ever
    // adds time, so the minimum is the least-disturbed observation of the
    // request's true cost — and the model is meant to describe the device,
    // not the scheduler's worst case.
    let samples = min_by_size(samples);
    if samples.len() < 2 {
        return Err(Error::config(
            "calibration needs probes of at least two distinct sizes",
        ));
    }

    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
    let mean_y = samples.iter().map(|&(_, y)| y as f64).sum::<f64>() / n;
    let var_x = samples
        .iter()
        .map(|&(x, _)| (x as f64 - mean_x).powi(2))
        .sum::<f64>();
    let cov_xy = samples
        .iter()
        .map(|&(x, y)| (x as f64 - mean_x) * (y as f64 - mean_y))
        .sum::<f64>();

    // slope: nanoseconds per byte; intercept: nanoseconds.
    let (slope, intercept) = if var_x > 0.0 && cov_xy > 0.0 {
        let slope = cov_xy / var_x;
        (slope, (mean_y - slope * mean_x).max(0.0))
    } else {
        // Degenerate fit (identical sizes, or larger reads measured no
        // slower, e.g. everything served from the OS page cache at memory
        // speed): fall back to the aggregate rate with zero fixed latency.
        (mean_y / mean_x, 0.0)
    };

    let bytes_per_sec = 1e9 / slope;
    let predicted = |bytes: u64| intercept + slope * bytes as f64;
    let fit_error = samples
        .iter()
        .map(|&(x, y)| (predicted(x) - y as f64).abs() / y as f64)
        .sum::<f64>()
        / n;

    Ok(CalibrationReport {
        bandwidth: Bandwidth::from_bytes_per_sec(bytes_per_sec),
        request_latency: VirtualDuration::from_nanos(intercept.round() as u64),
        fit_error,
        samples: raw_samples,
    })
}

/// Collapses `(bytes, service)` samples to one `(bytes, fastest service)`
/// point per distinct request size, in ascending size order.
fn min_by_size(samples: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut by_size: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (bytes, service) in samples {
        by_size
            .entry(bytes)
            .and_modify(|fastest| *fastest = (*fastest).min(service))
            .or_insert(service);
    }
    by_size.into_iter().collect()
}

/// Builds the standard probe plan: batch sizes `1, 2, 4, ..., 2^(sizes-1)`
/// pages, each repeated `reps` times, drawn round-robin from `pages` (which
/// should cover a sequential region of a real table so the probes read real
/// data on a file device).
pub fn probe_batches(pages: &[PageId], sizes: u32, reps: usize) -> Vec<Vec<PageId>> {
    let mut batches = Vec::new();
    if pages.is_empty() {
        return batches;
    }
    let mut cursor = 0usize;
    for exp in 0..sizes {
        let len = 1usize << exp;
        for _ in 0..reps {
            let batch: Vec<PageId> = (0..len)
                .map(|i| pages[(cursor + i) % pages.len()])
                .collect();
            cursor = (cursor + len) % pages.len();
            batches.push(batch);
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::IoDevice;

    #[test]
    fn fit_recovers_the_sim_device_parameters_exactly() {
        let device = IoDevice::new(
            Bandwidth::from_mb_per_sec(100.0),
            VirtualDuration::from_micros(100),
        );
        let pages: Vec<PageId> = (0..64).map(PageId::new).collect();
        let batches = probe_batches(&pages, 6, 2);
        let report = calibrate_with_batches(&device, 64 * 1024, &batches).unwrap();
        assert!(
            report.fit_error < 1e-3,
            "sim device is the model itself, fit error {}",
            report.fit_error
        );
        let mb = report.bandwidth.mb_per_sec();
        assert!((mb - 100.0).abs() < 1.0, "fitted bandwidth {mb} MB/s");
        let lat_us = report.request_latency.as_nanos() as f64 / 1e3;
        assert!((lat_us - 100.0).abs() < 5.0, "fitted latency {lat_us} us");
        assert_eq!(report.samples, batches.len());
    }

    #[test]
    fn too_few_batches_is_rejected() {
        let device = IoDevice::new(
            Bandwidth::from_mb_per_sec(100.0),
            VirtualDuration::from_micros(100),
        );
        let err = calibrate_with_batches(&device, 4096, &[vec![PageId::new(0)]]).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn probe_plan_doubles_sizes_and_repeats() {
        let pages: Vec<PageId> = (0..8).map(PageId::new).collect();
        let batches = probe_batches(&pages, 3, 2);
        let sizes: Vec<usize> = batches.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![1, 1, 2, 2, 4, 4]);
        assert!(probe_batches(&[], 3, 2).is_empty());
    }
}
