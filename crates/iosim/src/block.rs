//! The device abstraction shared by the simulated and real I/O backends.
//!
//! [`BlockDevice`] lifts the surface of the concrete [`IoDevice`] — demand
//! and prefetch submission, [`IoCompletion`] handles, [`IoStats`] — into an
//! object-safe trait so the engine, the scan backends and the workload
//! driver are written once and run against either the discrete-event
//! simulated device or the real [`FileIoDevice`](crate::file::FileIoDevice).
//!
//! The one semantic extension over the concrete device is that submission is
//! *fallible*: the simulated device never fails, but a real device can (and
//! the fault-injection wrapper does on purpose), so every submission returns
//! a `Result` and the callers surface typed errors instead of panicking.

use scanshare_common::{PageId, Result, VirtualInstant};

use crate::device::{IoCompletion, IoDevice};
use crate::stats::{IoKind, IoLatency, IoStats};

/// One read request handed to a [`BlockDevice`].
///
/// `targets` names the pages the request covers so a real device can issue
/// the corresponding positional reads; the simulated device ignores them and
/// charges `bytes` of virtual transfer time. An empty target list is an
/// *accounting-only* read: the simulated device behaves identically, a real
/// device completes it without touching storage.
#[derive(Debug, Clone, Copy)]
pub struct ReadSpec<'a> {
    /// Bytes the request transfers (what the simulated device charges and
    /// what [`IoStats`] accounts when no real read happens).
    pub bytes: u64,
    /// Pages the request covers, for page accounting.
    pub pages: u64,
    /// Demand or prefetch.
    pub kind: IoKind,
    /// The pages a real device should actually read.
    pub targets: &'a [PageId],
}

impl<'a> ReadSpec<'a> {
    /// A request over concrete pages: `targets.len()` pages of `page_size`
    /// bytes each, read as one sequential request.
    pub fn for_pages(targets: &'a [PageId], page_size: u64, kind: IoKind) -> Self {
        Self {
            bytes: targets.len() as u64 * page_size,
            pages: targets.len() as u64,
            kind,
            targets,
        }
    }

    /// An accounting-only request of `bytes` bytes with no page targets
    /// (used where only the transfer cost matters, e.g. calibration probes
    /// on the simulated device).
    pub fn accounting(bytes: u64, kind: IoKind) -> ReadSpec<'static> {
        ReadSpec {
            bytes,
            pages: 0,
            kind,
            targets: &[],
        }
    }
}

/// An I/O device serving page reads: either the bandwidth-limited simulated
/// device ([`IoDevice`]) or a real file-backed one
/// ([`FileIoDevice`](crate::file::FileIoDevice)).
///
/// All completion times are expressed in virtual time. The simulated device
/// computes them from its bandwidth/latency model; the file device measures
/// wall-clock durations and mirrors them onto the virtual timeline starting
/// at the submission instant, so the engine's virtual-time accounting keeps
/// working unchanged on real hardware.
pub trait BlockDevice: Send + Sync + std::fmt::Debug {
    /// Submits a read without blocking virtual time, returning a completion
    /// handle (for demand reads on a real device the call blocks the OS
    /// thread until the data is on its way to the page cache, but virtual
    /// time only advances when the caller waits on `done_at`).
    fn submit_read(&self, now: VirtualInstant, spec: ReadSpec<'_>) -> Result<IoCompletion>;

    /// Snapshot of the accumulated I/O statistics.
    fn stats(&self) -> IoStats;

    /// Resets the statistics (any busy horizon is kept).
    fn reset_stats(&self);

    /// The time at which the device becomes idle.
    fn busy_until(&self) -> VirtualInstant;

    /// Whether the device would be idle at `now`.
    fn is_idle_at(&self, now: VirtualInstant) -> bool {
        self.busy_until() <= now
    }

    /// Short device name for reports ("sim", "file", ...).
    fn name(&self) -> &'static str;

    /// Wall-clock latency percentiles, for devices that measure them (the
    /// simulated device returns `None`).
    fn latency(&self) -> Option<IoLatency> {
        None
    }
}

impl BlockDevice for IoDevice {
    fn submit_read(&self, now: VirtualInstant, spec: ReadSpec<'_>) -> Result<IoCompletion> {
        Ok(self.submit_internal(now, spec.bytes, spec.pages, spec.kind))
    }

    fn stats(&self) -> IoStats {
        IoDevice::stats(self)
    }

    fn reset_stats(&self) {
        IoDevice::reset_stats(self)
    }

    fn busy_until(&self) -> VirtualInstant {
        IoDevice::busy_until(self)
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanshare_common::{Bandwidth, VirtualDuration};

    fn device() -> IoDevice {
        IoDevice::new(
            Bandwidth::from_mb_per_sec(100.0),
            VirtualDuration::from_micros(100),
        )
    }

    #[test]
    fn trait_submission_matches_the_inherent_device_model() {
        let a = device();
        let b = device();
        let pages = [PageId::new(1), PageId::new(2)];
        let via_trait = BlockDevice::submit_read(
            &a,
            VirtualInstant::EPOCH,
            ReadSpec::for_pages(&pages, 500_000, IoKind::Demand),
        )
        .unwrap();
        let inherent_done = b.submit_pages(VirtualInstant::EPOCH, 2, 500_000);
        assert_eq!(via_trait.done_at, inherent_done);
        assert_eq!(BlockDevice::stats(&a), b.stats());
        assert_eq!(a.stats().pages_read, 2);
    }

    #[test]
    fn trait_object_is_usable_and_never_fails_on_sim() {
        let dev: std::sync::Arc<dyn BlockDevice> = std::sync::Arc::new(device());
        assert_eq!(dev.name(), "sim");
        assert!(dev.latency().is_none());
        assert!(dev.is_idle_at(VirtualInstant::EPOCH));
        let c = dev
            .submit_read(
                VirtualInstant::EPOCH,
                ReadSpec::accounting(1_000_000, IoKind::Prefetch),
            )
            .unwrap();
        assert_eq!(c.done_at.as_nanos(), 100_000 + 10_000_000);
        assert_eq!(dev.stats().prefetch_bytes, 1_000_000);
        assert!(!dev.is_idle_at(VirtualInstant::EPOCH));
        dev.reset_stats();
        assert_eq!(dev.stats(), IoStats::default());
        assert_eq!(dev.busy_until(), c.done_at, "reset keeps the busy horizon");
    }
}
