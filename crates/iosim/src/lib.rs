//! Simulated I/O subsystem.
//!
//! The paper evaluates the buffer-management policies under I/O bandwidths
//! from 200 MB/s to 2 GB/s by artificially limiting the rate at which the
//! storage layer delivers pages. This crate provides the equivalent for the
//! reproduction: a bandwidth-limited [`IoDevice`] operating in virtual time,
//! I/O accounting ([`IoStats`]), and a [`ReferenceTrace`] recorder used to
//! replay page-reference traces under the OPT (Belady) oracle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod stats;
pub mod trace;

pub use device::{IoCompletion, IoDevice};
pub use stats::{IoKind, IoStats};
pub use trace::ReferenceTrace;
