//! The I/O subsystem: simulated and real devices behind one trait.
//!
//! The paper evaluates the buffer-management policies under I/O bandwidths
//! from 200 MB/s to 2 GB/s by artificially limiting the rate at which the
//! storage layer delivers pages. This crate provides the equivalent for the
//! reproduction — a bandwidth-limited [`IoDevice`] operating in virtual
//! time, I/O accounting ([`IoStats`]), and a [`ReferenceTrace`] recorder
//! used to replay page-reference traces under the OPT (Belady) oracle — plus
//! the pieces that connect the model to real hardware:
//!
//! - [`BlockDevice`], the object-safe trait both device families implement;
//! - [`FileIoDevice`], positional reads against on-disk column segments off
//!   a fixed worker pool with a bounded submission queue and wall-clock
//!   latency percentiles ([`IoLatency`]);
//! - [`calib::calibrate_with_batches`], which fits the simulator's
//!   bandwidth/latency parameters to a measured device and reports the fit
//!   error;
//! - [`FaultInjectingDevice`], a wrapper injecting scripted read failures
//!   for the failure-injection test suite.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod calib;
pub mod device;
pub mod fault;
pub mod file;
pub mod stats;
pub mod trace;

pub use block::{BlockDevice, ReadSpec};
pub use calib::{calibrate_with_batches, probe_batches, CalibrationReport};
pub use device::{IoCompletion, IoDevice};
pub use fault::{FaultInjectingDevice, FaultKind};
pub use file::{FileIoDevice, PageReader};
pub use stats::{IoKind, IoLatency, IoStats, LatencyPercentiles};
pub use trace::ReferenceTrace;
