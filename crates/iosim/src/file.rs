//! A real file-backed I/O device.
//!
//! [`FileIoDevice`] serves the same [`BlockDevice`] surface as the simulated
//! device, but each request performs positional `pread`-style reads against
//! on-disk column segments through a [`PageReader`] (implemented by the
//! storage layer's file store). Requests are executed by a fixed pool of
//! worker threads fed from a bounded submission queue: once `queue_depth`
//! requests are waiting, further submitters block until a slot frees up.
//!
//! Every request's wall-clock queue wait and service time are measured and
//! mirrored onto the virtual timeline relative to the submission instant, so
//! the engine's virtual-time accounting — and everything built on it, like
//! the prefetch window and the workload driver's virtual metrics — works
//! unchanged on real hardware. Per-request latencies are additionally kept
//! per [`IoKind`] and summarized as p50/p95/p99 percentiles
//! ([`IoLatency`]).
//!
//! Demand reads block the submitting OS thread until the worker finishes
//! (that is what "demand" means: the scan cannot proceed without the data)
//! and surface read failures as typed errors. Prefetch reads are fire-and-
//! forget: the submitter gets a completion whose `done_at` is an estimate
//! from an exponentially-weighted average of recent request latencies, and a
//! prefetch that fails is simply dropped — the page will be re-read (and the
//! error surfaced deterministically) by the demand read that eventually
//! needs it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, PoisonError};
use std::time::Instant;

use scanshare_common::sync::Mutex;
use scanshare_common::{Error, PageId, Result, VirtualDuration, VirtualInstant};

use crate::block::{BlockDevice, ReadSpec};
use crate::device::IoCompletion;
use crate::stats::{IoKind, IoLatency, IoStats, LatencyPercentiles};

/// Resolves a page id to backing storage and reads it.
///
/// Implemented by the storage layer's file store: a read locates the page's
/// (segment file, offset) slot, `pread`s it (optionally with `O_DIRECT`),
/// decodes it into the store's page cache and returns the number of bytes
/// read from disk. Keeping the trait here lets the device crate stay
/// independent of the storage crate.
pub trait PageReader: Send + Sync + std::fmt::Debug {
    /// Reads one page from backing storage, returning the bytes read.
    fn read_page(&self, page: PageId) -> std::io::Result<u64>;
}

/// Fallback `done_at` estimate for a prefetch submitted before any request
/// completed (no latency history yet): 200µs, the order of one page read
/// from a warm OS page cache.
const DEFAULT_PREFETCH_ESTIMATE_NANOS: u64 = 200_000;

/// How many times a worker retries a read that failed with
/// `ErrorKind::Interrupted` (EINTR) before giving up.
const EINTR_RETRIES: u32 = 8;

struct Job {
    targets: Vec<PageId>,
    bytes_hint: u64,
    pages: u64,
    kind: IoKind,
    enqueued: Instant,
    /// `Some` for demand reads (the submitter blocks on the reply), `None`
    /// for fire-and-forget prefetches.
    reply: Option<SyncSender<JobResult>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("pages", &self.pages)
            .field("kind", &self.kind)
            .finish()
    }
}

#[derive(Debug)]
struct JobResult {
    queue_wait_nanos: u64,
    service_nanos: u64,
    bytes: u64,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct SubmissionQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Debug)]
struct Metrics {
    stats: IoStats,
    busy_until: VirtualInstant,
    demand_latencies: Vec<u64>,
    prefetch_latencies: Vec<u64>,
    prefetch_errors: u64,
}

#[derive(Debug)]
struct Shared {
    reader: Arc<dyn PageReader>,
    queue_depth: usize,
    queue: Mutex<SubmissionQueue>,
    job_ready: Condvar,
    slot_free: Condvar,
    metrics: Mutex<Metrics>,
    /// EWMA of recent total request latencies (queue wait + service), used
    /// to estimate prefetch completion times.
    ewma_latency_nanos: AtomicU64,
}

/// A [`BlockDevice`] reading real files through a fixed worker pool.
#[derive(Debug)]
pub struct FileIoDevice {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl FileIoDevice {
    /// Creates a device with `workers` reader threads and a submission queue
    /// bounded at `queue_depth` outstanding requests.
    pub fn new(reader: Arc<dyn PageReader>, workers: usize, queue_depth: usize) -> Self {
        assert!(workers >= 1, "the worker pool needs at least one thread");
        assert!(queue_depth >= 1, "the submission queue needs capacity");
        let shared = Arc::new(Shared {
            reader,
            queue_depth,
            queue: Mutex::new(SubmissionQueue::default()),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
            metrics: Mutex::new(Metrics {
                stats: IoStats::default(),
                busy_until: VirtualInstant::EPOCH,
                demand_latencies: Vec::new(),
                prefetch_latencies: Vec::new(),
                prefetch_errors: 0,
            }),
            ewma_latency_nanos: AtomicU64::new(0),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fileio-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning an I/O worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of the bounded submission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth
    }

    /// Prefetch reads that failed and were dropped (the demand path
    /// re-surfaces the error when the page is actually needed).
    pub fn prefetch_errors(&self) -> u64 {
        self.shared.metrics.lock().prefetch_errors
    }

    /// Enqueues a job, blocking while the submission queue is full.
    fn enqueue(&self, job: Job) -> Result<()> {
        let mut queue = self.shared.queue.lock();
        loop {
            if queue.shutdown {
                return Err(Error::io("file I/O worker pool is shut down"));
            }
            if queue.jobs.len() < self.shared.queue_depth {
                queue.jobs.push_back(job);
                self.shared.job_ready.notify_one();
                return Ok(());
            }
            queue = self
                .shared
                .slot_free
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for FileIoDevice {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn read_page_retrying(reader: &dyn PageReader, page: PageId) -> std::io::Result<u64> {
    let mut attempts = 0;
    loop {
        match reader.read_page(page) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted && attempts < EINTR_RETRIES => {
                attempts += 1;
            }
            other => return other,
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    shared.slot_free.notify_one();
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        let queue_wait = job.enqueued.elapsed();
        let start = Instant::now();
        let mut bytes = 0u64;
        let mut error = None;
        if job.targets.is_empty() {
            // Accounting-only request: nothing to read, charge the hint.
            bytes = job.bytes_hint;
        } else {
            for &page in &job.targets {
                match read_page_retrying(&*shared.reader, page) {
                    Ok(n) => bytes += n,
                    Err(e) => {
                        error = Some(format!("reading page {page}: {e}"));
                        break;
                    }
                }
            }
        }
        let service = start.elapsed();

        let queue_wait_nanos = queue_wait.as_nanos() as u64;
        let service_nanos = (service.as_nanos() as u64).max(1);
        let total = queue_wait_nanos + service_nanos;
        // EWMA with alpha = 1/4; seeds with the first observation.
        let _ =
            shared
                .ewma_latency_nanos
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |prev| {
                    Some(if prev == 0 {
                        total
                    } else {
                        prev - prev / 4 + total / 4
                    })
                });

        match job.reply {
            // Demand: the blocked submitter records metrics (it also needs
            // the timings to build its completion handle).
            Some(reply) => {
                let _ = reply.send(JobResult {
                    queue_wait_nanos,
                    service_nanos,
                    bytes,
                    error,
                });
            }
            // Prefetch: record here; failures are counted and dropped.
            None => {
                let mut metrics = shared.metrics.lock();
                if error.is_none() {
                    metrics.stats.record_request(
                        job.kind,
                        bytes,
                        VirtualDuration::from_nanos(queue_wait_nanos),
                        VirtualDuration::from_nanos(service_nanos),
                    );
                    metrics.stats.pages_read += job.pages;
                    metrics.prefetch_latencies.push(total);
                } else {
                    metrics.prefetch_errors += 1;
                }
            }
        }
    }
}

impl BlockDevice for FileIoDevice {
    fn submit_read(&self, now: VirtualInstant, spec: ReadSpec<'_>) -> Result<IoCompletion> {
        match spec.kind {
            IoKind::Demand => {
                let (reply, result) = std::sync::mpsc::sync_channel(1);
                self.enqueue(Job {
                    targets: spec.targets.to_vec(),
                    bytes_hint: spec.bytes,
                    pages: spec.pages,
                    kind: spec.kind,
                    enqueued: Instant::now(),
                    reply: Some(reply),
                })?;
                let result = result
                    .recv()
                    .map_err(|_| Error::io("file I/O worker pool is shut down"))?;
                if let Some(message) = result.error {
                    return Err(Error::io(message));
                }
                let queue_wait = VirtualDuration::from_nanos(result.queue_wait_nanos);
                let service = VirtualDuration::from_nanos(result.service_nanos);
                let started_at = now.after(queue_wait);
                let done_at = started_at.after(service);
                let mut metrics = self.shared.metrics.lock();
                metrics
                    .stats
                    .record_request(spec.kind, result.bytes, queue_wait, service);
                metrics.stats.pages_read += spec.pages;
                metrics
                    .demand_latencies
                    .push(result.queue_wait_nanos + result.service_nanos);
                if done_at > metrics.busy_until {
                    metrics.busy_until = done_at;
                }
                Ok(IoCompletion {
                    submitted_at: now,
                    started_at,
                    done_at,
                    bytes: result.bytes,
                    kind: spec.kind,
                })
            }
            IoKind::Prefetch => {
                self.enqueue(Job {
                    targets: spec.targets.to_vec(),
                    bytes_hint: spec.bytes,
                    pages: spec.pages,
                    kind: spec.kind,
                    enqueued: Instant::now(),
                    reply: None,
                })?;
                let estimate = self.shared.ewma_latency_nanos.load(Ordering::Acquire);
                let estimate = if estimate == 0 {
                    DEFAULT_PREFETCH_ESTIMATE_NANOS
                } else {
                    estimate
                };
                Ok(IoCompletion {
                    submitted_at: now,
                    started_at: now,
                    done_at: now.after(VirtualDuration::from_nanos(estimate)),
                    bytes: spec.bytes,
                    kind: spec.kind,
                })
            }
        }
    }

    fn stats(&self) -> IoStats {
        self.shared.metrics.lock().stats
    }

    fn reset_stats(&self) {
        let mut metrics = self.shared.metrics.lock();
        metrics.stats = IoStats::default();
        metrics.demand_latencies.clear();
        metrics.prefetch_latencies.clear();
        metrics.prefetch_errors = 0;
    }

    fn busy_until(&self) -> VirtualInstant {
        self.shared.metrics.lock().busy_until
    }

    fn name(&self) -> &'static str {
        "file"
    }

    fn latency(&self) -> Option<IoLatency> {
        let metrics = self.shared.metrics.lock();
        Some(IoLatency {
            demand: LatencyPercentiles::from_unsorted_nanos(metrics.demand_latencies.clone()),
            prefetch: LatencyPercentiles::from_unsorted_nanos(metrics.prefetch_latencies.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that serves `page_bytes` per page, optionally failing a
    /// configured page id.
    #[derive(Debug)]
    struct MockReader {
        page_bytes: u64,
        fail_page: Option<PageId>,
        eintr_budget: Mutex<u32>,
        reads: AtomicU64,
    }

    impl MockReader {
        fn new(page_bytes: u64) -> Self {
            Self {
                page_bytes,
                fail_page: None,
                eintr_budget: Mutex::new(0),
                reads: AtomicU64::new(0),
            }
        }
    }

    impl PageReader for MockReader {
        fn read_page(&self, page: PageId) -> std::io::Result<u64> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            {
                let mut budget = self.eintr_budget.lock();
                if *budget > 0 {
                    *budget -= 1;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "EINTR",
                    ));
                }
            }
            if self.fail_page == Some(page) {
                return Err(std::io::Error::other("injected EIO"));
            }
            Ok(self.page_bytes)
        }
    }

    fn pages(n: u64) -> Vec<PageId> {
        (0..n).map(PageId::new).collect()
    }

    #[test]
    fn demand_reads_complete_with_measured_wall_times() {
        let reader = Arc::new(MockReader::new(4096));
        let dev = FileIoDevice::new(Arc::clone(&reader) as Arc<dyn PageReader>, 2, 8);
        let targets = pages(3);
        let now = VirtualInstant::from_nanos(5_000);
        let c = dev
            .submit_read(now, ReadSpec::for_pages(&targets, 4096, IoKind::Demand))
            .unwrap();
        assert_eq!(c.bytes, 3 * 4096);
        assert_eq!(c.submitted_at, now);
        assert!(c.started_at >= c.submitted_at);
        assert!(c.done_at > c.started_at);
        let stats = BlockDevice::stats(&dev);
        assert_eq!(stats.demand_requests, 1);
        assert_eq!(stats.bytes_read, 3 * 4096);
        assert_eq!(stats.pages_read, 3);
        assert_eq!(reader.reads.load(Ordering::Relaxed), 3);
        let latency = dev.latency().unwrap();
        assert_eq!(latency.demand.samples, 1);
        assert!(latency.demand.p50_nanos > 0);
    }

    #[test]
    fn read_failures_surface_as_typed_errors() {
        let reader = Arc::new(MockReader {
            fail_page: Some(PageId::new(1)),
            ..MockReader::new(4096)
        });
        let dev = FileIoDevice::new(reader as Arc<dyn PageReader>, 1, 4);
        let targets = pages(3);
        let err = dev
            .submit_read(
                VirtualInstant::EPOCH,
                ReadSpec::for_pages(&targets, 4096, IoKind::Demand),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Io(_)));
        assert!(err.to_string().contains("injected EIO"));
        // The failed request is not counted as completed I/O.
        assert_eq!(BlockDevice::stats(&dev).demand_requests, 0);
    }

    #[test]
    fn eintr_is_retried_transparently() {
        let reader = Arc::new(MockReader {
            eintr_budget: Mutex::new(3),
            ..MockReader::new(1024)
        });
        let reads = {
            let dev = FileIoDevice::new(Arc::clone(&reader) as Arc<dyn PageReader>, 1, 4);
            let targets = pages(1);
            let c = dev
                .submit_read(
                    VirtualInstant::EPOCH,
                    ReadSpec::for_pages(&targets, 1024, IoKind::Demand),
                )
                .unwrap();
            assert_eq!(c.bytes, 1024);
            reader.reads.load(Ordering::Relaxed)
        };
        assert_eq!(reads, 4, "three EINTRs then one success");
    }

    #[test]
    fn prefetch_is_fire_and_forget_and_failures_are_dropped() {
        let reader = Arc::new(MockReader {
            fail_page: Some(PageId::new(0)),
            ..MockReader::new(4096)
        });
        let dev = FileIoDevice::new(reader as Arc<dyn PageReader>, 1, 4);
        let bad = [PageId::new(0)];
        let good = [PageId::new(7)];
        let c = dev
            .submit_read(
                VirtualInstant::EPOCH,
                ReadSpec::for_pages(&bad, 4096, IoKind::Prefetch),
            )
            .unwrap();
        assert!(c.done_at > VirtualInstant::EPOCH, "estimated completion");
        dev.submit_read(
            VirtualInstant::EPOCH,
            ReadSpec::for_pages(&good, 4096, IoKind::Prefetch),
        )
        .unwrap();
        // Drain the pool by issuing a demand read behind the prefetches.
        let empty: [PageId; 0] = [];
        dev.submit_read(
            VirtualInstant::EPOCH,
            ReadSpec::for_pages(&empty, 4096, IoKind::Demand),
        )
        .unwrap();
        assert_eq!(dev.prefetch_errors(), 1);
        assert_eq!(BlockDevice::stats(&dev).prefetch_requests, 1);
        assert_eq!(BlockDevice::stats(&dev).prefetch_bytes, 4096);
    }

    #[test]
    fn bounded_queue_accepts_bursts_beyond_depth() {
        let reader = Arc::new(MockReader::new(512));
        let dev = FileIoDevice::new(reader as Arc<dyn PageReader>, 1, 2);
        // Far more submissions than queue depth: submitters block for slots
        // instead of erroring or growing without bound.
        for i in 0..32u64 {
            let target = [PageId::new(i)];
            dev.submit_read(
                VirtualInstant::EPOCH,
                ReadSpec::for_pages(&target, 512, IoKind::Prefetch),
            )
            .unwrap();
        }
        let empty: [PageId; 0] = [];
        dev.submit_read(
            VirtualInstant::EPOCH,
            ReadSpec::for_pages(&empty, 0, IoKind::Demand),
        )
        .unwrap();
        assert_eq!(BlockDevice::stats(&dev).prefetch_requests, 32);
    }

    #[test]
    fn drop_joins_the_worker_pool() {
        let reader = Arc::new(MockReader::new(512));
        let dev = FileIoDevice::new(reader as Arc<dyn PageReader>, 4, 8);
        for i in 0..16u64 {
            let target = [PageId::new(i)];
            dev.submit_read(
                VirtualInstant::EPOCH,
                ReadSpec::for_pages(&target, 512, IoKind::Prefetch),
            )
            .unwrap();
        }
        drop(dev); // must not hang or leak threads
    }
}
