//! I/O accounting.

use scanshare_common::VirtualDuration;

/// Whether a request was issued on the critical path of a scan (demand) or
/// speculatively ahead of it (prefetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// A blocking read a scan waits for.
    Demand,
    /// An asynchronous read issued ahead of the scan cursor.
    Prefetch,
}

/// Accumulated I/O counters. "Total volume of performed I/O" is the second
/// performance measure used throughout the paper's evaluation; with the
/// asynchronous device the volume is additionally attributed to demand reads
/// versus prefetch reads, and time is attributed to queueing versus transfer.
///
/// Invariants maintained by the device:
/// `demand_bytes + prefetch_bytes == bytes_read` and
/// `demand_requests + prefetch_requests == requests`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Total bytes read from the device.
    pub bytes_read: u64,
    /// Total pages read from the device.
    pub pages_read: u64,
    /// Number of read requests issued.
    pub requests: u64,
    /// Bytes read by demand (blocking) requests.
    pub demand_bytes: u64,
    /// Bytes read by prefetch (asynchronous) requests.
    pub prefetch_bytes: u64,
    /// Number of demand requests.
    pub demand_requests: u64,
    /// Number of prefetch requests.
    pub prefetch_requests: u64,
    /// Virtual nanoseconds requests spent queued behind earlier transfers
    /// before the device started serving them.
    pub queue_wait_nanos: u64,
    /// Virtual nanoseconds spent actually serving requests (fixed per-request
    /// latency plus `bytes / bandwidth` transfer time).
    pub service_nanos: u64,
}

impl IoStats {
    /// Records a raw read of `bytes` bytes (counted as one demand request
    /// and, for page accounting, zero pages).
    pub fn record_read(&mut self, bytes: u64) {
        self.record_request(
            IoKind::Demand,
            bytes,
            VirtualDuration::ZERO,
            VirtualDuration::ZERO,
        );
    }

    /// Records a read of `pages` pages of `page_size` bytes as one demand
    /// request.
    pub fn record_pages(&mut self, pages: u64, page_size: u64) {
        self.record_read(pages * page_size);
        self.pages_read += pages;
    }

    /// Records one request of `kind`, with its time split into the wait
    /// behind earlier transfers (`queue_wait`) and the time the device spent
    /// serving it (`service`).
    pub fn record_request(
        &mut self,
        kind: IoKind,
        bytes: u64,
        queue_wait: VirtualDuration,
        service: VirtualDuration,
    ) {
        self.bytes_read += bytes;
        self.requests += 1;
        match kind {
            IoKind::Demand => {
                self.demand_bytes += bytes;
                self.demand_requests += 1;
            }
            IoKind::Prefetch => {
                self.prefetch_bytes += bytes;
                self.prefetch_requests += 1;
            }
        }
        self.queue_wait_nanos += queue_wait.as_nanos();
        self.service_nanos += service.as_nanos();
    }

    /// Merges another stats snapshot into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_read += other.bytes_read;
        self.pages_read += other.pages_read;
        self.requests += other.requests;
        self.demand_bytes += other.demand_bytes;
        self.prefetch_bytes += other.prefetch_bytes;
        self.demand_requests += other.demand_requests;
        self.prefetch_requests += other.prefetch_requests;
        self.queue_wait_nanos += other.queue_wait_nanos;
        self.service_nanos += other.service_nanos;
    }

    /// Bytes read expressed in (decimal) megabytes.
    pub fn megabytes_read(&self) -> f64 {
        self.bytes_read as f64 / 1_000_000.0
    }

    /// Average time a request waited behind earlier transfers before the
    /// device started serving it; zero when nothing was recorded.
    pub fn avg_queue_wait(&self) -> VirtualDuration {
        VirtualDuration::from_nanos(
            self.queue_wait_nanos
                .checked_div(self.requests)
                .unwrap_or(0),
        )
    }

    /// Average time the device spent serving a request (latency + transfer);
    /// zero when nothing was recorded.
    pub fn avg_service_time(&self) -> VirtualDuration {
        VirtualDuration::from_nanos(self.service_nanos.checked_div(self.requests).unwrap_or(0))
    }
}

/// Wall-clock latency percentiles of one request kind, in nanoseconds.
///
/// Computed with the nearest-rank method from the per-request latencies the
/// file device records (submission to completion). All-zero when no request
/// of the kind completed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Number of completed requests the percentiles are computed over.
    pub samples: u64,
    /// Median request latency.
    pub p50_nanos: u64,
    /// 95th-percentile request latency.
    pub p95_nanos: u64,
    /// 99th-percentile request latency.
    pub p99_nanos: u64,
}

impl LatencyPercentiles {
    /// Computes nearest-rank percentiles (via
    /// [`scanshare_common::quantile`]) from raw latency samples.
    pub fn from_unsorted_nanos(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let rank = |q: f64| scanshare_common::quantile::nearest_rank(&samples, q).unwrap();
        Self {
            samples: samples.len() as u64,
            p50_nanos: rank(0.50),
            p95_nanos: rank(0.95),
            p99_nanos: rank(0.99),
        }
    }
}

/// Per-kind wall-clock latency percentiles of a real device.
///
/// The simulated device does not report these (its per-request timings are
/// exact virtual quantities already captured in [`IoStats`]); the file device
/// measures every request with a wall clock and summarizes here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoLatency {
    /// Percentiles over demand (blocking) requests.
    pub demand: LatencyPercentiles,
    /// Percentiles over prefetch (asynchronous) requests.
    pub prefetch: LatencyPercentiles,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = IoStats::default();
        a.record_read(100);
        a.record_pages(2, 50);
        assert_eq!(a.bytes_read, 200);
        assert_eq!(a.pages_read, 2);
        assert_eq!(a.requests, 2);
        assert_eq!(a.demand_bytes, 200);
        assert_eq!(a.demand_requests, 2);

        let mut b = IoStats::default();
        b.record_pages(1, 1_000_000);
        b.merge(&a);
        assert_eq!(b.bytes_read, 1_000_200);
        assert_eq!(b.pages_read, 3);
        assert_eq!(b.requests, 3);
        assert!((b.megabytes_read() - 1.0002).abs() < 1e-9);
    }

    #[test]
    fn demand_and_prefetch_are_attributed_separately() {
        let mut s = IoStats::default();
        s.record_request(
            IoKind::Demand,
            100,
            VirtualDuration::from_nanos(10),
            VirtualDuration::from_nanos(40),
        );
        s.record_request(
            IoKind::Prefetch,
            300,
            VirtualDuration::from_nanos(30),
            VirtualDuration::from_nanos(60),
        );
        assert_eq!(s.bytes_read, 400);
        assert_eq!(s.demand_bytes, 100);
        assert_eq!(s.prefetch_bytes, 300);
        assert_eq!(s.demand_requests, 1);
        assert_eq!(s.prefetch_requests, 1);
        assert_eq!(s.demand_bytes + s.prefetch_bytes, s.bytes_read);
        assert_eq!(s.demand_requests + s.prefetch_requests, s.requests);
        assert_eq!(s.queue_wait_nanos, 40);
        assert_eq!(s.service_nanos, 100);
        assert_eq!(s.avg_queue_wait().as_nanos(), 20);
        assert_eq!(s.avg_service_time().as_nanos(), 50);
    }

    #[test]
    fn averages_handle_the_empty_case() {
        let s = IoStats::default();
        assert_eq!(s.avg_queue_wait(), VirtualDuration::ZERO);
        assert_eq!(s.avg_service_time(), VirtualDuration::ZERO);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let p = LatencyPercentiles::from_unsorted_nanos((1..=100).rev().collect());
        assert_eq!(p.samples, 100);
        assert_eq!(p.p50_nanos, 50);
        assert_eq!(p.p95_nanos, 95);
        assert_eq!(p.p99_nanos, 99);

        let single = LatencyPercentiles::from_unsorted_nanos(vec![7]);
        assert_eq!(single.p50_nanos, 7);
        assert_eq!(single.p99_nanos, 7);

        assert_eq!(
            LatencyPercentiles::from_unsorted_nanos(Vec::new()),
            LatencyPercentiles::default()
        );
    }
}
