//! I/O accounting.

/// Accumulated I/O counters. "Total volume of performed I/O" is the second
/// performance measure used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Total bytes read from the device.
    pub bytes_read: u64,
    /// Total pages read from the device.
    pub pages_read: u64,
    /// Number of read requests issued.
    pub requests: u64,
}

impl IoStats {
    /// Records a raw read of `bytes` bytes (counted as one request and, for
    /// page accounting, zero pages).
    pub fn record_read(&mut self, bytes: u64) {
        self.bytes_read += bytes;
        self.requests += 1;
    }

    /// Records a read of `pages` pages of `page_size` bytes as one request.
    pub fn record_pages(&mut self, pages: u64, page_size: u64) {
        self.bytes_read += pages * page_size;
        self.pages_read += pages;
        self.requests += 1;
    }

    /// Merges another stats snapshot into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_read += other.bytes_read;
        self.pages_read += other.pages_read;
        self.requests += other.requests;
    }

    /// Bytes read expressed in (decimal) megabytes.
    pub fn megabytes_read(&self) -> f64 {
        self.bytes_read as f64 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = IoStats::default();
        a.record_read(100);
        a.record_pages(2, 50);
        assert_eq!(a.bytes_read, 200);
        assert_eq!(a.pages_read, 2);
        assert_eq!(a.requests, 2);

        let mut b = IoStats::default();
        b.record_pages(1, 1_000_000);
        b.merge(&a);
        assert_eq!(b.bytes_read, 1_000_200);
        assert_eq!(b.pages_read, 3);
        assert_eq!(b.requests, 3);
        assert!((b.megabytes_read() - 1.0002).abs() < 1e-9);
    }
}
