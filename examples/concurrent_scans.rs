//! Concurrent scans: the scenario the paper is about.
//!
//! Several "users" scan overlapping ranges of the same large table at the
//! same time. Under LRU they compete for the buffer pool; under PBM the pool
//! knows when each page will be needed next; under Cooperative Scans the
//! Active Buffer Manager hands chunks out of order to maximize reuse. This
//! example runs the same concurrent workload under every policy (plus the
//! OPT oracle) through the discrete-event simulator and prints the paper's
//! two metrics: average stream time and total I/O volume.
//!
//! Run with: `cargo run --release --example concurrent_scans`

use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::sim::experiment::ALL_POLICIES;
use scanshare::workload::microbench;

fn main() {
    // The scan-sharing microbenchmark: 8 streams of Q1/Q6-style range scans
    // over lineitem, each covering 1-100% of the table at a random position.
    let micro = MicrobenchConfig {
        streams: 8,
        queries_per_stream: 16,
        lineitem_tuples: 1_000_000,
        ..Default::default()
    };
    let page_size = 128 * 1024;
    let chunk_tuples = 50_000;
    let (storage, workload) =
        microbench::build(&micro, page_size, chunk_tuples).expect("build workload");

    println!(
        "concurrent_scans — {} streams x {} queries",
        micro.streams, micro.queries_per_stream
    );

    // Buffer pool: 40% of the accessed data volume, 700 MB/s of bandwidth
    // (the defaults of the paper's microbenchmark section).
    let base = SimConfig {
        scanshare: ScanShareConfig {
            page_size_bytes: page_size,
            chunk_tuples,
            io_bandwidth: Bandwidth::from_mb_per_sec(700.0),
            ..Default::default()
        },
        cores: 8,
        sharing_sample_interval: None,
    };
    let probe = Simulation::new(Arc::clone(&storage), base.clone()).expect("sim");
    let accessed = probe.accessed_volume(&workload).expect("volume");
    println!(
        "accessed data volume: {:.1} MB, buffer pool: {:.1} MB (40%)\n",
        accessed as f64 / 1e6,
        accessed as f64 * 0.4 / 1e6
    );

    println!(
        "{:<8} {:>20} {:>18} {:>12}",
        "policy", "avg stream time [s]", "total I/O [GB]", "hit ratio"
    );
    for policy in ALL_POLICIES {
        let mut config = base.clone();
        config.scanshare.policy = policy;
        config.scanshare.buffer_pool_bytes = (accessed as f64 * 0.4) as u64;
        let sim = Simulation::new(Arc::clone(&storage), config).expect("sim");
        let result = sim.run(&workload).expect("run");
        println!(
            "{:<8} {:>20} {:>18.3} {:>12.2}",
            policy.name(),
            result
                .avg_stream_time_secs()
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "(trace only)".into()),
            result.total_io_gb(),
            result.buffer.hit_ratio(),
        );
    }

    println!(
        "\nExpected shape (paper, Figure 11 at 40% pool): LRU does the most I/O;\n\
         PBM and Cooperative Scans are close to each other and to OPT."
    );

    // -----------------------------------------------------------------
    // The same comparison on the LIVE engine: the WorkloadDriver lowers an
    // identical multi-stream workload onto the sharded page pool (PBM) and
    // onto the decomposed Active Buffer Manager (CScan) — one real thread
    // per stream, wall-clock throughput.
    // -----------------------------------------------------------------
    let live_micro = MicrobenchConfig {
        streams: 8,
        queries_per_stream: 4,
        lineitem_tuples: 200_000,
        ..Default::default()
    };
    let live_page = 16 * 1024;
    let live_chunk = 10_000;
    let (live_storage, live_workload) =
        microbench::build(&live_micro, live_page, live_chunk).expect("build live workload");
    let live_accessed = Simulation::new(
        Arc::clone(&live_storage),
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: live_page,
                chunk_tuples: live_chunk,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .expect("probe")
    .accessed_volume(&live_workload)
    .expect("volume");

    println!(
        "\nlive engine — {} streams x {} queries through the WorkloadDriver:",
        live_micro.streams, live_micro.queries_per_stream
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12} {:>14}",
        "policy", "queries/s", "Mtuples/s", "p95 ms", "io MB", "stream errors"
    );
    for policy in [PolicyKind::Pbm, PolicyKind::CScan] {
        let engine = Engine::new(
            Arc::clone(&live_storage),
            ScanShareConfig {
                page_size_bytes: live_page,
                chunk_tuples: live_chunk,
                buffer_pool_bytes: (live_accessed as f64 * 0.4) as u64,
                policy,
                pool_shards: 4,
                cscan_load_window: 4,
                ..Default::default()
            },
        )
        .expect("engine");
        let report = WorkloadDriver::new(engine)
            .run(&live_workload)
            .expect("driver run");
        println!(
            "{:<8} {:>12.1} {:>12.2} {:>10.2} {:>12.1} {:>14}",
            policy.name(),
            report.queries_per_sec(),
            report.tuples_per_sec() / 1e6,
            report.p95().map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
            report.buffer.io_megabytes(),
            report.stream_errors.len(),
        );
    }
    println!(
        "\nBoth backends run the identical specs: PBM through the sharded page\n\
         pool, Cooperative Scans through the directory/relevance/scheduler ABM\n\
         with out-of-order chunk delivery."
    );
}
