//! Concurrent scans: the scenario the paper is about.
//!
//! Several "users" scan overlapping ranges of the same large table at the
//! same time. Under LRU they compete for the buffer pool; under PBM the pool
//! knows when each page will be needed next; under Cooperative Scans the
//! Active Buffer Manager hands chunks out of order to maximize reuse. This
//! example runs the same concurrent workload under every policy (plus the
//! OPT oracle) through the discrete-event simulator and prints the paper's
//! two metrics: average stream time and total I/O volume.
//!
//! Run with: `cargo run --release --example concurrent_scans`

use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::sim::experiment::ALL_POLICIES;
use scanshare::workload::microbench;

fn main() {
    // The scan-sharing microbenchmark: 8 streams of Q1/Q6-style range scans
    // over lineitem, each covering 1-100% of the table at a random position.
    let micro = MicrobenchConfig {
        streams: 8,
        queries_per_stream: 16,
        lineitem_tuples: 1_000_000,
        ..Default::default()
    };
    let page_size = 128 * 1024;
    let chunk_tuples = 50_000;
    let (storage, workload) =
        microbench::build(&micro, page_size, chunk_tuples).expect("build workload");

    println!(
        "concurrent_scans — {} streams x {} queries",
        micro.streams, micro.queries_per_stream
    );

    // Buffer pool: 40% of the accessed data volume, 700 MB/s of bandwidth
    // (the defaults of the paper's microbenchmark section).
    let base = SimConfig {
        scanshare: ScanShareConfig {
            page_size_bytes: page_size,
            chunk_tuples,
            io_bandwidth: Bandwidth::from_mb_per_sec(700.0),
            ..Default::default()
        },
        cores: 8,
        sharing_sample_interval: None,
    };
    let probe = Simulation::new(Arc::clone(&storage), base.clone()).expect("sim");
    let accessed = probe.accessed_volume(&workload).expect("volume");
    println!(
        "accessed data volume: {:.1} MB, buffer pool: {:.1} MB (40%)\n",
        accessed as f64 / 1e6,
        accessed as f64 * 0.4 / 1e6
    );

    println!(
        "{:<8} {:>20} {:>18} {:>12}",
        "policy", "avg stream time [s]", "total I/O [GB]", "hit ratio"
    );
    for policy in ALL_POLICIES {
        let mut config = base.clone();
        config.scanshare.policy = policy;
        config.scanshare.buffer_pool_bytes = (accessed as f64 * 0.4) as u64;
        let sim = Simulation::new(Arc::clone(&storage), config).expect("sim");
        let result = sim.run(&workload).expect("run");
        println!(
            "{:<8} {:>20} {:>18.3} {:>12.2}",
            policy.name(),
            result
                .avg_stream_time_secs()
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "(trace only)".into()),
            result.total_io_gb(),
            result.buffer.hit_ratio(),
        );
    }

    println!(
        "\nExpected shape (paper, Figure 11 at 40% pool): LRU does the most I/O;\n\
         PBM and Cooperative Scans are close to each other and to OPT."
    );
}
