//! Quickstart: create a table, run a query under Predictive Buffer
//! Management, and compare buffer-manager behaviour across policies.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use scanshare::prelude::*;

fn build_storage() -> (Arc<Storage>, TableId) {
    // A 2M-tuple "lineitem"-like table: a key, a quantity, a price and a
    // narrow dictionary-encoded flag (columns of very different width).
    let storage = Storage::new(128 * 1024, 50_000);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "lineitem",
                vec![
                    ColumnSpec::with_width("l_orderkey", ColumnType::Int64, 4.0),
                    ColumnSpec::with_width("l_quantity", ColumnType::Decimal, 2.0),
                    ColumnSpec::with_width("l_extendedprice", ColumnType::Decimal, 4.0),
                    ColumnSpec::with_width(
                        "l_returnflag",
                        ColumnType::Dict { cardinality: 3 },
                        0.5,
                    ),
                ],
                2_000_000,
            ),
            vec![
                DataGen::Sequential { start: 1, step: 1 },
                DataGen::Uniform { min: 1, max: 50 },
                DataGen::Uniform {
                    min: 100,
                    max: 100_000,
                },
                DataGen::Cyclic {
                    period: 3,
                    min: 0,
                    max: 2,
                },
            ],
        )
        .expect("create table");
    (storage, table)
}

fn main() {
    let (storage, table) = build_storage();

    println!("scanshare quickstart — PBM vs LRU vs Cooperative Scans\n");
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>14}",
        "policy", "result(sum)", "io [MB]", "hit ratio", "virt. time [s]"
    );

    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let config = ScanShareConfig {
            page_size_bytes: 128 * 1024,
            chunk_tuples: 50_000,
            // A pool holding roughly a third of the table.
            buffer_pool_bytes: 8 << 20,
            policy,
            ..Default::default()
        };
        let engine = Engine::new(Arc::clone(&storage), config).expect("engine");

        // Q1-style query: SELECT l_returnflag, sum(l_quantity), count(*)
        //                 FROM lineitem WHERE l_quantity <= 25 GROUP BY l_returnflag
        // ... executed twice by "two users", so the second run can reuse the
        // buffer contents left behind by the first.
        let mut checksum = 0i64;
        for _user in 0..2 {
            let result = engine
                .query(table)
                .columns([
                    "l_orderkey",
                    "l_quantity",
                    "l_extendedprice",
                    "l_returnflag",
                ])
                .range(..)
                .filter(Predicate::new(1, CompareOp::Le, 25))
                .aggregate(AggrSpec::grouped(
                    3,
                    vec![Aggregate::Sum(1), Aggregate::Count],
                ))
                .parallelism(4)
                .run()
                .expect("query");
            checksum = result.values().map(|g| g.accumulators[0]).sum();
        }

        let stats = engine.buffer_stats();
        println!(
            "{:<8} {:>14} {:>12.1} {:>12.2} {:>14.3}",
            policy.name(),
            checksum,
            stats.io_bytes as f64 / 1e6,
            stats.hit_ratio(),
            engine.query_stats().elapsed.as_secs_f64(),
        );
    }

    println!(
        "\nAll policies return identical results; PBM exploits the second user's \
         overlap for the least I/O."
    );
}
