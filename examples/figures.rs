//! Regenerates the paper's figures (11-18) as text tables.
//!
//! Usage:
//!   cargo run --release --example figures            # all figures, quick scale
//!   cargo run --release --example figures -- 11 17   # only figures 11 and 17
//!   cargo run --release --example figures -- --test  # tiny scale (CI smoke)
//!   cargo run --release --example figures -- --paper # larger scale
//!
//! The absolute numbers are produced by the simulated substrate, not the
//! paper's 16-SSD server; the *shapes* (which policy wins, where the curves
//! flatten) are what EXPERIMENTS.md compares against the paper.

use scanshare::sim::experiment::{
    fig11_micro_buffer_sweep, fig12_micro_bandwidth_sweep, fig13_micro_stream_sweep,
    fig14_tpch_buffer_sweep, fig15_tpch_bandwidth_sweep, fig16_tpch_stream_sweep,
    fig17_sharing_micro, fig18_sharing_tpch,
};
use scanshare::sim::report::{format_rows, format_sharing};
use scanshare::sim::ExperimentScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--test") {
        ExperimentScale::test()
    } else if args.iter().any(|a| a == "--paper") {
        ExperimentScale::paper()
    } else {
        ExperimentScale::quick()
    };
    let requested: Vec<u32> = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .collect::<Vec<u32>>();
    let wanted = |fig: u32| requested.is_empty() || requested.contains(&fig);

    println!(
        "scanshare figure harness (scale: {} lineitem tuples micro / {} tpch)\n",
        scale.micro_lineitem_tuples, scale.tpch_lineitem_tuples
    );

    if wanted(11) {
        let rows = fig11_micro_buffer_sweep(&scale).expect("fig11");
        println!(
            "{}",
            format_rows(
                "Figure 11: microbenchmark, varying the buffer pool size",
                &rows
            )
        );
    }
    if wanted(12) {
        let rows = fig12_micro_bandwidth_sweep(&scale).expect("fig12");
        println!(
            "{}",
            format_rows(
                "Figure 12: microbenchmark, varying the I/O bandwidth",
                &rows
            )
        );
    }
    if wanted(13) {
        let rows = fig13_micro_stream_sweep(&scale).expect("fig13");
        println!(
            "{}",
            format_rows(
                "Figure 13: microbenchmark, varying the number of streams",
                &rows
            )
        );
    }
    if wanted(14) {
        let rows = fig14_tpch_buffer_sweep(&scale).expect("fig14");
        println!(
            "{}",
            format_rows(
                "Figure 14: TPC-H throughput, varying the buffer pool size",
                &rows
            )
        );
    }
    if wanted(15) {
        let rows = fig15_tpch_bandwidth_sweep(&scale).expect("fig15");
        println!(
            "{}",
            format_rows(
                "Figure 15: TPC-H throughput, varying the I/O bandwidth",
                &rows
            )
        );
    }
    if wanted(16) {
        let rows = fig16_tpch_stream_sweep(&scale).expect("fig16");
        println!(
            "{}",
            format_rows(
                "Figure 16: TPC-H throughput, varying the number of streams",
                &rows
            )
        );
    }
    if wanted(17) {
        let profile = fig17_sharing_micro(&scale).expect("fig17");
        println!(
            "{}",
            format_sharing(
                "Figure 17: sharing potential in the microbenchmark",
                &profile
            )
        );
    }
    if wanted(18) {
        let profile = fig18_sharing_tpch(&scale).expect("fig18");
        println!(
            "{}",
            format_sharing("Figure 18: sharing potential in TPC-H throughput", &profile)
        );
    }
}
