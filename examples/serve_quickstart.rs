//! Serving queries over the network: start a server, query it with the
//! blocking client, then drive it with the closed-loop load generator.
//!
//! Run with: `cargo run --release --example serve_quickstart`
//!
//! The server multiplexes every logical session onto the engine's
//! morsel-driven task scheduler (`ScanShareConfig::scheduler_workers` OS
//! threads), so the 512-session burst at the end runs on 8 workers. The
//! wire format is documented byte-for-byte in `PROTOCOL.md`.

use scanshare::prelude::*;
use scanshare::serve::loadgen::{self, LoadgenConfig, Target};

fn main() {
    // A 1M-tuple table to serve.
    let storage = Storage::new(64 * 1024, 10_000);
    storage
        .create_table_with_data(
            TableSpec::new(
                "lineitem",
                vec![
                    ColumnSpec::new("l_orderkey", ColumnType::Int64),
                    ColumnSpec::new("l_quantity", ColumnType::Int64),
                ],
                1_000_000,
            ),
            vec![
                DataGen::Sequential { start: 1, step: 1 },
                DataGen::Uniform { min: 1, max: 50 },
            ],
        )
        .expect("create table");
    let engine = Engine::new(
        storage,
        ScanShareConfig {
            policy: PolicyKind::Pbm,
            buffer_pool_bytes: 32 << 20,
            ..Default::default()
        },
    )
    .expect("engine");

    // Serve it on an ephemeral TCP port. The admission queue is sized for
    // the 512-session burst below; the defaults (64 in flight, 256 queued
    // per tenant) would shed part of it with OVERLOADED instead.
    let mut server = Server::new(
        engine,
        ServeConfig::default().with_max_queued_per_tenant(2048),
    );
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    println!("serving lineitem on tcp://{addr}");

    // One blocking client: SELECT count(*), sum(l_quantity) FROM lineitem.
    let mut client = ServeClient::connect_tcp(addr, "tenant-a").expect("connect");
    let mut request =
        QueryRequest::count_star("lineitem", vec!["l_orderkey".into(), "l_quantity".into()]);
    request.aggregates.push(Aggregate::Sum(1));
    let groups = client.query(request.clone()).expect("query");
    println!(
        "count(*) = {}, sum(l_quantity) = {}",
        groups[0].count, groups[0].accumulators[1]
    );

    // A typed error: unknown tables come back as an ERROR frame, and the
    // session keeps working afterwards.
    let mut bad = request.clone();
    bad.table = "no_such_table".into();
    match client.query(bad) {
        Err(scanshare::common::Error::Remote { code, message }) => {
            println!("typed error frame: code {code} ({message})")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }

    // 512 closed-loop sessions over 8 connections, 2 cheap queries each.
    request.end = Some(10_000);
    let report = loadgen::run(&LoadgenConfig {
        target: Target::Tcp(addr.to_string()),
        tenant: "tenant-a".into(),
        connections: 8,
        sessions: 512,
        queries_per_session: 2,
        request,
    })
    .expect("loadgen");
    println!(
        "{} sessions: {} served at {:.0} q/s — p50 {:.2?}, p95 {:.2?}, p99 {:.2?}, p999 {:.2?}",
        report.sessions,
        report.completed,
        report.qps(),
        report.p50(),
        report.p95(),
        report.p99(),
        report.p999()
    );

    server.shutdown();
    println!("server shut down cleanly");
}
