//! Updates, snapshots and checkpoints coexisting with concurrent scans.
//!
//! Section 2 of the paper is about what it takes to run Cooperative Scans in
//! a *real* system: differential updates (PDTs) merged on the fly, bulk
//! appends under snapshot isolation (shared vs. local chunks) and PDT
//! checkpoints that replace the whole table image. This example exercises
//! all of that through the execution engine:
//!
//! 1. trickle updates (insert / delete / modify) visible to new scans,
//! 2. snapshot-isolated transactions with first-committer-wins commits,
//!    racing a background checkpoint that never blocks them,
//! 3. a bulk append whose snapshot shares a prefix with the old one,
//! 4. a checkpoint creating a brand-new table image,
//! 5. identical query answers under LRU, PBM and Cooperative Scans engines,
//! 6. the checkpointed table materialized as on-disk segment files, reopened
//!    cold, and queried through the real-file I/O device.
//!
//! Run with: `cargo run --release --example updates_and_scans`

use std::sync::Arc;

use scanshare::prelude::*;

fn build_storage() -> (Arc<Storage>, TableId) {
    let storage = Storage::new(64 * 1024, 10_000);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "orders",
                vec![
                    ColumnSpec::with_width("o_orderkey", ColumnType::Int64, 4.0),
                    ColumnSpec::with_width("o_totalprice", ColumnType::Decimal, 4.0),
                ],
                200_000,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Uniform { min: 10, max: 1000 },
            ],
        )
        .expect("create table");
    (storage, table)
}

fn count_and_sum(engine: &Arc<Engine>, table: TableId, rows: u64) -> (u64, i64) {
    let result = engine
        .query(table)
        .columns(["o_orderkey", "o_totalprice"])
        .range(..rows)
        .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]))
        .parallelism(4)
        .run()
        .expect("query");
    let g = &result[&0];
    (g.count, g.accumulators[1])
}

fn main() {
    let (storage, table) = build_storage();
    let config = |policy| ScanShareConfig {
        page_size_bytes: 64 * 1024,
        chunk_tuples: 10_000,
        buffer_pool_bytes: 4 << 20,
        policy,
        ..Default::default()
    };

    // --- 1. Trickle updates through the PDT --------------------------------
    let engine = Engine::new(Arc::clone(&storage), config(PolicyKind::Pbm)).unwrap();
    let before = count_and_sum(&engine, table, engine.visible_rows(table).unwrap());
    println!(
        "initial:              {} rows, sum(o_totalprice) = {}",
        before.0, before.1
    );

    engine.delete_row(table, 0).unwrap();
    engine.delete_row(table, 0).unwrap();
    engine.insert_row(table, 0, vec![-1, 500]).unwrap();
    engine.update_value(table, 10, 1, 999_999).unwrap();
    let visible = engine.visible_rows(table).unwrap();
    let after = count_and_sum(&engine, table, visible);
    println!(
        "after trickle updates: {} rows, sum(o_totalprice) = {}",
        after.0, after.1
    );
    assert_eq!(after.0, before.0 - 1);

    // --- 2. Transactions + a background checkpoint --------------------------
    // A snapshot-isolated transaction: private until commit, and a reader
    // pinned before the commit keeps its view.
    let reader_pin = engine.table_pin(table).unwrap();
    let mut txn = engine.begin();
    txn.modify(table, 20, 1, 123_456).unwrap();
    txn.commit().unwrap();
    println!(
        "txn committed; a scan pinned before it still sees {} rows unchanged",
        reader_pin.visible_rows()
    );
    // Two competing writers: the first committer wins, the loser retries.
    let mut winner = engine.begin();
    let mut loser = engine.begin();
    winner.modify(table, 30, 1, 1).unwrap();
    loser.modify(table, 30, 1, 2).unwrap();
    winner.commit().unwrap();
    println!(
        "conflicting txn correctly failed: {}",
        loser.commit().unwrap_err()
    );
    // Writers keep committing while a checkpoint materializes in the
    // background — the checkpoint pins its snapshot instead of locking.
    let committed_mid_checkpoint = std::thread::scope(|scope| {
        let checkpointer = scope.spawn(|| engine.checkpoint(table).unwrap());
        let mut commits = 0;
        while !checkpointer.is_finished() {
            engine.update_value(table, 40, 1, commits).unwrap();
            commits += 1;
        }
        checkpointer.join().unwrap();
        commits
    });
    println!("{committed_mid_checkpoint} updates committed while the checkpoint ran");

    // --- 3. Bulk append under snapshot isolation ----------------------------
    let mut tx = storage.begin_append(table).unwrap();
    tx.append_rows(&[vec![1_000_000, 1_000_001, 1_000_002], vec![7, 7, 7]])
        .unwrap();
    let appended_snapshot = tx.snapshot();
    println!(
        "append tx sees {} stable tuples before commit (master still {})",
        appended_snapshot.stable_tuples(),
        storage.master_snapshot(table).unwrap().stable_tuples()
    );
    tx.commit().unwrap();
    println!(
        "after commit the master snapshot has {} stable tuples",
        storage.master_snapshot(table).unwrap().stable_tuples()
    );

    // --- 4. Checkpoint: PDT contents migrate to a new table image ----------
    let old_master = storage.master_snapshot(table).unwrap();
    let new_master = engine.checkpoint(table).unwrap();
    println!(
        "checkpoint: old snapshot had {} pages, new one has {} pages, shared prefix = {} pages",
        old_master.total_pages(),
        new_master.total_pages(),
        old_master
            .common_prefix_pages(&new_master)
            .iter()
            .sum::<usize>()
    );

    // --- 5. Every policy returns the same answer on the final state --------
    let rows = engine.visible_rows(table).unwrap();
    let mut answers = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let engine = Engine::new(Arc::clone(&storage), config(policy)).unwrap();
        let answer = count_and_sum(&engine, table, rows);
        println!(
            "{:<6} -> {} rows, sum = {}",
            policy.name(),
            answer.0,
            answer.1
        );
        answers.push(answer);
    }
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "policies must agree"
    );
    println!("\nAll buffer-management policies see exactly the same database state.");

    // --- 6. Materialize to real files and reopen cold -----------------------
    let dir = std::env::temp_dir().join(format!("scanshare-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    storage.materialize_table(table, &dir).unwrap();
    let reopened = Storage::open_directory(&dir).unwrap();
    let cold_table = reopened.table_by_name("orders").unwrap().id;
    let file_engine = Engine::new(
        Arc::clone(&reopened),
        ScanShareConfig {
            device: DeviceKind::File,
            ..config(PolicyKind::CScan)
        },
    )
    .unwrap();
    let cold = count_and_sum(&file_engine, cold_table, rows);
    assert_eq!(cold, answers[0], "cold reopen must answer identically");
    let latency = file_engine
        .device()
        .latency()
        .expect("the file device measures real read latencies");
    println!(
        "cold reopen from {} via {}: {} rows, sum = {} (demand read p50/p99 = {}/{} us)",
        dir.display(),
        file_engine.device().name(),
        cold.0,
        cold.1,
        latency.demand.p50_nanos / 1_000,
        latency.demand.p99_nanos / 1_000,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
