//! # scanshare
//!
//! A from-scratch Rust reproduction of
//! *"From Cooperative Scans to Predictive Buffer Management"*
//! (Świtakowski, Boncz, Żukowski — PVLDB 5(12), 2012).
//!
//! The workspace implements, on top of its own columnar storage engine:
//!
//! * **Predictive Buffer Management (PBM)** — scans register their future
//!   page accesses and report progress; the buffer pool estimates each page's
//!   time of next consumption with an O(1) bucket timeline and evicts the
//!   page needed furthest in the future (an online approximation of OPT);
//! * **Cooperative Scans (CScans)** — an Active Buffer Manager that owns all
//!   load/evict/dispatch decisions at chunk granularity and hands chunks to
//!   scans out of order, including the machinery needed in a real system:
//!   PDT differential updates with SID/RID translation, snapshot isolation
//!   for bulk appends with shared/local chunks, PDT checkpoints and
//!   intra-query parallelism;
//! * **LRU** and **OPT (Belady)** baselines, plus the modern **CLOCK** and
//!   **SIEVE** eviction policies registered by name through the
//!   [`PolicyRegistry`](prelude::PolicyRegistry);
//! * a vectorized mini execution engine — scans drive any of the above
//!   through one `ScanBackend` interface and feed multi-operator pipelines
//!   (multi-key group-by, top-k, broadcast hash join) — workload generators
//!   (scan-sharing microbenchmarks and a TPC-H-like throughput run) and a
//!   discrete-event simulator that regenerates every figure of the paper's
//!   evaluation.
//!
//! ## Quick start
//!
//! Queries are expressed with the builder API: pick an engine policy, then
//! chain `columns` / `range` / `filter` / `aggregate` / `parallelism` and
//! call `run`.
//!
//! ```
//! use std::sync::Arc;
//! use scanshare::prelude::*;
//!
//! // A small table with two columns.
//! let storage = Storage::new(64 * 1024, 10_000);
//! let table = storage
//!     .create_table_with_data(
//!         TableSpec::new(
//!             "t",
//!             vec![
//!                 ColumnSpec::new("k", ColumnType::Int64),
//!                 ColumnSpec::new("v", ColumnType::Decimal),
//!             ],
//!             100_000,
//!         ),
//!         vec![
//!             DataGen::Sequential { start: 0, step: 1 },
//!             DataGen::Uniform { min: 0, max: 100 },
//!         ],
//!     )
//!     .unwrap();
//!
//! // An engine using Predictive Buffer Management.
//! let config = ScanShareConfig {
//!     page_size_bytes: 64 * 1024,
//!     chunk_tuples: 10_000,
//!     buffer_pool_bytes: 1 << 20,
//!     policy: PolicyKind::Pbm,
//!     ..Default::default()
//! };
//! let engine = Engine::new(Arc::clone(&storage), config).unwrap();
//!
//! // SELECT count(*), sum(v) FROM t WHERE v <= 50
//! let result = engine
//!     .query(table)
//!     .columns(["k", "v"])
//!     .range(..)
//!     .filter(Predicate::new(1, CompareOp::Le, 50))
//!     .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]))
//!     .parallelism(4)
//!     .run()
//!     .unwrap();
//! assert!(result[&0].count > 0);
//! assert!(engine.buffer_stats().io_bytes > 0);
//! ```
//!
//! ## Query pipelines
//!
//! Beyond scan-filter-aggregate, the same builder composes multi-key
//! group-by ([`Query::group_by`](prelude::Query::group_by) +
//! [`run_grouped`](prelude::Query::run_grouped)), top-k
//! ([`Query::top_k`](prelude::Query::top_k) +
//! [`rows`](prelude::Query::rows)) and a broadcast hash join
//! ([`Query::join`](prelude::Query::join)): the build side is scanned and
//! hashed up front, then the probe side streams through the shared-scan
//! machinery, so joins share pages and zone-map pruning like any other
//! scan. Results are deterministic functions of the row multiset —
//! identical under out-of-order Cooperative-Scan delivery, any parallelism
//! and any shard count:
//!
//! ```
//! use std::sync::Arc;
//! use scanshare::prelude::*;
//!
//! let storage = Storage::new(64 * 1024, 1_000);
//! let fact = storage
//!     .create_table_with_data(
//!         TableSpec::new(
//!             "fact",
//!             vec![
//!                 ColumnSpec::new("f_cat", ColumnType::Int64),
//!                 ColumnSpec::new("f_val", ColumnType::Int64),
//!             ],
//!             10_000,
//!         ),
//!         vec![
//!             DataGen::Cyclic { period: 8, min: 0, max: 7 },
//!             DataGen::Uniform { min: 0, max: 100 },
//!         ],
//!     )
//!     .unwrap();
//! let dim = storage
//!     .create_table_with_data(
//!         TableSpec::new(
//!             "dim",
//!             vec![
//!                 ColumnSpec::new("d_key", ColumnType::Int64),
//!                 ColumnSpec::new("d_bonus", ColumnType::Int64),
//!             ],
//!             8,
//!         ),
//!         vec![
//!             DataGen::Sequential { start: 0, step: 1 },
//!             DataGen::Sequential { start: 100, step: 10 },
//!         ],
//!     )
//!     .unwrap();
//! let engine = Engine::new(
//!     Arc::clone(&storage),
//!     ScanShareConfig {
//!         page_size_bytes: 64 * 1024,
//!         chunk_tuples: 1_000,
//!         policy: PolicyKind::Pbm,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//!
//! // SELECT f_cat, count(*), sum(f_val) FROM fact GROUP BY f_cat
//! let groups = engine
//!     .query(fact)
//!     .columns(["f_cat", "f_val"])
//!     .group_by(&[0])
//!     .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]))
//!     .run_grouped()
//!     .unwrap();
//! assert_eq!(groups.len(), 8); // BTreeMap: group keys come out ordered
//!
//! // SELECT f_cat, f_val FROM fact ORDER BY f_val DESC LIMIT 5
//! let top = engine
//!     .query(fact)
//!     .columns(["f_cat", "f_val"])
//!     .top_k(1, 5, SortOrder::Desc)
//!     .rows()
//!     .unwrap();
//! assert_eq!(top.len(), 5);
//!
//! // SELECT count(*), sum(d_bonus) FROM fact JOIN dim ON f_cat = d_key.
//! // Joined rows are probe columns ++ build key ++ extra build columns,
//! // so d_bonus is column 3 here.
//! let joined = engine
//!     .query(fact)
//!     .columns(["f_cat", "f_val"])
//!     .join(dim, 0, "d_key")
//!     .join_columns(["d_bonus"])
//!     .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(3)]))
//!     .run()
//!     .unwrap();
//! assert_eq!(joined[&0].count, 10_000);
//! assert_eq!(joined[&0].accumulators[1], 1_350_000);
//! ```
//!
//! ## Updates & transactions
//!
//! Updates are differential (Positional Delta Trees stacked on a pinned
//! storage snapshot): [`Engine::begin`](prelude::Engine::begin) opens a
//! snapshot-isolated [`Txn`](prelude::Txn), commits are
//! first-committer-wins, and
//! [`Engine::checkpoint`](prelude::Engine::checkpoint) migrates the deltas
//! into a brand-new stable image in the background while writers keep
//! committing:
//!
//! ```
//! use std::sync::Arc;
//! use scanshare::prelude::*;
//!
//! let storage = Storage::new(64 * 1024, 10_000);
//! let table = storage
//!     .create_table_with_data(
//!         TableSpec::new(
//!             "t",
//!             vec![
//!                 ColumnSpec::new("k", ColumnType::Int64),
//!                 ColumnSpec::new("v", ColumnType::Int64),
//!             ],
//!             10_000,
//!         ),
//!         vec![
//!             DataGen::Sequential { start: 0, step: 1 },
//!             DataGen::Constant(7),
//!         ],
//!     )
//!     .unwrap();
//! let engine = Engine::new(
//!     storage,
//!     ScanShareConfig {
//!         page_size_bytes: 64 * 1024,
//!         chunk_tuples: 10_000,
//!         policy: PolicyKind::Pbm,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//!
//! // Begin, write, commit — private until the commit lands.
//! let mut txn = engine.begin();
//! let end = txn.visible_rows(table).unwrap();
//! txn.insert(table, end, vec![-1, -1]).unwrap();
//! txn.modify(table, 0, 1, 99).unwrap();
//! assert_eq!(engine.visible_rows(table).unwrap(), 10_000);
//! txn.commit().unwrap();
//! assert_eq!(engine.visible_rows(table).unwrap(), 10_001);
//!
//! // Scans pin a consistent (snapshot, PDT-stack) pair at creation.
//! let rows = engine.query(table).columns(["k", "v"]).range(..1).rows().unwrap();
//! assert_eq!(rows[0], vec![0, 99]);
//!
//! // Checkpoint: the deltas become a brand-new stable image.
//! let snapshot = engine.checkpoint(table).unwrap();
//! assert_eq!(snapshot.stable_tuples(), 10_001);
//! assert_eq!(engine.visible_rows(table).unwrap(), 10_001);
//! ```
//!
//! ## Durability & crash recovery
//!
//! Point [`ScanShareConfig::wal_dir`](prelude::ScanShareConfig) at a
//! directory and the engine becomes durable: the base image is materialized
//! as on-disk segment files, every commit appends a checksummed record to a
//! write-ahead log *before* it is applied, and checkpoints install new
//! images through an atomic manifest rename.
//! [`Engine::recover`](prelude::Engine::recover) reopens the last durable
//! image and replays the log through the same code path live commits use:
//!
//! ```
//! use std::sync::Arc;
//! use scanshare::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!(
//!     "scanshare-doc-durability-{}",
//!     std::process::id()
//! ));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let storage = Storage::new(64 * 1024, 10_000);
//! let table = storage
//!     .create_table_with_data(
//!         TableSpec::new(
//!             "t",
//!             vec![
//!                 ColumnSpec::new("k", ColumnType::Int64),
//!                 ColumnSpec::new("v", ColumnType::Int64),
//!             ],
//!             10_000,
//!         ),
//!         vec![
//!             DataGen::Sequential { start: 0, step: 1 },
//!             DataGen::Constant(7),
//!         ],
//!     )
//!     .unwrap();
//!
//! // `with_wal_dir` turns the engine durable: segments + wal.log in `dir`.
//! let engine = Engine::new(
//!     storage,
//!     ScanShareConfig {
//!         page_size_bytes: 64 * 1024,
//!         chunk_tuples: 10_000,
//!         policy: PolicyKind::Pbm,
//!         ..Default::default()
//!     }
//!     .with_wal_dir(&dir),
//! )
//! .unwrap();
//!
//! engine.insert_row(table, 0, vec![-1, -1]).unwrap(); // logged, then applied
//! let mut txn = engine.begin();
//! txn.modify(table, 1, 1, 99).unwrap();
//! txn.commit().unwrap();
//! drop(engine); // "crash"
//!
//! // Cold start: reopen the durable image, replay the log.
//! let recovered = Engine::recover(
//!     &dir,
//!     ScanShareConfig {
//!         policy: PolicyKind::Pbm,
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//! assert_eq!(recovered.visible_rows(table).unwrap(), 10_001);
//! let rows = recovered
//!     .query(table)
//!     .columns(["k", "v"])
//!     .range(..2)
//!     .rows()
//!     .unwrap();
//! assert_eq!(rows, vec![vec![-1, -1], vec![0, 99]]);
//! # drop(recovered);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! `ScanShareConfig::wal_group_commit = N` batches fsyncs: commits return
//! once appended and only every `N`-th commit syncs, so a crash loses at
//! most the `N - 1` trailing commits — always a consistent prefix, never a
//! torn middle. `tests/failure_injection.rs` proves recovery at every kill
//! point; the `fig_durability` bench sweeps group commit × update rate with
//! a gated recovery-parity check.
//!
//! ## Serving queries over the network
//!
//! The [`serve`] crate puts the engine behind a small length-prefixed wire
//! protocol (documented byte-for-byte in the repository's `PROTOCOL.md`)
//! over TCP or Unix-domain sockets. Sessions — not connections or threads —
//! are the unit of concurrency: each session's queries run as cooperative
//! tasks on the engine's morsel-driven
//! [`TaskScheduler`](prelude::TaskScheduler), so thousands of concurrent
//! sessions multiplex onto `ScanShareConfig::scheduler_workers` OS threads,
//! with admission control, per-tenant fairness and load shedding in front.
//! `examples/serve_quickstart.rs` starts a server and drives it with the
//! bundled client and load generator.
//!
//! Custom replacement policies plug in without touching the engine: register
//! a factory with a [`PolicyRegistry`](prelude::PolicyRegistry), select it
//! with `ScanShareConfig::with_custom_policy`, and build the engine with
//! `Engine::with_registry`. The default registry already carries `clock`
//! ([`ClockPolicy`](prelude::ClockPolicy)) and `sieve`
//! ([`SievePolicy`](prelude::SievePolicy)) next to the LRU/PBM built-ins,
//! and both the engine and the simulator resolve names through it — so a
//! by-name policy runs on either executor unchanged.
//!
//! A top-to-bottom tour of the workspace — crate dependency graph, scan
//! lifecycle, transaction/checkpoint flow — lives in the repository's
//! `ARCHITECTURE.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use scanshare_common as common;
pub use scanshare_core as core;
pub use scanshare_exec as exec;
pub use scanshare_iosim as iosim;
pub use scanshare_pdt as pdt;
pub use scanshare_serve as serve;
pub use scanshare_sim as sim;
pub use scanshare_storage as storage;
pub use scanshare_workload as workload;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use scanshare_common::{
        Bandwidth, DeviceKind, PolicyKind, RangeList, Rid, ScanShareConfig, Sid, TableId,
        TupleRange, VirtualClock, VirtualDuration, VirtualInstant,
    };
    pub use scanshare_core::backend::{
        CScanBackend, PooledBackend, ScanBackend, ScanRequest, ScanStep,
    };
    pub use scanshare_core::opt::simulate_opt;
    pub use scanshare_core::registry::PolicyRegistry;
    pub use scanshare_core::{
        Abm, AbmConfig, BufferPool, BufferStats, ClockPolicy, LruPolicy, PbmConfig, PbmPolicy,
        ReplacementPolicy, ShardedPool, SievePolicy,
    };
    pub use scanshare_exec::ops::{
        aggregate, AggrResult, AggrSpec, Aggregate, BatchSource, CompareOp, GroupState,
        GroupedResult, Predicate, SortOrder, TopKSpec,
    };
    pub use scanshare_exec::{
        Batch, Engine, Query, QueryTask, SchedulerStats, StreamError, TablePin, Task, TaskHandle,
        TaskOutcome, TaskScheduler, TaskStep, Txn, WorkloadDriver, WorkloadReport,
    };
    pub use scanshare_iosim::{BlockDevice, FileIoDevice, IoDevice};
    pub use scanshare_pdt::{Pdt, PdtStack};
    pub use scanshare_serve::{
        ErrorCode, JoinRequest, QueryRequest, ResultGroup, ServeClient, ServeConfig, Server,
        ServerStats,
    };
    pub use scanshare_sim::{ExperimentScale, SimConfig, SimResult, Simulation};
    pub use scanshare_storage::datagen::DataGen;
    pub use scanshare_storage::wal::{Wal, WalRecord, WalRecordKind};
    pub use scanshare_storage::{ColumnSpec, ColumnType, FileStore, Storage, TableSpec};
    pub use scanshare_workload::{
        JoinSpec, MicrobenchConfig, SkippingConfig, TpchConfig, UpdateMix, UpdateStreamSpec,
        WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = PolicyKind::Pbm;
        let _ = ScanShareConfig::default();
        let _ = TupleRange::new(0, 1);
        let _ = PolicyRegistry::default();
        let _ = SortOrder::Desc;
        let _ = ClockPolicy::new();
        let _ = SievePolicy::new();
        let _ = JoinSpec {
            left_col: 0,
            right_col: 0,
        };
    }
}
