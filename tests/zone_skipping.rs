//! Zone-map correctness properties: data skipping is an optimization, never
//! a semantics change. Randomized (but seeded and deterministic) predicated
//! queries must return byte-identical results with zone maps on and off,
//! across every policy and shard count; pruning must survive checkpoints
//! and cold restarts, and must disable itself while uncheckpointed updates
//! are pending.

use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::workload::skipping::{self, SkippingConfig};

const PAGE: u64 = 16 * 1024;
const CHUNK: u64 = 1_000;
const TUPLES: u64 = 30_000;

/// splitmix64: the same tiny deterministic generator the storage layer's
/// datagen uses, so the test needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn events_config() -> SkippingConfig {
    SkippingConfig {
        streams: 1,
        queries_per_stream: 1,
        tuples: TUPLES,
        selectivities: vec![1.0],
        value_span: 10_000,
        seed: 0x20e5,
    }
}

fn events_storage() -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(PAGE, CHUNK, 0x20e5);
    let table = skipping::setup_events(&storage, &events_config()).unwrap();
    (storage, table)
}

fn engine(
    storage: &Arc<Storage>,
    policy: PolicyKind,
    shards: usize,
    zone_maps: bool,
) -> Arc<Engine> {
    Engine::new(
        Arc::clone(storage),
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: 8 << 20,
            policy,
            pool_shards: shards,
            zone_maps,
            ..Default::default()
        },
    )
    .unwrap()
}

/// A deterministic pseudo-random predicate: any column, any operator, a
/// value drawn from (slightly beyond) that column's data span.
fn random_predicate(rng: &mut u64) -> Predicate {
    let column = (splitmix64(rng) % 3) as usize;
    let op = match splitmix64(rng) % 5 {
        0 => CompareOp::Lt,
        1 => CompareOp::Le,
        2 => CompareOp::Gt,
        3 => CompareOp::Ge,
        _ => CompareOp::Eq,
    };
    let span = match column {
        0 => TUPLES + TUPLES / 10,
        1 => 11_000,
        _ => 1_100_000,
    };
    Predicate::new(column, op, (splitmix64(rng) % span) as i64)
}

/// A deterministic pseudo-random scan range within the table.
fn random_range(rng: &mut u64) -> (u64, u64) {
    let a = splitmix64(rng) % (TUPLES + 1);
    let b = splitmix64(rng) % (TUPLES + 1);
    (a.min(b), a.max(b))
}

fn predicated_rows(
    engine: &Arc<Engine>,
    table: TableId,
    pred: Predicate,
    range: (u64, u64),
) -> Vec<Vec<i64>> {
    engine
        .query(table)
        .columns(["ev_key", "ev_value", "ev_payload"])
        .range(range.0..range.1)
        .filter(pred)
        .in_order()
        .rows()
        .unwrap()
}

/// The tentpole property: for a few dozen randomized predicates and ranges,
/// every policy and shard count returns byte-identical rows with zone maps
/// enabled and disabled — and the enabled runs actually pruned something.
#[test]
fn random_predicates_return_identical_rows_with_zone_maps_on_and_off() {
    let (storage, table) = events_storage();
    let mut rng = 0xdecaf_u64;
    let mut queries: Vec<(Predicate, (u64, u64))> = (0..24)
        .map(|_| (random_predicate(&mut rng), random_range(&mut rng)))
        .collect();
    // A guaranteed-selective probe on the clustered key, so the pruning
    // counter below cannot be satisfied vacuously.
    queries.push((
        Predicate::new(0, CompareOp::Lt, (TUPLES / 100) as i64),
        (0, TUPLES),
    ));

    let reference = engine(&storage, PolicyKind::Lru, 1, false);
    for (pred, range) in &queries {
        let expected = predicated_rows(&reference, table, *pred, *range);
        for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
            for shards in [1usize, 4] {
                let on = engine(&storage, policy, shards, true);
                assert_eq!(
                    predicated_rows(&on, table, *pred, *range),
                    expected,
                    "{policy} shards {shards} pred {pred:?} range {range:?}"
                );
            }
        }
    }

    // Re-run the whole battery on one zones-on engine to check pruning
    // actually engaged (per-engine stats accumulate across queries).
    let on = engine(&storage, PolicyKind::Pbm, 1, true);
    for (pred, range) in &queries {
        let _ = predicated_rows(&on, table, *pred, *range);
    }
    assert!(
        on.buffer_stats().pruned_tuples > 0,
        "the randomized battery must exercise real pruning"
    );
    assert_eq!(reference.buffer_stats().pruned_tuples, 0);
}

/// Aggregates (not just row streams) are byte-identical too, under the
/// aggregation path's out-of-order delivery.
#[test]
fn aggregates_are_identical_with_zone_maps_on_and_off() {
    let (storage, table) = events_storage();
    let pred = Predicate::new(0, CompareOp::Lt, (TUPLES / 50) as i64);
    let aggr = |zone_maps: bool, policy: PolicyKind| {
        let engine = engine(&storage, policy, 1, zone_maps);
        engine
            .query(table)
            .columns(["ev_key", "ev_value", "ev_payload"])
            .filter(pred)
            .aggregate(AggrSpec::global(vec![
                Aggregate::Count,
                Aggregate::Sum(1),
                Aggregate::Sum(2),
            ]))
            .run()
            .unwrap()
    };
    let expected = aggr(false, PolicyKind::Lru);
    assert_eq!(expected[&0].count, TUPLES / 50);
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        assert_eq!(aggr(true, policy), expected, "{policy}");
    }
}

/// Pending updates disable pruning (a PDT modify can make a base-failing
/// row match), and a checkpoint — which rebuilds the zone maps over the
/// merged image — re-enables it with the updated bounds.
#[test]
fn updates_gate_pruning_and_checkpoints_rebuild_the_zones() {
    let (storage, table) = events_storage();
    let eng = engine(&storage, PolicyKind::Pbm, 1, true);
    let pred = Predicate::new(0, CompareOp::Lt, 100);
    let base = predicated_rows(&eng, table, pred, (0, TUPLES));
    assert_eq!(base.len(), 100);
    let pruned_before = eng.buffer_stats().pruned_tuples;
    assert!(pruned_before > 0);

    // Make a row deep in the pruned region match the predicate. The gate
    // must stop pruning immediately: the new row appears.
    eng.update_value(table, TUPLES - 5, 0, 50).unwrap();
    let with_update = predicated_rows(&eng, table, pred, (0, TUPLES));
    assert_eq!(with_update.len(), 101, "the updated row must match");
    assert_eq!(
        eng.buffer_stats().pruned_tuples,
        pruned_before,
        "no pruning while the update is pending"
    );

    // Checkpoint: zones are rebuilt over the merged image; pruning resumes
    // and the chunk containing the updated row survives it.
    eng.checkpoint(table).unwrap();
    let after_ckpt = predicated_rows(&eng, table, pred, (0, TUPLES));
    assert_eq!(after_ckpt, with_update);
    assert!(
        eng.buffer_stats().pruned_tuples > pruned_before,
        "pruning must resume after the checkpoint"
    );
}

/// Zone maps persist in the checkpoint manifest: a cold restart from disk
/// prunes exactly like the pre-crash engine and returns identical rows.
#[test]
fn zone_maps_survive_a_cold_restart() {
    struct TestDir(std::path::PathBuf);
    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir = TestDir(
        std::env::temp_dir().join(format!("scanshare-zones-reopen-{}", std::process::id())),
    );
    std::fs::create_dir_all(&dir.0).unwrap();

    let (storage, table) = events_storage();
    let config = ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: 8 << 20,
        policy: PolicyKind::Pbm,
        zone_maps: true,
        ..Default::default()
    };
    let eng = Engine::new(storage, config.clone().with_wal_dir(&dir.0)).unwrap();
    let pred = Predicate::new(0, CompareOp::Lt, 700);
    eng.update_value(table, 10, 1, -9).unwrap();
    eng.checkpoint(table).unwrap();
    let expected = predicated_rows(&eng, table, pred, (0, TUPLES));
    assert_eq!(expected.len(), 700);
    assert_eq!(expected[10][1], -9);
    drop(eng);

    let recovered = Engine::recover(&dir.0, config).unwrap();
    assert_eq!(
        predicated_rows(&recovered, table, pred, (0, TUPLES)),
        expected
    );
    assert!(
        recovered.buffer_stats().pruned_tuples > 0,
        "the reopened engine must prune from the manifest-loaded zones"
    );
}
