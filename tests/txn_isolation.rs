//! Snapshot isolation of the PdtStack transaction layer: randomized traces
//! against a model, no torn reads across concurrent commits and
//! checkpoints, first-committer-wins semantics spanning checkpoints, and
//! the regression test proving writers make progress while a checkpoint
//! materializes (the old implementation held the table's PDT write lock for
//! the whole materialization).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::storage::datagen::splitmix64;

fn build_engine(policy: PolicyKind, tuples: u64, pool_bytes: u64) -> (Arc<Engine>, TableId) {
    let storage = Storage::with_seed(4 * 1024, 2_000, 0xdead);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "t",
                vec![
                    ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                    ColumnSpec::with_width("v", ColumnType::Int64, 8.0),
                ],
                tuples,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Sequential { start: 0, step: 1 },
            ],
        )
        .unwrap();
    let config = ScanShareConfig {
        page_size_bytes: 4 * 1024,
        chunk_tuples: 2_000,
        buffer_pool_bytes: pool_bytes,
        policy,
        ..Default::default()
    };
    (Engine::new(storage, config).unwrap(), table)
}

/// Reads the whole table through one consistent pin; returns the pinned
/// visible count and the materialized rows.
fn pinned_read(engine: &Arc<Engine>, table: TableId) -> (u64, Vec<Vec<i64>>) {
    let pin = engine.table_pin(table).unwrap();
    let expected = pin.visible_rows();
    let mut scan = engine
        .scan_pinned(pin, &["k", "v"], TupleRange::new(0, u64::MAX), true, None)
        .unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = scan.next_batch().unwrap() {
        rows.extend(batch.to_rows());
    }
    (expected, rows)
}

// ---------------------------------------------------------------------------
// Randomized trace vs. a model: every scan observes exactly its
// begin-snapshot, across interleaved transactions and checkpoints
// ---------------------------------------------------------------------------

#[test]
fn randomized_update_checkpoint_trace_matches_model() {
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        for seed in [1u64, 7, 42] {
            let (engine, table) = build_engine(policy, 500, 1 << 20);
            let mut model: Vec<(i64, i64)> = (0..500).map(|i| (i, i)).collect();
            let mut state = seed | 1;
            let mut next = |limit: u64| -> u64 {
                state = splitmix64(state);
                if limit == 0 {
                    0
                } else {
                    state % limit
                }
            };
            for step in 0..120 {
                match next(10) {
                    0..=2 => {
                        // Insert through a transaction.
                        let rid = next(model.len() as u64 + 1) as usize;
                        let val = 10_000 + step;
                        let mut txn = engine.begin();
                        txn.insert(table, rid as u64, vec![val, val]).unwrap();
                        txn.commit().unwrap();
                        model.insert(rid, (val, val));
                    }
                    3..=4 => {
                        if !model.is_empty() {
                            let rid = next(model.len() as u64);
                            engine.delete_row(table, rid).unwrap();
                            model.remove(rid as usize);
                        }
                    }
                    5..=6 => {
                        if !model.is_empty() {
                            let rid = next(model.len() as u64);
                            let val = 20_000 + step;
                            let mut txn = engine.begin();
                            txn.modify(table, rid, 0, val).unwrap();
                            txn.modify(table, rid, 1, val).unwrap();
                            txn.commit().unwrap();
                            model[rid as usize] = (val, val);
                        }
                    }
                    7 => {
                        engine.checkpoint(table).unwrap();
                    }
                    _ => {
                        // A scan pinned *before* further updates: capture
                        // the pin, mutate, then read through the stale pin —
                        // it must still see the pre-mutation model.
                        let pin = engine.table_pin(table).unwrap();
                        let before = model.clone();
                        if !model.is_empty() {
                            engine.delete_row(table, 0).unwrap();
                            model.remove(0);
                        }
                        let mut scan = engine
                            .scan_pinned(pin, &["k", "v"], TupleRange::new(0, u64::MAX), true, None)
                            .unwrap();
                        let mut rows = Vec::new();
                        while let Some(batch) = scan.next_batch().unwrap() {
                            rows.extend(batch.to_rows());
                        }
                        let expected: Vec<Vec<i64>> =
                            before.iter().map(|&(k, v)| vec![k, v]).collect();
                        assert_eq!(rows, expected, "{policy} seed {seed} step {step}");
                    }
                }
                // The committed state always matches the model exactly.
                let (visible, rows) = pinned_read(&engine, table);
                assert_eq!(visible as usize, model.len(), "{policy} seed {seed}");
                let expected: Vec<Vec<i64>> = model.iter().map(|&(k, v)| vec![k, v]).collect();
                assert_eq!(rows, expected, "{policy} seed {seed} step {step}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent writers + checkpoints + readers: no torn reads
// ---------------------------------------------------------------------------

/// Writers keep the invariant `k == v` on every row by updating both
/// columns inside one transaction; a checkpointer migrates the PDTs to new
/// stable images throughout. Any reader observing `k != v`, or a row count
/// different from its own pin's visible count, saw a torn (non-snapshot)
/// state.
#[test]
fn concurrent_scans_never_observe_torn_state() {
    for policy in [PolicyKind::Lru, PolicyKind::CScan] {
        let (engine, table) = build_engine(policy, 2_000, 1 << 20);
        let stop = AtomicBool::new(false);
        let commits = AtomicU64::new(0);
        let conflicts = AtomicU64::new(0);

        std::thread::scope(|scope| {
            // Two writer threads: paired modifies, inserts and deletes,
            // always preserving k == v; conflicts are retried ambient work.
            for w in 0..2u64 {
                let engine = Arc::clone(&engine);
                let (stop, commits, conflicts) = (&stop, &commits, &conflicts);
                scope.spawn(move || {
                    let mut state = 0x5eed ^ w;
                    let mut step = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        state = splitmix64(state);
                        step += 1;
                        let val = (w as i64 + 1) * 1_000_000 + step;
                        let mut txn = engine.begin();
                        let visible = txn.visible_rows(table).unwrap();
                        let result = match state % 4 {
                            0 => txn
                                .insert(table, state % (visible + 1), vec![val, val])
                                .and_then(|()| txn.commit()),
                            1 if visible > 500 => txn
                                .delete(table, state % visible)
                                .and_then(|()| txn.commit()),
                            _ => {
                                let rid = state % visible.max(1);
                                txn.modify(table, rid, 0, val)
                                    .and_then(|()| txn.modify(table, rid, 1, val))
                                    .and_then(|()| txn.commit())
                            }
                        };
                        match result {
                            Ok(()) => {
                                commits.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(scanshare::common::Error::TransactionConflict(_)) => {
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("writer failed: {other}"),
                        }
                    }
                });
            }
            // A background checkpointer.
            {
                let engine = Arc::clone(&engine);
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        engine.checkpoint(table).unwrap();
                    }
                });
            }
            // Readers: every scan must see a consistent snapshot.
            for _ in 0..2 {
                let engine = Arc::clone(&engine);
                let stop = &stop;
                scope.spawn(move || {
                    let mut reads = 0;
                    while reads < 30 {
                        let (expected, rows) = pinned_read(&engine, table);
                        assert_eq!(
                            rows.len() as u64,
                            expected,
                            "scan saw a row count different from its pinned snapshot"
                        );
                        for row in &rows {
                            assert_eq!(
                                row[0], row[1],
                                "torn read: a scan observed half of a paired update"
                            );
                        }
                        reads += 1;
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });

        assert!(
            commits.load(Ordering::Relaxed) > 0,
            "{policy}: writers must have committed during the run"
        );
        // The final state is consistent too.
        let (expected, rows) = pinned_read(&engine, table);
        assert_eq!(rows.len() as u64, expected);
        assert!(rows.iter().all(|r| r[0] == r[1]));
    }
}

// ---------------------------------------------------------------------------
// Transactions spanning checkpoints
// ---------------------------------------------------------------------------

#[test]
fn transactions_span_checkpoints_without_conflicting() {
    let (engine, table) = build_engine(PolicyKind::Lru, 400, 1 << 20);
    // A checkpoint changes the anchoring, never the visible stream: a
    // transaction that began before it commits cleanly afterwards.
    let mut txn = engine.begin();
    txn.modify(table, 7, 1, -7).unwrap();
    engine.checkpoint(table).unwrap();
    txn.commit().unwrap();
    let rows = engine
        .query(table)
        .columns(["v"])
        .range(7..8)
        .rows()
        .unwrap();
    assert_eq!(rows[0], vec![-7]);

    // But another committer during the checkpoint window still conflicts.
    let mut loser = engine.begin();
    loser.modify(table, 0, 1, -1).unwrap();
    engine.update_value(table, 1, 1, -2).unwrap();
    engine.checkpoint(table).unwrap();
    assert!(matches!(
        loser.commit().unwrap_err(),
        scanshare::common::Error::TransactionConflict(_)
    ));
}

// ---------------------------------------------------------------------------
// Checkpoints vs. concurrent bulk appends
// ---------------------------------------------------------------------------

/// A checkpoint installation is a compare-and-swap against the snapshot it
/// materialized from: a bulk append that commits while the checkpoint
/// materializes wins, and the checkpoint fails with `TransactionConflict`
/// instead of silently discarding the appended rows.
#[test]
fn checkpoint_yields_to_a_concurrent_bulk_append() {
    let (engine, table) = build_engine(PolicyKind::Lru, 400, 1 << 20);
    engine.update_value(table, 0, 1, -1).unwrap();
    let storage = Arc::clone(engine.storage());

    // The snapshot a checkpoint would have frozen...
    let stale = storage.master_snapshot(table).unwrap();
    // ...then an append commits during its materialization window.
    let mut tx = storage.begin_append(table).unwrap();
    tx.append_rows(&[vec![1000], vec![1000]]).unwrap();
    let appended = tx.commit().unwrap();

    // Installing against the stale snapshot must now fail...
    let err = scanshare::pdt::checkpoint_table(&storage, table, &stale, &Pdt::new(2)).unwrap_err();
    assert!(matches!(
        err,
        scanshare::common::Error::TransactionConflict(_)
    ));
    // ...and the appended image stays master.
    assert_eq!(storage.master_snapshot(table).unwrap().id(), appended.id());

    // The engine-level checkpoint adopts the appended image and succeeds:
    // appended row and pending update both survive into the new image.
    let snapshot = engine.checkpoint(table).unwrap();
    assert_eq!(snapshot.stable_tuples(), 401);
    let (visible, rows) = pinned_read(&engine, table);
    assert_eq!(visible, 401);
    assert_eq!(rows[0], vec![0, -1]);
    assert_eq!(rows[400], vec![1000, 1000]);
}

// ---------------------------------------------------------------------------
// Regression: writers make progress while a checkpoint materializes
// ---------------------------------------------------------------------------

/// The old `Engine::checkpoint` held the table's PDT write lock across the
/// whole materialization, stalling every writer for its duration. The
/// pinned-snapshot checkpoint holds the state mutex only to freeze and to
/// swap: a writer must complete commits (microseconds each) while the
/// checkpoint of a 400k-row table (milliseconds) is still running.
#[test]
fn writers_make_progress_while_a_checkpoint_materializes() {
    let (engine, table) = build_engine(PolicyKind::Lru, 400_000, 1 << 22);
    // Something for the checkpoint to materialize.
    engine.insert_row(table, 0, vec![-1, -1]).unwrap();

    let started = AtomicBool::new(false);
    let finished = AtomicBool::new(false);
    let mid_checkpoint_commits = AtomicU64::new(0);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            started.store(true, Ordering::SeqCst);
            engine.checkpoint(table).unwrap();
            finished.store(true, Ordering::SeqCst);
        });
        while !started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        // Commit until the checkpoint completes; with the old blocking
        // implementation the first commit would stall until `finished`,
        // leaving the mid-checkpoint counter at zero.
        while !finished.load(Ordering::SeqCst) {
            engine.insert_row(table, 0, vec![-2, -2]).unwrap();
            if !finished.load(Ordering::SeqCst) {
                mid_checkpoint_commits.fetch_add(1, Ordering::SeqCst);
            }
        }
    });

    assert!(
        mid_checkpoint_commits.load(Ordering::SeqCst) > 0,
        "no writer committed while the checkpoint materialized — the \
         checkpoint is blocking writers again"
    );
    // Every mid-checkpoint commit survived the snapshot swap.
    let (visible, rows) = pinned_read(&engine, table);
    assert_eq!(rows.len() as u64, visible);
    let inserted = rows.iter().filter(|r| r[0] == -2).count() as u64;
    assert!(inserted >= mid_checkpoint_commits.load(Ordering::SeqCst));
}
