//! Randomized property tests on the core invariants of the system:
//! PDT positional translation and merging, range arithmetic, buffer-pool
//! capacity, OPT optimality relative to LRU, and PBM consistency.
//!
//! The workspace builds without external dependencies, so instead of
//! `proptest` these use a small deterministic xorshift generator: every run
//! exercises the same case set, and a failing case can be reproduced from
//! its printed seed.

use scanshare::common::{PageId, RangeList, Rid, TupleRange, VirtualInstant};
use scanshare::core::bufferpool::BufferPool;
use scanshare::core::lru::LruPolicy;
use scanshare::core::opt::simulate_opt;
use scanshare::core::pbm::{PbmConfig, PbmPolicy};
use scanshare::pdt::merge::{merge_range, SliceSource};
use scanshare::pdt::Pdt;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

// ---------------------------------------------------------------------------
// PDT invariants
// ---------------------------------------------------------------------------

/// A random sequence of PDT operations expressed against the visible stream.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, i64),
    Delete(u64),
    Modify(u64, i64),
}

fn random_ops(rng: &mut Rng, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| {
            let pos = rng.below(2000);
            let value = rng.below(1 << 16) as i64 - (1 << 15);
            match rng.below(3) {
                0 => Op::Insert(pos, value),
                1 => Op::Delete(pos),
                _ => Op::Modify(pos, value),
            }
        })
        .collect()
}

fn apply_ops(stable: u64, ops: &[Op]) -> (Pdt, Vec<Vec<i64>>) {
    // Reference model: an explicit vector of single-column rows.
    let mut model: Vec<Vec<i64>> = (0..stable as i64).map(|i| vec![i]).collect();
    let mut pdt = Pdt::new(1);
    for op in ops {
        let visible = pdt.visible_count(stable);
        assert_eq!(visible as usize, model.len());
        match *op {
            Op::Insert(pos, v) => {
                let pos = pos.min(visible);
                pdt.insert(Rid::new(pos), vec![v], stable).unwrap();
                model.insert(pos as usize, vec![v]);
            }
            Op::Delete(pos) if visible > 0 => {
                let pos = pos % visible;
                pdt.delete(Rid::new(pos), stable).unwrap();
                model.remove(pos as usize);
            }
            Op::Modify(pos, v) if visible > 0 => {
                let pos = pos % visible;
                pdt.modify(Rid::new(pos), 0, v, stable).unwrap();
                model[pos as usize][0] = v;
            }
            _ => {}
        }
    }
    (pdt, model)
}

/// Merging the PDT over the stable stream reproduces the reference model,
/// no matter how the visible range is split into pieces.
#[test]
fn pdt_merge_equals_reference_model() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed + 1);
        let stable = rng.range(1, 300);
        let op_count = rng.below(60) as usize;
        let ops = random_ops(&mut rng, op_count);
        let (pdt, model) = apply_ops(stable, &ops);
        let source = SliceSource::generate(1, stable, |_, s| s as i64);
        let visible = pdt.visible_count(stable);
        assert_eq!(visible as usize, model.len(), "seed {seed}");

        let full = merge_range(&pdt, source.clone(), &[0], TupleRange::new(0, visible));
        assert_eq!(full, model, "seed {seed}");

        // Split reproduction: any prefix/suffix split produces the same stream.
        let split = rng.below(400).min(visible);
        let mut pieces = merge_range(&pdt, source.clone(), &[0], TupleRange::new(0, split));
        pieces.extend(merge_range(
            &pdt,
            source,
            &[0],
            TupleRange::new(split, visible),
        ));
        assert_eq!(pieces, model, "seed {seed}");
    }
}

/// Every visible position maps to a SID whose RID window contains it, and
/// SID->RID conversions are monotone.
#[test]
fn pdt_translation_round_trips() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed + 1000);
        let stable = rng.range(1, 200);
        let op_count = rng.below(40) as usize;
        let ops = random_ops(&mut rng, op_count);
        let (pdt, _) = apply_ops(stable, &ops);
        let visible = pdt.visible_count(stable);
        for rid in 0..visible {
            let sid = pdt.rid_to_sid(Rid::new(rid), stable);
            let lo = pdt.sid_to_rid_low(sid).raw();
            let hi = pdt.sid_to_rid_high(sid).raw();
            assert!(
                lo <= rid && rid <= hi,
                "seed {seed}: rid {rid} not in [{lo}, {hi}]"
            );
        }
        let mut last_low = 0;
        for sid in 0..=stable {
            let lo = pdt.sid_to_rid_low(scanshare::common::Sid::new(sid)).raw();
            assert!(
                lo >= last_low,
                "seed {seed}: sid_to_rid_low must be monotone"
            );
            last_low = lo;
        }
    }
}

// ---------------------------------------------------------------------------
// Range arithmetic invariants
// ---------------------------------------------------------------------------

/// Equation 1 partitioning covers the range exactly, without overlap.
#[test]
fn split_even_is_a_partition() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed + 2000);
        let start = rng.below(10_000);
        let len = rng.below(10_000);
        let n = rng.range(1, 16) as usize;
        let range = TupleRange::new(start, start + len);
        let parts = range.split_even(n);
        assert_eq!(parts.len(), n, "seed {seed}");
        assert_eq!(
            parts.iter().map(TupleRange::len).sum::<u64>(),
            range.len(),
            "seed {seed}"
        );
        for pair in parts.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "seed {seed}");
        }
        assert_eq!(parts[0].start, range.start, "seed {seed}");
        assert_eq!(parts[parts.len() - 1].end, range.end, "seed {seed}");
    }
}

fn random_range_list(rng: &mut Rng) -> RangeList {
    let pieces = rng.range(1, 8) as usize;
    RangeList::from_ranges((0..pieces).map(|_| {
        let start = rng.below(500);
        let len = rng.range(1, 100);
        TupleRange::new(start, start + len)
    }))
}

/// subtract/intersect/union are consistent: A = (A - B) ∪ (A ∩ B).
#[test]
fn range_list_subtract_union_identity() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed + 3000);
        let list_a = random_range_list(&mut rng);
        let list_b = random_range_list(&mut rng);
        let minus = list_a.subtract(&list_b);
        let inter = list_a.intersect(&list_b);
        assert!(minus.intersect(&list_b).is_empty(), "seed {seed}");
        assert_eq!(minus.union(&inter), list_a, "seed {seed}");
        assert_eq!(
            minus.total_tuples() + inter.total_tuples(),
            list_a.total_tuples(),
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Buffer-management invariants
// ---------------------------------------------------------------------------

/// The buffer pool never exceeds its capacity and never loses pages, for
/// both LRU and PBM, on arbitrary reference strings.
#[test]
fn buffer_pool_respects_capacity() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed + 4000);
        let capacity = rng.range(1, 64) as usize;
        let refs: Vec<u64> = (0..rng.range(1, 400)).map(|_| rng.below(200)).collect();
        let use_pbm = rng.below(2) == 0;
        let policy: Box<dyn scanshare::core::policy::ReplacementPolicy> = if use_pbm {
            Box::new(PbmPolicy::new(PbmConfig::default()))
        } else {
            Box::new(LruPolicy::new())
        };
        let mut pool = BufferPool::new(capacity, 4096, policy);
        let now = VirtualInstant::EPOCH;
        for &r in &refs {
            pool.request_page(PageId::new(r), None, now).unwrap();
            assert!(pool.resident_count() <= capacity, "seed {seed}");
        }
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, refs.len() as u64, "seed {seed}");
        assert_eq!(stats.io_bytes, stats.misses * 4096, "seed {seed}");
        // Distinct pages referenced bounds the resident count.
        let mut distinct = refs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(pool.resident_count() <= distinct.len(), "seed {seed}");
    }
}

/// OPT never incurs more misses than LRU on the same reference string and
/// never fewer than the number of distinct pages (cold misses).
#[test]
fn opt_is_a_lower_bound() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed + 5000);
        let capacity = rng.range(1, 32) as usize;
        let trace: Vec<PageId> = (0..rng.range(1, 500))
            .map(|_| PageId::new(rng.below(100)))
            .collect();
        let opt = simulate_opt(&trace, capacity);

        let mut pool = BufferPool::new(capacity, 1, Box::new(LruPolicy::new()));
        let now = VirtualInstant::EPOCH;
        for &page in &trace {
            pool.request_page(page, None, now).unwrap();
        }
        let lru_misses = pool.stats().misses;
        assert!(
            opt.misses <= lru_misses,
            "seed {seed}: OPT {} vs LRU {}",
            opt.misses,
            lru_misses
        );

        let mut distinct: Vec<u64> = trace.iter().map(|p| p.raw()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(opt.misses >= distinct.len() as u64, "seed {seed}");
        assert_eq!(opt.hits + opt.misses, trace.len() as u64, "seed {seed}");
    }
}
