//! Property-based tests (proptest) on the core invariants of the system:
//! PDT positional translation and merging, range arithmetic, buffer-pool
//! capacity, OPT optimality relative to LRU, and PBM consistency.

use proptest::prelude::*;

use scanshare::common::{PageId, RangeList, Rid, TupleRange, VirtualInstant};
use scanshare::core::bufferpool::BufferPool;
use scanshare::core::lru::LruPolicy;
use scanshare::core::opt::simulate_opt;
use scanshare::core::pbm::{PbmConfig, PbmPolicy};
use scanshare::pdt::merge::{merge_range, SliceSource};
use scanshare::pdt::Pdt;

// ---------------------------------------------------------------------------
// PDT invariants
// ---------------------------------------------------------------------------

/// A random sequence of PDT operations expressed against the visible stream.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, i64),
    Delete(u64),
    Modify(u64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..2000, any::<i16>()).prop_map(|(p, v)| Op::Insert(p, v as i64)),
        (0u64..2000).prop_map(Op::Delete),
        (0u64..2000, any::<i16>()).prop_map(|(p, v)| Op::Modify(p, v as i64)),
    ]
}

fn apply_ops(stable: u64, ops: &[Op]) -> (Pdt, Vec<Vec<i64>>) {
    // Reference model: an explicit vector of single-column rows.
    let mut model: Vec<Vec<i64>> = (0..stable as i64).map(|i| vec![i]).collect();
    let mut pdt = Pdt::new(1);
    for op in ops {
        let visible = pdt.visible_count(stable);
        assert_eq!(visible as usize, model.len());
        match *op {
            Op::Insert(pos, v) => {
                let pos = pos.min(visible);
                pdt.insert(Rid::new(pos), vec![v], stable).unwrap();
                model.insert(pos as usize, vec![v]);
            }
            Op::Delete(pos) if visible > 0 => {
                let pos = pos % visible;
                pdt.delete(Rid::new(pos), stable).unwrap();
                model.remove(pos as usize);
            }
            Op::Modify(pos, v) if visible > 0 => {
                let pos = pos % visible;
                pdt.modify(Rid::new(pos), 0, v, stable).unwrap();
                model[pos as usize][0] = v;
            }
            _ => {}
        }
    }
    (pdt, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging the PDT over the stable stream reproduces the reference model,
    /// no matter how the visible range is split into pieces.
    #[test]
    fn pdt_merge_equals_reference_model(
        stable in 1u64..300,
        ops in prop::collection::vec(op_strategy(), 0..60),
        split in 0u64..400,
    ) {
        let (pdt, model) = apply_ops(stable, &ops);
        let source = SliceSource::generate(1, stable, |_, s| s as i64);
        let visible = pdt.visible_count(stable);
        prop_assert_eq!(visible as usize, model.len());

        let full = merge_range(&pdt, source.clone(), &[0], TupleRange::new(0, visible));
        prop_assert_eq!(&full, &model);

        // Split reproduction: any prefix/suffix split produces the same stream.
        let split = split.min(visible);
        let mut pieces = merge_range(&pdt, source.clone(), &[0], TupleRange::new(0, split));
        pieces.extend(merge_range(&pdt, source, &[0], TupleRange::new(split, visible)));
        prop_assert_eq!(pieces, model);
    }

    /// Every visible position maps to a SID whose RID window contains it, and
    /// SID->RID conversions are monotone.
    #[test]
    fn pdt_translation_round_trips(
        stable in 1u64..200,
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let (pdt, _) = apply_ops(stable, &ops);
        let visible = pdt.visible_count(stable);
        for rid in 0..visible {
            let sid = pdt.rid_to_sid(Rid::new(rid), stable);
            let lo = pdt.sid_to_rid_low(sid).raw();
            let hi = pdt.sid_to_rid_high(sid).raw();
            prop_assert!(lo <= rid && rid <= hi, "rid {} not in [{}, {}]", rid, lo, hi);
        }
        let mut last_low = 0;
        for sid in 0..=stable {
            let lo = pdt.sid_to_rid_low(scanshare::common::Sid::new(sid)).raw();
            prop_assert!(lo >= last_low, "sid_to_rid_low must be monotone");
            last_low = lo;
        }
    }
}

// ---------------------------------------------------------------------------
// Range arithmetic invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Equation 1 partitioning covers the range exactly, without overlap.
    #[test]
    fn split_even_is_a_partition(start in 0u64..10_000, len in 0u64..10_000, n in 1usize..16) {
        let range = TupleRange::new(start, start + len);
        let parts = range.split_even(n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts.iter().map(TupleRange::len).sum::<u64>(), range.len());
        for pair in parts.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
        if !parts.is_empty() {
            prop_assert_eq!(parts[0].start, range.start);
            prop_assert_eq!(parts[parts.len() - 1].end, range.end);
        }
    }

    /// subtract/intersect/union are consistent: A = (A - B) ∪ (A ∩ B).
    #[test]
    fn range_list_subtract_union_identity(
        a in prop::collection::vec((0u64..500, 1u64..100), 1..8),
        b in prop::collection::vec((0u64..500, 1u64..100), 1..8),
    ) {
        let list_a = RangeList::from_ranges(a.iter().map(|&(s, l)| TupleRange::new(s, s + l)));
        let list_b = RangeList::from_ranges(b.iter().map(|&(s, l)| TupleRange::new(s, s + l)));
        let minus = list_a.subtract(&list_b);
        let inter = list_a.intersect(&list_b);
        prop_assert!(minus.intersect(&list_b).is_empty());
        prop_assert_eq!(minus.union(&inter), list_a.clone());
        prop_assert_eq!(minus.total_tuples() + inter.total_tuples(), list_a.total_tuples());
    }
}

// ---------------------------------------------------------------------------
// Buffer-management invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The buffer pool never exceeds its capacity and never loses pages, for
    /// both LRU and PBM, on arbitrary reference strings.
    #[test]
    fn buffer_pool_respects_capacity(
        refs in prop::collection::vec(0u64..200, 1..400),
        capacity in 1usize..64,
        use_pbm in any::<bool>(),
    ) {
        let policy: Box<dyn scanshare::core::policy::ReplacementPolicy> = if use_pbm {
            Box::new(PbmPolicy::new(PbmConfig::default()))
        } else {
            Box::new(LruPolicy::new())
        };
        let mut pool = BufferPool::new(capacity, 4096, policy);
        let now = VirtualInstant::EPOCH;
        for &r in &refs {
            pool.request_page(PageId::new(r), None, now).unwrap();
            prop_assert!(pool.resident_count() <= capacity);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.hits + stats.misses, refs.len() as u64);
        prop_assert_eq!(stats.io_bytes, stats.misses * 4096);
        // Distinct pages referenced bounds the resident count.
        let mut distinct = refs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(pool.resident_count() <= distinct.len());
    }

    /// OPT never incurs more misses than LRU on the same reference string and
    /// never fewer than the number of distinct pages (cold misses).
    #[test]
    fn opt_is_a_lower_bound(
        refs in prop::collection::vec(0u64..100, 1..500),
        capacity in 1usize..32,
    ) {
        let trace: Vec<PageId> = refs.iter().map(|&r| PageId::new(r)).collect();
        let opt = simulate_opt(&trace, capacity);

        let mut pool = BufferPool::new(capacity, 1, Box::new(LruPolicy::new()));
        let now = VirtualInstant::EPOCH;
        for &page in &trace {
            pool.request_page(page, None, now).unwrap();
        }
        let lru_misses = pool.stats().misses;
        prop_assert!(opt.misses <= lru_misses, "OPT {} vs LRU {}", opt.misses, lru_misses);

        let mut distinct = refs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(opt.misses >= distinct.len() as u64);
        prop_assert_eq!(opt.hits + opt.misses, trace.len() as u64);
    }
}
