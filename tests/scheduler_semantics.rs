//! Semantics of the morsel-driven task scheduler: query results are
//! identical at any worker count, short sessions are not starved behind a
//! long scan, and hundreds of logical sessions complete on a handful of
//! workers.

use std::sync::Arc;

use scanshare::prelude::*;

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;
const TUPLES: u64 = 400_000;

fn build_engine() -> (Arc<Engine>, TableId) {
    let storage = Storage::new(PAGE, CHUNK);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "t",
                vec![
                    ColumnSpec::new("k", ColumnType::Int64),
                    ColumnSpec::new("g", ColumnType::Int64),
                    ColumnSpec::new("v", ColumnType::Int64),
                ],
                TUPLES,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Cyclic {
                    period: 7,
                    min: 0,
                    max: 6,
                },
                DataGen::Uniform { min: 1, max: 1000 },
            ],
        )
        .unwrap();
    let engine = Engine::new(
        storage,
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: 4 << 20,
            policy: PolicyKind::Pbm,
            ..Default::default()
        },
    )
    .unwrap();
    (engine, table)
}

fn grouped_task(engine: &Arc<Engine>, table: TableId, parallelism: usize) -> QueryTask {
    engine
        .query(table)
        .columns(["k", "g", "v"])
        .filter(Predicate::new(2, CompareOp::Le, 700))
        .aggregate(AggrSpec::grouped(
            1,
            vec![Aggregate::Count, Aggregate::Sum(2), Aggregate::Max(0)],
        ))
        .parallelism(parallelism)
        .into_task()
        .unwrap()
}

/// The same query must produce bit-identical aggregates whether its task
/// runs on one worker or many, at any intra-query parallelism.
#[test]
fn results_are_identical_at_any_worker_count() {
    let (engine, table) = build_engine();
    let reference = engine
        .query(table)
        .columns(["k", "g", "v"])
        .filter(Predicate::new(2, CompareOp::Le, 700))
        .aggregate(AggrSpec::grouped(
            1,
            vec![Aggregate::Count, Aggregate::Sum(2), Aggregate::Max(0)],
        ))
        .run()
        .unwrap();
    assert_eq!(reference.len(), 7, "cyclic column should give 7 groups");

    for workers in [1, 4, 8] {
        for parallelism in [1, 4] {
            let scheduler = TaskScheduler::new(workers);
            let handles: Vec<_> = (0..6)
                .map(|_| scheduler.spawn(grouped_task(&engine, table, parallelism)))
                .collect();
            for handle in handles {
                let result = handle.wait().into_result().unwrap().into_result();
                assert_eq!(
                    result, reference,
                    "workers={workers} parallelism={parallelism}"
                );
            }
        }
    }
}

/// Round-robin quanta on a single worker: a batch of one-quantum sessions
/// spawned behind a long full-table scan must all finish while the long
/// scan is still running — no session stalls behind it.
#[test]
fn short_sessions_are_not_starved_behind_a_long_scan() {
    let (engine, table) = build_engine();
    let scheduler = TaskScheduler::new(1);

    // Build the one-quantum sessions up front so that, once the long scan
    // is spawned, the shorts reach the queue within a few microseconds —
    // long before the scan's ~50 quanta can drain.
    let short_tasks: Vec<_> = (0..20)
        .map(|i| {
            engine
                .query(table)
                .columns(["k"])
                .range(i * 100..(i + 1) * 100)
                .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                .into_task()
                .unwrap()
        })
        .collect();

    // ~50 quanta of work (400k tuples / 1k batch / 8 batches per quantum).
    let long = scheduler.spawn(grouped_task(&engine, table, 1));
    let shorts: Vec<_> = short_tasks
        .into_iter()
        .map(|task| scheduler.spawn(task))
        .collect();

    for short in shorts {
        let result = short.wait().into_result().unwrap().into_result();
        assert_eq!(result[&0].count, 100);
    }
    assert!(
        !long.is_done(),
        "a 20-session batch of small queries drained before the long scan \
         finished; the scheduler is not round-robining quanta"
    );
    let result = long.wait().into_result().unwrap().into_result();
    assert_eq!(result.len(), 7);
}

/// Many more logical sessions than workers: everything completes, with the
/// correct result, and the scheduler observed cooperative yields.
#[test]
fn hundreds_of_sessions_complete_on_four_workers() {
    let (engine, table) = build_engine();
    let scheduler = TaskScheduler::new(4);
    let handles: Vec<_> = (0..300)
        .map(|i| {
            let start = (i % 50) * 1000;
            let task = engine
                .query(table)
                .columns(["k", "v"])
                .range(start..start + 1000)
                .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]))
                .into_task()
                .unwrap();
            scheduler.spawn(task)
        })
        .collect();
    for handle in handles {
        let result = handle.wait().into_result().unwrap().into_result();
        assert_eq!(result[&0].count, 1000);
    }
    let stats = scheduler.stats();
    assert_eq!(stats.completed, 300);
    assert_eq!(stats.submitted, 300);
}
