//! The policy zoo: CLOCK and SIEVE behave like first-class citizens of the
//! buffer-pool stack.
//!
//! Three layers of guarantees:
//!
//! 1. **Sharding transparency** — replaying any randomized trace (the
//!    `pool_harness` grammar shared with `sharded_pool_properties.rs`)
//!    against a `ShardedPool` at any shard count yields byte-identical
//!    outcomes, statistics and prefetch decisions to the single-threaded
//!    `BufferPool` reference.
//! 2. **Policy invariants** — SIEVE never evicts a visited page while an
//!    unvisited one exists; CLOCK's hand only ever moves forward. Both are
//!    asserted over randomized operation streams against the public
//!    observables (`SievePolicy::visited`/`pages_oldest_first`,
//!    `ClockPolicy::hand_advances`/`referenced`).
//! 3. **Registry wiring** — `custom_policy: "clock" | "sieve"` resolves
//!    through the `PolicyRegistry` into a working engine whose I/O is
//!    itself shard-count invariant.

mod pool_harness;

use std::collections::HashSet;
use std::sync::Arc;

use pool_harness::{random_trace, replay, Rng};
use scanshare::common::{PageId, VirtualInstant};
use scanshare::core::bufferpool::BufferPool;
use scanshare::core::clock::ClockPolicy;
use scanshare::core::policy::ReplacementPolicy;
use scanshare::core::sharded::ShardedPool;
use scanshare::core::sieve::SievePolicy;

type PolicyFactory = fn() -> Box<dyn ReplacementPolicy>;

fn zoo() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("clock", || Box::new(ClockPolicy::new())),
        ("sieve", || Box::new(SievePolicy::new())),
    ]
}

/// Same property as `sharded_pool_properties`, for the policies the zoo
/// adds: sharding must not change a single decision.
#[test]
fn clock_and_sieve_traces_are_shard_count_invariant() {
    let cases = if cfg!(debug_assertions) { 10 } else { 32 };
    for case in 0..cases {
        let mut rng = Rng::new(0x0200_5eed + case * 6151);
        let capacity = 2 + rng.below(24) as usize;
        let pages = capacity as u64 / 2 + rng.below(3 * capacity as u64 + 8);
        let trace = random_trace(&mut rng, pages, capacity, 300);

        for (name, make_policy) in zoo() {
            let mut reference = BufferPool::new(capacity, 1024, make_policy());
            let (expected_obs, expected_stats) = replay(&mut reference, &trace);
            assert!(
                expected_stats.hits + expected_stats.misses > 0,
                "case {case}: trace exercised no accesses"
            );
            for shards in [1usize, 2, 4, 8] {
                let mut pool = ShardedPool::new(capacity, 1024, make_policy(), shards);
                let (obs, stats) = replay(&mut pool, &trace);
                assert_eq!(
                    stats, expected_stats,
                    "case {case} policy {name} shards {shards}: statistics diverged"
                );
                assert_eq!(
                    obs, expected_obs,
                    "case {case} policy {name} shards {shards}: outcomes diverged"
                );
            }
        }
    }
}

/// Drives a bare policy exactly like the buffer pool's miss path does:
/// admit + demand access when over capacity, evicting chosen victims.
fn fault(
    policy: &mut dyn ReplacementPolicy,
    resident: &mut HashSet<PageId>,
    page: PageId,
    cap: usize,
) {
    let now = VirtualInstant::EPOCH;
    if resident.contains(&page) {
        policy.on_access(page, None, now);
        return;
    }
    while resident.len() >= cap {
        let victims = policy.choose_victims(1, &HashSet::new(), now);
        assert_eq!(
            victims.len(),
            1,
            "no victim with {} resident",
            resident.len()
        );
        assert!(resident.remove(&victims[0]), "victim not resident");
        policy.on_evict(victims[0]);
    }
    policy.on_admit(page, now);
    policy.on_access(page, None, now); // the faulting access
    resident.insert(page);
}

/// SIEVE's defining invariant, randomized: whenever at least one tracked
/// page has a clear visited bit, the next victim is one of those pages —
/// a set bit always buys survival while colder pages remain.
#[test]
fn sieve_never_evicts_a_visited_page_while_an_unvisited_one_exists() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(0x51e7e + seed);
        let mut sieve = SievePolicy::new();
        let mut resident = HashSet::new();
        let cap = 12usize;
        let now = VirtualInstant::EPOCH;
        for step in 0..600 {
            let page = PageId::new(rng.below(40));
            // Snapshot visited bits before the fault path may evict.
            let unvisited: HashSet<PageId> = sieve
                .pages_oldest_first()
                .into_iter()
                .filter(|&p| sieve.visited(p) == Some(false))
                .collect();
            if resident.len() >= cap && !resident.contains(&page) && !unvisited.is_empty() {
                let victim = sieve.choose_victims(1, &HashSet::new(), now);
                assert_eq!(victim.len(), 1);
                assert!(
                    unvisited.contains(&victim[0]),
                    "seed {seed} step {step}: evicted visited page {:?} while {} unvisited pages existed",
                    victim[0],
                    unvisited.len()
                );
                assert!(resident.remove(&victim[0]));
                sieve.on_evict(victim[0]);
            }
            fault(&mut sieve, &mut resident, page, cap);
        }
        // The observable list and the model agree about who is tracked.
        let tracked: HashSet<PageId> = sieve.pages_oldest_first().into_iter().collect();
        assert_eq!(tracked, resident, "seed {seed}");
    }
}

/// CLOCK's hand is a monotone sweep: across any randomized workload the
/// advance counter never decreases, and the reference bit observable
/// reflects demand accesses.
#[test]
fn clock_hand_only_moves_forward() {
    for seed in 0..8u64 {
        let mut rng = Rng::new(0xc10c + seed);
        let mut clock = ClockPolicy::new();
        let mut resident = HashSet::new();
        let cap = 10usize;
        let now = VirtualInstant::EPOCH;
        let mut last = clock.hand_advances();
        for step in 0..600 {
            let page = PageId::new(rng.below(32));
            fault(&mut clock, &mut resident, page, cap);
            assert_eq!(
                clock.referenced(page),
                Some(true),
                "seed {seed} step {step}: a demand access must set the reference bit"
            );
            if rng.below(4) == 0 {
                // Spontaneous pressure, like a prefetch admission would cause.
                for victim in clock.choose_victims(1, &HashSet::new(), now) {
                    assert!(resident.remove(&victim));
                    clock.on_evict(victim);
                }
            }
            let advances = clock.hand_advances();
            assert!(
                advances >= last,
                "seed {seed} step {step}: hand moved backwards ({last} -> {advances})"
            );
            last = advances;
        }
        assert!(last > 0, "seed {seed}: the hand never swept");
    }
}

/// `custom_policy` resolves clock and sieve by name through the registry,
/// and the resulting engines do shard-count-invariant I/O.
#[test]
fn registry_wires_clock_and_sieve_into_shard_invariant_engines() {
    use scanshare::prelude::*;

    let registry = PolicyRegistry::default();
    let names = registry.names();
    for name in ["clock", "sieve"] {
        assert!(
            names.contains(&name),
            "{name} missing from registry: {names:?}"
        );
    }

    let storage = Storage::with_seed(2048, 1_000, 29);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "t",
                vec![
                    ColumnSpec::new("k", ColumnType::Int64),
                    ColumnSpec::new("v", ColumnType::Int64),
                ],
                30_000,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Uniform { min: 0, max: 100 },
            ],
        )
        .unwrap();
    let storage = Arc::new(storage);

    for name in ["clock", "sieve"] {
        let mut reference: Option<BufferStats> = None;
        for shards in [1usize, 4] {
            let engine = Engine::new(
                Arc::clone(&storage),
                ScanShareConfig {
                    page_size_bytes: 2048,
                    chunk_tuples: 1_000,
                    buffer_pool_bytes: 20 * 2048, // pressure
                    pool_shards: shards,
                    ..Default::default()
                }
                .with_custom_policy(name),
            )
            .unwrap();
            for _ in 0..2 {
                let count = engine
                    .query(table)
                    .columns(["k", "v"])
                    .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                    .run()
                    .unwrap()[&0]
                    .count;
                assert_eq!(count, 30_000, "{name} shards {shards}");
            }
            let stats = engine.buffer_stats();
            assert!(stats.evictions > 0, "{name}: no replacement pressure");
            match &reference {
                None => reference = Some(stats),
                Some(expected) => assert_eq!(
                    *expected, stats,
                    "{name} shards {shards}: engine I/O diverged"
                ),
            }
        }
    }
}
