//! The sharding-transparency property: for *any* trace, a `ShardedPool`
//! with any shard count produces exactly the outcomes, statistics and
//! prefetch decisions of the single-threaded `BufferPool` reference — per
//! policy, byte for byte.
//!
//! This is the invariant the engine's I/O accounting rests on: partitioning
//! the page table across locks must change contention only, never *what*
//! is read. The traces below are randomized (deterministic xorshift, like
//! the other property tests in this workspace): interleaved scans with page
//! plans, progress reports, scanless accesses, pins, prefetch admissions
//! and virtual-time advances, replayed under replacement pressure.

use std::sync::Arc;

use scanshare::common::{ColumnId, PageId, ScanId, TableId, TupleRange, VirtualInstant};
use scanshare::core::bufferpool::{AccessOutcome, BufferPool};
use scanshare::core::lru::LruPolicy;
use scanshare::core::pbm::{PbmConfig, PbmPolicy};
use scanshare::core::pbm_lru::{PbmLruConfig, PbmLruPolicy};
use scanshare::core::policy::ReplacementPolicy;
use scanshare::core::sharded::ShardedPool;
use scanshare::core::BufferStats;
use scanshare::storage::layout::{PageDescriptor, ScanPagePlan};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// One step of a trace. Scan handles are *indices* into the registration
/// order (the pools assign their own `ScanId`s; equal call sequences make
/// them equal, which the replay asserts).
#[derive(Debug, Clone)]
enum Step {
    Register {
        pages: Vec<u64>,
        tuples_per_page: u64,
    },
    Access {
        scan: Option<usize>,
        page: u64,
    },
    Report {
        scan: usize,
        tuples: u64,
    },
    Unregister {
        scan: usize,
    },
    Pin {
        page: u64,
    },
    Unpin {
        page: u64,
    },
    Prefetch {
        budget: usize,
    },
    Advance {
        millis: u64,
    },
}

/// What a replay observed; compared across pool implementations.
#[derive(Debug, PartialEq)]
enum Observation {
    Outcome(AccessOutcome),
    ScanId(ScanId),
    Candidates(Vec<PageId>, Vec<bool>),
}

fn plan_over(pages: &[u64], tuples_per_page: u64) -> ScanPagePlan {
    let descs: Vec<PageDescriptor> = pages
        .iter()
        .enumerate()
        .map(|(i, &page)| PageDescriptor {
            page: PageId::new(page),
            column: ColumnId::new(0),
            column_index: 0,
            sid_range: TupleRange::new(
                i as u64 * tuples_per_page,
                (i as u64 + 1) * tuples_per_page,
            ),
            tuples_behind: i as u64 * tuples_per_page,
            tuple_count: tuples_per_page,
        })
        .collect();
    ScanPagePlan {
        table: TableId::new(0),
        total_tuples: pages.len() as u64 * tuples_per_page,
        pages: descs,
    }
}

/// The trace operations a pool under test must support. `BufferPool` takes
/// `&mut self`, `ShardedPool` synchronizes internally; the trait papers
/// over that difference for the replay.
trait TracePool {
    fn register(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId;
    fn request(&mut self, page: PageId, scan: Option<ScanId>, now: VirtualInstant)
        -> AccessOutcome;
    fn report(&mut self, scan: ScanId, tuples: u64, now: VirtualInstant);
    fn unregister(&mut self, scan: ScanId, now: VirtualInstant);
    fn pin(&mut self, page: PageId);
    fn unpin(&mut self, page: PageId);
    fn candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId>;
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool;
    fn stats(&self) -> BufferStats;
}

impl TracePool for BufferPool {
    fn register(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        BufferPool::register_scan(self, plan, now)
    }
    fn request(
        &mut self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> AccessOutcome {
        BufferPool::request_page(self, page, scan, now).expect("pins are bounded")
    }
    fn report(&mut self, scan: ScanId, tuples: u64, now: VirtualInstant) {
        BufferPool::report_scan_position(self, scan, tuples, now)
    }
    fn unregister(&mut self, scan: ScanId, now: VirtualInstant) {
        BufferPool::unregister_scan(self, scan, now)
    }
    fn pin(&mut self, page: PageId) {
        BufferPool::pin(self, page)
    }
    fn unpin(&mut self, page: PageId) {
        BufferPool::unpin(self, page)
    }
    fn candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        BufferPool::prefetch_candidates(self, budget, now)
    }
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        BufferPool::admit_prefetch(self, page, now)
    }
    fn stats(&self) -> BufferStats {
        BufferPool::stats(self)
    }
}

impl TracePool for ShardedPool {
    fn register(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        ShardedPool::register_scan(self, plan, now)
    }
    fn request(
        &mut self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> AccessOutcome {
        ShardedPool::request_page(self, page, scan, now).expect("pins are bounded")
    }
    fn report(&mut self, scan: ScanId, tuples: u64, now: VirtualInstant) {
        ShardedPool::report_scan_position(self, scan, tuples, now)
    }
    fn unregister(&mut self, scan: ScanId, now: VirtualInstant) {
        ShardedPool::unregister_scan(self, scan, now)
    }
    fn pin(&mut self, page: PageId) {
        ShardedPool::pin(self, page)
    }
    fn unpin(&mut self, page: PageId) {
        ShardedPool::unpin(self, page)
    }
    fn candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        ShardedPool::prefetch_candidates(self, budget, now)
    }
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        ShardedPool::admit_prefetch(self, page, now)
    }
    fn stats(&self) -> BufferStats {
        ShardedPool::stats(self)
    }
}

/// Generates a random trace over `pages` page ids with registered scans,
/// progress reports, pins (bounded so the pool can always admit) and
/// prefetch probes.
fn random_trace(rng: &mut Rng, pages: u64, capacity: usize, steps: usize) -> Vec<Step> {
    let mut trace = Vec::with_capacity(steps);
    let mut live_scans: Vec<(usize, Vec<u64>, usize)> = Vec::new(); // (index, plan, cursor)
    let mut registered = 0usize;
    let mut pinned: Vec<u64> = Vec::new();
    let max_pinned = capacity.saturating_sub(2).min(3);
    for _ in 0..steps {
        match rng.below(16) {
            0 => {
                // Register a scan over a random contiguous-ish page window.
                let len = 2 + rng.below(pages.min(12)) as usize;
                let start = rng.below(pages);
                let plan: Vec<u64> = (0..len as u64).map(|i| (start + i) % pages).collect();
                trace.push(Step::Register {
                    pages: plan.clone(),
                    tuples_per_page: 100,
                });
                live_scans.push((registered, plan, 0));
                registered += 1;
            }
            1 if !live_scans.is_empty() => {
                let idx = rng.below(live_scans.len() as u64) as usize;
                let (scan, _, _) = live_scans.remove(idx);
                trace.push(Step::Unregister { scan });
            }
            2 if !live_scans.is_empty() => {
                let idx = rng.below(live_scans.len() as u64) as usize;
                let (scan, _, cursor) = &live_scans[idx];
                trace.push(Step::Report {
                    scan: *scan,
                    tuples: *cursor as u64 * 100,
                });
            }
            3 if pinned.len() < max_pinned => {
                let page = rng.below(pages);
                pinned.push(page);
                trace.push(Step::Pin { page });
            }
            4 if !pinned.is_empty() => {
                let idx = rng.below(pinned.len() as u64) as usize;
                let page = pinned.remove(idx);
                trace.push(Step::Unpin { page });
            }
            5 => trace.push(Step::Prefetch {
                budget: 1 + rng.below(6) as usize,
            }),
            6 => trace.push(Step::Advance {
                millis: rng.below(400),
            }),
            n if n < 12 && !live_scans.is_empty() => {
                // Advance a scan along its plan (the PBM-relevant pattern).
                let idx = rng.below(live_scans.len() as u64) as usize;
                let (scan, plan, cursor) = &mut live_scans[idx];
                let page = plan[*cursor % plan.len()];
                *cursor += 1;
                trace.push(Step::Access {
                    scan: Some(*scan),
                    page,
                });
            }
            _ => trace.push(Step::Access {
                scan: None,
                page: rng.below(pages),
            }),
        }
    }
    // Unpin everything so later replays (and clears) stay comparable.
    for page in pinned {
        trace.push(Step::Unpin { page });
    }
    trace
}

/// Replays `trace` against `pool`, returning everything observable.
fn replay(pool: &mut dyn TracePool, trace: &[Step]) -> (Vec<Observation>, BufferStats) {
    let mut observations = Vec::with_capacity(trace.len());
    let mut scan_ids: Vec<ScanId> = Vec::new();
    let mut now = VirtualInstant::EPOCH;
    for step in trace {
        match step {
            Step::Register {
                pages,
                tuples_per_page,
            } => {
                let id = pool.register(&plan_over(pages, *tuples_per_page), now);
                scan_ids.push(id);
                observations.push(Observation::ScanId(id));
            }
            Step::Access { scan, page } => {
                let scan = scan.map(|idx| scan_ids[idx]);
                observations.push(Observation::Outcome(pool.request(
                    PageId::new(*page),
                    scan,
                    now,
                )));
            }
            Step::Report { scan, tuples } => pool.report(scan_ids[*scan], *tuples, now),
            Step::Unregister { scan } => pool.unregister(scan_ids[*scan], now),
            Step::Pin { page } => pool.pin(PageId::new(*page)),
            Step::Unpin { page } => pool.unpin(PageId::new(*page)),
            Step::Prefetch { budget } => {
                let candidates = pool.candidates(*budget, now);
                let admitted = candidates
                    .iter()
                    .map(|&p| pool.admit_prefetch(p, now))
                    .collect();
                observations.push(Observation::Candidates(candidates, admitted));
            }
            Step::Advance { millis } => {
                now = VirtualInstant::from_nanos(now.as_nanos() + millis * 1_000_000);
            }
        }
    }
    (observations, pool.stats())
}

type PolicyFactory = fn() -> Box<dyn ReplacementPolicy>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("lru", || Box::new(LruPolicy::new())),
        ("pbm", || {
            Box::new(PbmPolicy::new(PbmConfig {
                default_scan_speed: 10_000.0,
                ..Default::default()
            }))
        }),
        ("pbm-lru", || {
            Box::new(PbmLruPolicy::new(PbmLruConfig::default()))
        }),
    ]
}

#[test]
fn any_trace_is_shard_count_invariant_per_policy() {
    let cases = if cfg!(debug_assertions) { 12 } else { 40 };
    for case in 0..cases {
        let mut rng = Rng::new(0x5eed_0000 + case * 7919);
        let capacity = 2 + rng.below(24) as usize;
        let pages = capacity as u64 / 2 + rng.below(3 * capacity as u64 + 8);
        let steps = 300;
        let trace = random_trace(&mut rng, pages, capacity, steps);

        for (name, make_policy) in policies() {
            let mut reference = BufferPool::new(capacity, 1024, make_policy());
            let (expected_obs, expected_stats) = replay(&mut reference, &trace);
            assert!(
                expected_stats.hits + expected_stats.misses > 0,
                "case {case}: trace exercised no accesses"
            );
            for shards in [1usize, 2, 8] {
                let mut pool = ShardedPool::new(capacity, 1024, make_policy(), shards);
                let (obs, stats) = replay(&mut pool, &trace);
                assert_eq!(
                    stats, expected_stats,
                    "case {case} policy {name} shards {shards}: statistics diverged \
                     (hits/misses/evictions/io must be byte-identical)"
                );
                assert_eq!(
                    obs, expected_obs,
                    "case {case} policy {name} shards {shards}: outcomes diverged"
                );
            }
        }
    }
}

/// The same property through the *engine*: a query workload on sharded
/// engines does exactly the I/O of the single-shard engine. (The trace
/// property above covers the pool in isolation; this covers the wiring.)
#[test]
fn engine_io_is_shard_count_invariant_for_sequential_queries() {
    use scanshare::prelude::*;

    let storage = Storage::with_seed(2048, 1_000, 23);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "t",
                vec![
                    ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                    ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
                ],
                40_000,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Constant(5),
            ],
        )
        .unwrap();
    let storage = Arc::new(storage);

    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        let mut reference: Option<BufferStats> = None;
        for shards in [1usize, 2, 8] {
            let engine = Engine::new(
                Arc::clone(&storage),
                ScanShareConfig {
                    page_size_bytes: 2048,
                    chunk_tuples: 1_000,
                    buffer_pool_bytes: 24 * 2048, // pressure: ~24 of ~293 pages
                    policy,
                    pool_shards: shards,
                    ..Default::default()
                },
            )
            .unwrap();
            // Sequential (single-threaded) query mix: identical access
            // order for every shard count.
            for round in 0..2 {
                let count = engine
                    .query(table)
                    .columns(["k", "v"])
                    .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                    .run()
                    .unwrap()[&0]
                    .count;
                assert_eq!(count, 40_000, "{policy} shards {shards} round {round}");
            }
            let stats = engine.buffer_stats();
            assert!(stats.evictions > 0, "{policy}: no replacement pressure");
            match &reference {
                None => reference = Some(stats),
                Some(expected) => assert_eq!(
                    *expected, stats,
                    "{policy} shards {shards}: engine-level I/O accounting diverged"
                ),
            }
        }
    }
}
