//! The sharding-transparency property: for *any* trace, a `ShardedPool`
//! with any shard count produces exactly the outcomes, statistics and
//! prefetch decisions of the single-threaded `BufferPool` reference — per
//! policy, byte for byte.
//!
//! This is the invariant the engine's I/O accounting rests on: partitioning
//! the page table across locks must change contention only, never *what*
//! is read. The traces are randomized (deterministic xorshift, like the
//! other property tests in this workspace): interleaved scans with page
//! plans, progress reports, scanless accesses, pins, prefetch admissions
//! and virtual-time advances, replayed under replacement pressure. The
//! trace grammar and replayer live in `pool_harness` and are shared with
//! `policy_zoo.rs`, which runs the same property for CLOCK and SIEVE.

mod pool_harness;

use std::sync::Arc;

use pool_harness::{random_trace, replay, Rng};
use scanshare::core::bufferpool::BufferPool;
use scanshare::core::lru::LruPolicy;
use scanshare::core::pbm::{PbmConfig, PbmPolicy};
use scanshare::core::pbm_lru::{PbmLruConfig, PbmLruPolicy};
use scanshare::core::policy::ReplacementPolicy;
use scanshare::core::sharded::ShardedPool;

type PolicyFactory = fn() -> Box<dyn ReplacementPolicy>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        ("lru", || Box::new(LruPolicy::new())),
        ("pbm", || {
            Box::new(PbmPolicy::new(PbmConfig {
                default_scan_speed: 10_000.0,
                ..Default::default()
            }))
        }),
        ("pbm-lru", || {
            Box::new(PbmLruPolicy::new(PbmLruConfig::default()))
        }),
    ]
}

#[test]
fn any_trace_is_shard_count_invariant_per_policy() {
    let cases = if cfg!(debug_assertions) { 12 } else { 40 };
    for case in 0..cases {
        let mut rng = Rng::new(0x5eed_0000 + case * 7919);
        let capacity = 2 + rng.below(24) as usize;
        let pages = capacity as u64 / 2 + rng.below(3 * capacity as u64 + 8);
        let steps = 300;
        let trace = random_trace(&mut rng, pages, capacity, steps);

        for (name, make_policy) in policies() {
            let mut reference = BufferPool::new(capacity, 1024, make_policy());
            let (expected_obs, expected_stats) = replay(&mut reference, &trace);
            assert!(
                expected_stats.hits + expected_stats.misses > 0,
                "case {case}: trace exercised no accesses"
            );
            for shards in [1usize, 2, 8] {
                let mut pool = ShardedPool::new(capacity, 1024, make_policy(), shards);
                let (obs, stats) = replay(&mut pool, &trace);
                assert_eq!(
                    stats, expected_stats,
                    "case {case} policy {name} shards {shards}: statistics diverged \
                     (hits/misses/evictions/io must be byte-identical)"
                );
                assert_eq!(
                    obs, expected_obs,
                    "case {case} policy {name} shards {shards}: outcomes diverged"
                );
            }
        }
    }
}

/// The same property through the *engine*: a query workload on sharded
/// engines does exactly the I/O of the single-shard engine. (The trace
/// property above covers the pool in isolation; this covers the wiring.)
#[test]
fn engine_io_is_shard_count_invariant_for_sequential_queries() {
    use scanshare::prelude::*;

    let storage = Storage::with_seed(2048, 1_000, 23);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "t",
                vec![
                    ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
                    ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
                ],
                40_000,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Constant(5),
            ],
        )
        .unwrap();
    let storage = Arc::new(storage);

    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        let mut reference: Option<BufferStats> = None;
        for shards in [1usize, 2, 8] {
            let engine = Engine::new(
                Arc::clone(&storage),
                ScanShareConfig {
                    page_size_bytes: 2048,
                    chunk_tuples: 1_000,
                    buffer_pool_bytes: 24 * 2048, // pressure: ~24 of ~293 pages
                    policy,
                    pool_shards: shards,
                    ..Default::default()
                },
            )
            .unwrap();
            // Sequential (single-threaded) query mix: identical access
            // order for every shard count.
            for round in 0..2 {
                let count = engine
                    .query(table)
                    .columns(["k", "v"])
                    .aggregate(AggrSpec::global(vec![Aggregate::Count]))
                    .run()
                    .unwrap()[&0]
                    .count;
                assert_eq!(count, 40_000, "{policy} shards {shards} round {round}");
            }
            let stats = engine.buffer_stats();
            assert!(stats.evictions > 0, "{policy}: no replacement pressure");
            match &reference {
                None => reference = Some(stats),
                Some(expected) => assert_eq!(
                    *expected, stats,
                    "{policy} shards {shards}: engine-level I/O accounting diverged"
                ),
            }
        }
    }
}
