//! Concurrency stress test: many threads firing builder-API queries at one
//! shared `Engine`, under every policy and with the asynchronous prefetcher
//! both off and on.
//!
//! Asserts three things per configuration:
//! 1. the run completes (no deadlock between the shared backend, the
//!    virtual clock and the I/O device);
//! 2. every thread's aggregates are exactly right, no matter how the
//!    sessions interleave on the shared buffer manager;
//! 3. the metrics add up across sessions: the buffer manager's total I/O
//!    volume equals what the device transferred, and the device's
//!    demand/prefetch split sums to its total.

use std::sync::Arc;

use scanshare::prelude::*;

const TUPLES: u64 = 20_000;
const THREADS: u64 = 4;
const ROUNDS: u64 = 2;

fn build_engine_with_window(
    policy: PolicyKind,
    prefetch_pages: usize,
    pool_shards: usize,
    cscan_load_window: usize,
) -> (Arc<Engine>, TableId) {
    let storage = Storage::with_seed(1024, 2_000, 7);
    let spec = TableSpec::new(
        "t",
        vec![
            ColumnSpec::with_width("k", ColumnType::Int64, 8.0),
            ColumnSpec::with_width("v", ColumnType::Int64, 4.0),
        ],
        TUPLES,
    );
    let table = storage
        .create_table_with_data(
            spec,
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Constant(7),
            ],
        )
        .unwrap();
    let config = ScanShareConfig {
        page_size_bytes: 1024,
        chunk_tuples: 2_000,
        buffer_pool_bytes: 64 * 1024, // 64 pages: real replacement pressure
        policy,
        prefetch_pages,
        pool_shards,
        cscan_load_window,
        ..Default::default()
    };
    (Engine::new(storage, config).unwrap(), table)
}

/// One thread's query mix; returns after asserting every answer.
fn run_session(engine: &Arc<Engine>, table: TableId, thread: u64) {
    for round in 0..ROUNDS {
        // Full-table count, alternating between inline and parallel plans so
        // scans from nested worker threads also hit the shared backend.
        let workers = if (thread + round) % 2 == 0 { 1 } else { 2 };
        let count = engine
            .query(table)
            .columns(["k"])
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .parallelism(workers as usize)
            .run()
            .unwrap()[&0]
            .count;
        assert_eq!(count, TUPLES, "thread {thread} round {round}");

        // A range sum with a closed-form answer, staggered per thread.
        let lo = 1_000 * thread;
        let hi = lo + 2_000;
        let sum = engine
            .query(table)
            .columns(["k", "v"])
            .range(lo..hi)
            .aggregate(AggrSpec::global(vec![Aggregate::Sum(0), Aggregate::Count]))
            .run()
            .unwrap();
        let expected: i64 = (lo..hi).map(|k| k as i64).sum();
        assert_eq!(sum[&0].accumulators[0], expected, "thread {thread}");
        assert_eq!(sum[&0].count, 2_000, "thread {thread}");

        // A filtered count: k <= 999 qualifies exactly 1000 rows.
        let filtered = engine
            .query(table)
            .columns(["k"])
            .filter(Predicate::new(0, CompareOp::Le, 999))
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .run()
            .unwrap()[&0]
            .count;
        assert_eq!(filtered, 1_000, "thread {thread} round {round}");
    }
}

fn stress(policy: PolicyKind, prefetch_pages: usize) {
    stress_sharded(policy, prefetch_pages, 1, THREADS);
}

fn stress_sharded(policy: PolicyKind, prefetch_pages: usize, pool_shards: usize, threads: u64) {
    stress_with_window(policy, prefetch_pages, pool_shards, threads, 1);
}

fn stress_with_window(
    policy: PolicyKind,
    prefetch_pages: usize,
    pool_shards: usize,
    threads: u64,
    cscan_load_window: usize,
) {
    let (engine, table) =
        build_engine_with_window(policy, prefetch_pages, pool_shards, cscan_load_window);
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let engine = Arc::clone(&engine);
            scope.spawn(move || run_session(&engine, table, thread));
        }
    });

    // Metrics accounting sums across every session and worker thread.
    let buffer = engine.buffer_stats();
    let device = engine.device().stats();
    assert!(
        buffer.hits + buffer.misses > 0,
        "{policy}: no page requests"
    );
    assert!(buffer.io_bytes > 0, "{policy}: no I/O recorded");
    assert_eq!(
        buffer.io_bytes, device.bytes_read,
        "{policy} (window {prefetch_pages}): buffer-manager I/O must equal \
         what the device transferred"
    );
    assert_eq!(
        device.demand_bytes + device.prefetch_bytes,
        device.bytes_read,
        "{policy}: demand + prefetch bytes must sum to the total"
    );
    assert_eq!(
        device.demand_requests + device.prefetch_requests,
        device.requests,
        "{policy}: demand + prefetch requests must sum to the total"
    );
    assert_eq!(
        buffer.prefetch_io_bytes, device.prefetch_bytes,
        "{policy}: pool and device must agree on the prefetch volume"
    );
    if prefetch_pages == 0 {
        assert_eq!(
            device.prefetch_bytes, 0,
            "{policy}: window 0 never prefetches"
        );
    }
    if policy == PolicyKind::Opt {
        // The demand reference trace stays replayable under Belady's OPT.
        let opt = engine.opt_result().unwrap();
        assert!(opt.misses > 0);
    }
}

#[test]
fn concurrent_queries_under_lru() {
    stress(PolicyKind::Lru, 0);
    stress(PolicyKind::Lru, 4);
}

#[test]
fn concurrent_queries_under_pbm() {
    stress(PolicyKind::Pbm, 0);
    stress(PolicyKind::Pbm, 4);
}

#[test]
fn concurrent_queries_under_opt_trace_recording() {
    stress(PolicyKind::Opt, 0);
    stress(PolicyKind::Opt, 4);
}

#[test]
fn concurrent_queries_under_cooperative_scans() {
    // The ABM ignores the page-level prefetch window; both settings must
    // behave identically.
    stress(PolicyKind::CScan, 0);
    stress(PolicyKind::CScan, 4);
}

#[test]
fn concurrent_queries_on_a_sharded_pool_eight_streams() {
    // The multi-stream throughput configuration of the `throughput_scaling`
    // figure: 8 session threads on a 4-shard pool, with and without the
    // prefetch window, under every pooled policy. Exact aggregates and the
    // cross-layer pool == device accounting must survive the sharded fast
    // path (buffered policy events, per-shard statistics).
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::Opt] {
        stress_sharded(policy, 0, 4, 8);
        stress_sharded(policy, 4, 4, 8);
    }
}

#[test]
fn concurrent_queries_shard_sweep_under_pbm() {
    // Shard counts beside the pool's page count (64) and beyond the thread
    // count exercise the all-shard lock paths (eviction, registration).
    for shards in [2usize, 8, 64] {
        stress_sharded(PolicyKind::Pbm, 0, shards, 4);
    }
}

#[test]
fn concurrent_queries_cscan_eight_streams_across_directory_shards() {
    // Cooperative Scans in the same multi-stream configuration the pooled
    // policies run: 8 session threads on the decomposed ABM, with the chunk
    // directory at 1 shard (fully serialized) and 4 shards (the
    // throughput_scaling configuration). Exact aggregates and the
    // cross-layer ABM == device I/O accounting must survive the sharded
    // delivery fast path and its buffered membership events.
    for shards in [1usize, 4] {
        stress_sharded(PolicyKind::CScan, 0, shards, 8);
    }
}

#[test]
fn concurrent_queries_cscan_with_deep_load_window() {
    // A load window > 1 keeps several chunk transfers in flight while the
    // 8 streams consume; results must stay exact and the ABM's accounting
    // must still match the device byte for byte.
    stress_with_window(PolicyKind::CScan, 0, 4, 8, 4);
}
