//! Randomized differential testing of the vectorized query pipelines: a
//! naive row-at-a-time reference executor, computed from raw `Storage`
//! values, must agree **byte for byte** with the engine's operators —
//! filters × multi-key group-by × top-k × broadcast hash join — under every
//! replacement policy (including CLOCK and SIEVE via the registry), at
//! shard counts 1 and 4, across parallelism degrees, over many seeds.
//!
//! The reference executor shares no code with the engine's batch pipeline:
//! it reads column values through `Storage::read_range`, zips them into
//! rows, and evaluates each plan with plain loops and sorts. Agreement is
//! meaningful because the engine's grouped results are ordered maps and its
//! top-k uses a total order, so results are functions of the row multiset —
//! the out-of-order delivery of Cooperative Scans cannot change them.
//!
//! A second test runs randomized scan/join workloads through both the
//! workload driver (real engine) and the discrete-event simulator and
//! asserts they account the identical I/O volume.

mod pool_harness;

use std::collections::BTreeMap;
use std::sync::Arc;

use pool_harness::Rng;
use scanshare::exec::ops::{GroupState, SortOrder};
use scanshare::prelude::*;
use scanshare::storage::datagen::Value;
use scanshare::storage::zone::{ZoneOp, ZonePredicate};
use scanshare::workload::spec::{JoinSpec, QuerySpec, ScanSpec, StreamSpec};

const PAGE: u64 = 4096;
const CHUNK: u64 = 512;
const FACT_ROWS: u64 = 12_000;
const DIM_ROWS: u64 = 7;

const FACT_COLUMNS: [&str; 4] = ["f_key", "f_cat", "f_val", "f_qty"];
const DIM_EXTRAS: [&str; 2] = ["d_bonus", "d_rank"];

/// `fact` (12k rows) and a 7-row `dim` whose key column exactly covers
/// `f_cat`'s 0..=6 domain, so every probe row has exactly one join match.
fn setup(seed: u64) -> (Arc<Storage>, TableId, TableId) {
    let storage = Storage::with_seed(PAGE, CHUNK, 0xd1ff + seed);
    let fact = storage
        .create_table_with_data(
            TableSpec::new(
                "fact",
                vec![
                    ColumnSpec::new("f_key", ColumnType::Int64),
                    ColumnSpec::new("f_cat", ColumnType::Int64),
                    ColumnSpec::new("f_val", ColumnType::Int64),
                    ColumnSpec::new("f_qty", ColumnType::Int64),
                ],
                FACT_ROWS,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Cyclic {
                    period: 7,
                    min: 0,
                    max: 6,
                },
                DataGen::Uniform { min: -50, max: 50 },
                DataGen::Uniform { min: 1, max: 20 },
            ],
        )
        .unwrap();
    let dim = storage
        .create_table_with_data(
            TableSpec::new(
                "dim",
                vec![
                    ColumnSpec::new("d_key", ColumnType::Int64),
                    ColumnSpec::new("d_bonus", ColumnType::Int64),
                    ColumnSpec::new("d_rank", ColumnType::Int64),
                ],
                DIM_ROWS,
            ),
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Sequential {
                    start: 100,
                    step: 10,
                },
                DataGen::Uniform { min: 0, max: 5 },
            ],
        )
        .unwrap();
    (storage, fact, dim)
}

// ---------------------------------------------------------------------------
// Random plans
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Shape {
    /// `.run()`: optional single-column group-by plus aggregates.
    Agg {
        group_by: Option<usize>,
        aggregates: Vec<Aggregate>,
    },
    /// `.group_by(&keys)` + `.run_grouped()`.
    Grouped {
        keys: Vec<usize>,
        aggregates: Vec<Aggregate>,
    },
    /// `.top_k(column, k, order)` + `.rows()`.
    TopK {
        column: usize,
        k: usize,
        order: SortOrder,
    },
}

#[derive(Debug, Clone)]
struct Plan {
    start: u64,
    end: u64,
    filter: Option<Predicate>,
    /// Build-side extra columns; `None` means no join.
    join: Option<Vec<&'static str>>,
    shape: Shape,
    parallelism: usize,
}

fn random_aggregates(rng: &mut Rng, width: usize, n: usize) -> Vec<Aggregate> {
    (0..n)
        .map(|_| {
            let col = rng.below(width as u64) as usize;
            match rng.below(4) {
                0 => Aggregate::Count,
                1 => Aggregate::Sum(col),
                2 => Aggregate::Min(col),
                _ => Aggregate::Max(col),
            }
        })
        .collect()
}

fn random_plan(rng: &mut Rng) -> Plan {
    let start = rng.below(FACT_ROWS);
    let end = (start + 1 + rng.below(FACT_ROWS - start)).min(FACT_ROWS);
    let join = match rng.below(5) {
        0 | 1 => Some(match rng.below(3) {
            0 => vec![],
            1 => vec![DIM_EXTRAS[rng.below(2) as usize]],
            _ => vec!["d_bonus", "d_rank"],
        }),
        _ => None,
    };
    let width = match &join {
        Some(extras) => FACT_COLUMNS.len() + 1 + extras.len(),
        None => FACT_COLUMNS.len(),
    };
    // Filters refer to the probe projection (pre-join), so the column is
    // always one of the four fact columns.
    let filter = (rng.below(2) == 0).then(|| {
        let column = rng.below(FACT_COLUMNS.len() as u64) as usize;
        let op = match rng.below(5) {
            0 => CompareOp::Lt,
            1 => CompareOp::Le,
            2 => CompareOp::Gt,
            3 => CompareOp::Ge,
            _ => CompareOp::Eq,
        };
        let value = rng.below(121) as Value - 60;
        Predicate::new(column, op, value)
    });
    let shape = match rng.below(4) {
        0 => {
            let n = 1 + rng.below(3) as usize;
            Shape::Agg {
                group_by: None,
                aggregates: random_aggregates(rng, width, n),
            }
        }
        1 => {
            let group_by = Some(rng.below(width as u64) as usize);
            let n = 1 + rng.below(2) as usize;
            Shape::Agg {
                group_by,
                aggregates: random_aggregates(rng, width, n),
            }
        }
        2 => {
            let mut keys = vec![rng.below(width as u64) as usize];
            if rng.below(2) == 0 {
                let second = rng.below(width as u64) as usize;
                if !keys.contains(&second) {
                    keys.push(second);
                }
            }
            let n = 1 + rng.below(2) as usize;
            Shape::Grouped {
                keys,
                aggregates: random_aggregates(rng, width, n),
            }
        }
        _ => Shape::TopK {
            column: rng.below(width as u64) as usize,
            k: 1 + rng.below(12) as usize,
            order: if rng.below(2) == 0 {
                SortOrder::Asc
            } else {
                SortOrder::Desc
            },
        },
    };
    Plan {
        start,
        end,
        filter,
        join,
        shape,
        parallelism: 1 + rng.below(3) as usize,
    }
}

// ---------------------------------------------------------------------------
// The naive reference executor
// ---------------------------------------------------------------------------

/// Reads `columns` of `table` row-at-a-time from raw storage values.
fn raw_rows(
    storage: &Arc<Storage>,
    table: TableId,
    columns: &[&str],
    range: TupleRange,
) -> Vec<Vec<Value>> {
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let indices = storage.resolve_columns(table, columns).unwrap();
    let cols: Vec<Vec<Value>> = indices
        .iter()
        .map(|&c| storage.read_range(&layout, &snapshot, c, range).unwrap())
        .collect();
    (0..cols[0].len())
        .map(|row| cols.iter().map(|col| col[row]).collect())
        .collect()
}

fn reference_rows(
    storage: &Arc<Storage>,
    fact: TableId,
    dim: TableId,
    plan: &Plan,
) -> Vec<Vec<Value>> {
    let mut rows = raw_rows(
        storage,
        fact,
        &FACT_COLUMNS,
        TupleRange::new(plan.start, plan.end),
    );
    if let Some(pred) = &plan.filter {
        rows.retain(|row| pred.matches(row[pred.column]));
    }
    if let Some(extras) = &plan.join {
        let mut build_cols = vec!["d_key"];
        build_cols.extend(extras.iter().copied());
        let build = raw_rows(storage, dim, &build_cols, TupleRange::new(0, DIM_ROWS));
        let table: BTreeMap<Value, Vec<Vec<Value>>> = {
            let mut map: BTreeMap<Value, Vec<Vec<Value>>> = BTreeMap::new();
            for row in build {
                map.entry(row[0]).or_default().push(row);
            }
            map
        };
        rows = rows
            .into_iter()
            .flat_map(|probe| {
                table
                    .get(&probe[1]) // f_cat is the join key
                    .into_iter()
                    .flatten()
                    .map(move |build| {
                        let mut joined = probe.clone();
                        joined.extend(build.iter().copied());
                        joined
                    })
            })
            .collect();
    }
    rows
}

fn fold_reference(rows: &[Vec<Value>], aggregates: &[Aggregate], into: &mut GroupState) {
    for row in rows {
        into.count += 1;
        for (acc, agg) in into.accumulators.iter_mut().zip(aggregates) {
            match agg {
                Aggregate::Count => *acc += 1,
                Aggregate::Sum(c) => *acc += row[*c],
                Aggregate::Min(c) => *acc = (*acc).min(row[*c]),
                Aggregate::Max(c) => *acc = (*acc).max(row[*c]),
            }
        }
    }
}

fn empty_state(aggregates: &[Aggregate]) -> GroupState {
    GroupState {
        count: 0,
        accumulators: aggregates
            .iter()
            .map(|a| match a {
                Aggregate::Count | Aggregate::Sum(_) => 0,
                Aggregate::Min(_) => Value::MAX,
                Aggregate::Max(_) => Value::MIN,
            })
            .collect(),
    }
}

/// Runs `plan` against the engine and the reference and asserts byte
/// equality of the result (context goes into the panic message).
fn assert_plan_matches(
    engine: &Arc<Engine>,
    storage: &Arc<Storage>,
    fact: TableId,
    dim: TableId,
    plan: &Plan,
    context: &str,
) {
    let mut query = engine
        .query(fact)
        .columns(FACT_COLUMNS)
        .range(plan.start..plan.end)
        .parallelism(plan.parallelism);
    if let Some(pred) = &plan.filter {
        query = query.filter(*pred);
    }
    if let Some(extras) = &plan.join {
        query = query
            .join(dim, 1, "d_key")
            .join_columns(extras.iter().copied());
    }
    let rows = reference_rows(storage, fact, dim, plan);
    match &plan.shape {
        Shape::Agg {
            group_by,
            aggregates,
        } => {
            let got = query
                .aggregate(AggrSpec {
                    group_by: *group_by,
                    aggregates: aggregates.clone(),
                })
                .run()
                .unwrap();
            let mut expected: BTreeMap<Value, GroupState> = BTreeMap::new();
            for row in &rows {
                let key = group_by.map(|c| row[c]).unwrap_or(0);
                let entry = expected
                    .entry(key)
                    .or_insert_with(|| empty_state(aggregates));
                fold_reference(std::slice::from_ref(row), aggregates, entry);
            }
            assert_eq!(got, expected, "{context}: aggregate diverged for {plan:?}");
        }
        Shape::Grouped { keys, aggregates } => {
            let got = query
                .group_by(keys)
                .aggregate(AggrSpec::global(aggregates.clone()))
                .run_grouped()
                .unwrap();
            let mut expected: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
            for row in &rows {
                let key: Vec<Value> = keys.iter().map(|&c| row[c]).collect();
                let entry = expected
                    .entry(key)
                    .or_insert_with(|| empty_state(aggregates));
                fold_reference(std::slice::from_ref(row), aggregates, entry);
            }
            assert_eq!(got, expected, "{context}: group-by diverged for {plan:?}");
        }
        Shape::TopK { column, k, order } => {
            let got = query.top_k(*column, *k, *order).rows().unwrap();
            let mut expected = rows;
            expected.sort_unstable_by(|a, b| {
                let primary = match order {
                    SortOrder::Asc => a[*column].cmp(&b[*column]),
                    SortOrder::Desc => b[*column].cmp(&a[*column]),
                };
                primary.then_with(|| a.cmp(b))
            });
            expected.truncate(*k);
            assert_eq!(got, expected, "{context}: top-k diverged for {plan:?}");
        }
    }
}

/// The five policies of the zoo as engine configurations; `clock` and
/// `sieve` resolve through the `PolicyRegistry` by name.
fn policy_configs() -> Vec<(&'static str, ScanShareConfig)> {
    let base = ScanShareConfig {
        page_size_bytes: PAGE,
        chunk_tuples: CHUNK,
        buffer_pool_bytes: 20 * PAGE, // pressure: the pool is far smaller than the fact table
        ..Default::default()
    };
    vec![
        (
            "lru",
            ScanShareConfig {
                policy: PolicyKind::Lru,
                ..base.clone()
            },
        ),
        (
            "pbm",
            ScanShareConfig {
                policy: PolicyKind::Pbm,
                ..base.clone()
            },
        ),
        (
            "cscan",
            ScanShareConfig {
                policy: PolicyKind::CScan,
                ..base.clone()
            },
        ),
        ("clock", base.clone().with_custom_policy("clock")),
        ("sieve", base.with_custom_policy("sieve")),
    ]
}

#[test]
fn random_plans_match_the_reference_executor_under_every_policy() {
    let seeds = if cfg!(debug_assertions) { 5 } else { 8 };
    let plans_per_seed = 10;
    for seed in 0..seeds {
        let (storage, fact, dim) = setup(seed);
        let mut rng = Rng::new(0x9e37_79b9 + seed * 104_729);
        let plans: Vec<Plan> = (0..plans_per_seed).map(|_| random_plan(&mut rng)).collect();
        for (name, config) in policy_configs() {
            for shards in [1usize, 4] {
                let engine = Engine::new(
                    Arc::clone(&storage),
                    ScanShareConfig {
                        pool_shards: shards,
                        ..config.clone()
                    },
                )
                .unwrap();
                for (i, plan) in plans.iter().enumerate() {
                    let context = format!("seed {seed} plan {i} policy {name} shards {shards}");
                    assert_plan_matches(&engine, &storage, fact, dim, plan, &context);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine == simulator I/O parity over randomized workloads
// ---------------------------------------------------------------------------

/// A random single-stream workload of plain, filtered and join queries.
/// Single stream + parallelism 1 keeps the request sequence deterministic,
/// so I/O parity can be asserted byte for byte.
fn random_workload(rng: &mut Rng, fact: TableId, dim: TableId) -> WorkloadSpec {
    let queries = (0..4)
        .map(|i| {
            let start = rng.below(FACT_ROWS / 2);
            let end = start + FACT_ROWS / 4 + rng.below(FACT_ROWS - start - FACT_ROWS / 4);
            let predicate = (rng.below(3) == 0).then(|| {
                // f_key is sequential, so range predicates prune zones.
                ZonePredicate::new(0, ZoneOp::Lt, rng.below(FACT_ROWS) as Value)
            });
            let probe = ScanSpec {
                table: fact,
                columns: vec![0, 1, 2, 3],
                ranges: RangeList::single(start, end),
                predicate,
            };
            let join = rng.below(2) == 0;
            QuerySpec {
                label: format!("q{i}"),
                scans: if join {
                    vec![
                        ScanSpec {
                            table: dim,
                            columns: vec![0, 1],
                            ranges: RangeList::single(0, DIM_ROWS),
                            predicate: None,
                        },
                        probe,
                    ]
                } else {
                    vec![probe]
                },
                cpu_factor: 1.0,
                join: join.then_some(JoinSpec {
                    left_col: 1, // f_cat within the probe projection
                    right_col: 0,
                }),
            }
        })
        .collect();
    WorkloadSpec::read_only(
        "query-differential",
        vec![StreamSpec {
            label: "s0".into(),
            queries,
        }],
    )
}

#[test]
fn random_workloads_do_identical_io_on_engine_and_simulator() {
    let seeds = if cfg!(debug_assertions) { 5 } else { 6 };
    for seed in 0..seeds {
        let (storage, fact, dim) = setup(100 + seed);
        let mut rng = Rng::new(0x051b_077e + seed * 7919);
        let workload = random_workload(&mut rng, fact, dim);
        for (name, config) in policy_configs() {
            let sim = Simulation::new(
                Arc::clone(&storage),
                SimConfig {
                    scanshare: config.clone(),
                    cores: 4,
                    sharing_sample_interval: None,
                },
            )
            .unwrap()
            .run(&workload)
            .unwrap();
            for shards in [1usize, 4] {
                let engine = Engine::new(
                    Arc::clone(&storage),
                    ScanShareConfig {
                        pool_shards: shards,
                        ..config.clone()
                    },
                )
                .unwrap();
                let report = WorkloadDriver::new(engine).run(&workload).unwrap();
                assert!(
                    report.stream_errors.is_empty(),
                    "seed {seed} policy {name} shards {shards}: {:?}",
                    report.stream_errors
                );
                assert_eq!(
                    report.buffer.io_bytes, sim.total_io_bytes,
                    "seed {seed} policy {name} shards {shards}: I/O diverged"
                );
            }
        }
    }
}
