//! Shared buffer-pool trace harness for the property tests: a deterministic
//! RNG, a trace grammar over pool operations, a `TracePool` adapter that
//! papers over `BufferPool` (`&mut self`) vs `ShardedPool` (internally
//! synchronized), and a replayer that records everything observable.
//!
//! Used by `sharded_pool_properties.rs` (sharding transparency for the
//! built-in policies) and `policy_zoo.rs` (the same property for CLOCK and
//! SIEVE, plus policy-specific invariants).

#![allow(dead_code)] // each test binary uses a subset of the harness

use scanshare::common::{ColumnId, PageId, ScanId, TableId, TupleRange, VirtualInstant};
use scanshare::core::bufferpool::{AccessOutcome, BufferPool};
use scanshare::core::sharded::ShardedPool;
use scanshare::core::BufferStats;
use scanshare::storage::layout::{PageDescriptor, ScanPagePlan};

/// Deterministic xorshift64* generator.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// One step of a trace. Scan handles are *indices* into the registration
/// order (the pools assign their own `ScanId`s; equal call sequences make
/// them equal, which the replay asserts).
#[derive(Debug, Clone)]
pub enum Step {
    Register {
        pages: Vec<u64>,
        tuples_per_page: u64,
    },
    Access {
        scan: Option<usize>,
        page: u64,
    },
    Report {
        scan: usize,
        tuples: u64,
    },
    Unregister {
        scan: usize,
    },
    Pin {
        page: u64,
    },
    Unpin {
        page: u64,
    },
    Prefetch {
        budget: usize,
    },
    Advance {
        millis: u64,
    },
}

/// What a replay observed; compared across pool implementations.
#[derive(Debug, PartialEq)]
pub enum Observation {
    Outcome(AccessOutcome),
    ScanId(ScanId),
    Candidates(Vec<PageId>, Vec<bool>),
}

pub fn plan_over(pages: &[u64], tuples_per_page: u64) -> ScanPagePlan {
    let descs: Vec<PageDescriptor> = pages
        .iter()
        .enumerate()
        .map(|(i, &page)| PageDescriptor {
            page: PageId::new(page),
            column: ColumnId::new(0),
            column_index: 0,
            sid_range: TupleRange::new(
                i as u64 * tuples_per_page,
                (i as u64 + 1) * tuples_per_page,
            ),
            tuples_behind: i as u64 * tuples_per_page,
            tuple_count: tuples_per_page,
        })
        .collect();
    ScanPagePlan {
        table: TableId::new(0),
        total_tuples: pages.len() as u64 * tuples_per_page,
        pages: descs,
    }
}

/// The trace operations a pool under test must support. `BufferPool` takes
/// `&mut self`, `ShardedPool` synchronizes internally; the trait papers
/// over that difference for the replay.
pub trait TracePool {
    fn register(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId;
    fn request(&mut self, page: PageId, scan: Option<ScanId>, now: VirtualInstant)
        -> AccessOutcome;
    fn report(&mut self, scan: ScanId, tuples: u64, now: VirtualInstant);
    fn unregister(&mut self, scan: ScanId, now: VirtualInstant);
    fn pin(&mut self, page: PageId);
    fn unpin(&mut self, page: PageId);
    fn candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId>;
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool;
    fn stats(&self) -> BufferStats;
}

impl TracePool for BufferPool {
    fn register(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        BufferPool::register_scan(self, plan, now)
    }
    fn request(
        &mut self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> AccessOutcome {
        BufferPool::request_page(self, page, scan, now).expect("pins are bounded")
    }
    fn report(&mut self, scan: ScanId, tuples: u64, now: VirtualInstant) {
        BufferPool::report_scan_position(self, scan, tuples, now)
    }
    fn unregister(&mut self, scan: ScanId, now: VirtualInstant) {
        BufferPool::unregister_scan(self, scan, now)
    }
    fn pin(&mut self, page: PageId) {
        BufferPool::pin(self, page)
    }
    fn unpin(&mut self, page: PageId) {
        BufferPool::unpin(self, page)
    }
    fn candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        BufferPool::prefetch_candidates(self, budget, now)
    }
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        BufferPool::admit_prefetch(self, page, now)
    }
    fn stats(&self) -> BufferStats {
        BufferPool::stats(self)
    }
}

impl TracePool for ShardedPool {
    fn register(&mut self, plan: &ScanPagePlan, now: VirtualInstant) -> ScanId {
        ShardedPool::register_scan(self, plan, now)
    }
    fn request(
        &mut self,
        page: PageId,
        scan: Option<ScanId>,
        now: VirtualInstant,
    ) -> AccessOutcome {
        ShardedPool::request_page(self, page, scan, now).expect("pins are bounded")
    }
    fn report(&mut self, scan: ScanId, tuples: u64, now: VirtualInstant) {
        ShardedPool::report_scan_position(self, scan, tuples, now)
    }
    fn unregister(&mut self, scan: ScanId, now: VirtualInstant) {
        ShardedPool::unregister_scan(self, scan, now)
    }
    fn pin(&mut self, page: PageId) {
        ShardedPool::pin(self, page)
    }
    fn unpin(&mut self, page: PageId) {
        ShardedPool::unpin(self, page)
    }
    fn candidates(&mut self, budget: usize, now: VirtualInstant) -> Vec<PageId> {
        ShardedPool::prefetch_candidates(self, budget, now)
    }
    fn admit_prefetch(&mut self, page: PageId, now: VirtualInstant) -> bool {
        ShardedPool::admit_prefetch(self, page, now)
    }
    fn stats(&self) -> BufferStats {
        ShardedPool::stats(self)
    }
}

/// Generates a random trace over `pages` page ids with registered scans,
/// progress reports, pins (bounded so the pool can always admit) and
/// prefetch probes.
pub fn random_trace(rng: &mut Rng, pages: u64, capacity: usize, steps: usize) -> Vec<Step> {
    let mut trace = Vec::with_capacity(steps);
    let mut live_scans: Vec<(usize, Vec<u64>, usize)> = Vec::new(); // (index, plan, cursor)
    let mut registered = 0usize;
    let mut pinned: Vec<u64> = Vec::new();
    let max_pinned = capacity.saturating_sub(2).min(3);
    for _ in 0..steps {
        match rng.below(16) {
            0 => {
                // Register a scan over a random contiguous-ish page window.
                let len = 2 + rng.below(pages.min(12)) as usize;
                let start = rng.below(pages);
                let plan: Vec<u64> = (0..len as u64).map(|i| (start + i) % pages).collect();
                trace.push(Step::Register {
                    pages: plan.clone(),
                    tuples_per_page: 100,
                });
                live_scans.push((registered, plan, 0));
                registered += 1;
            }
            1 if !live_scans.is_empty() => {
                let idx = rng.below(live_scans.len() as u64) as usize;
                let (scan, _, _) = live_scans.remove(idx);
                trace.push(Step::Unregister { scan });
            }
            2 if !live_scans.is_empty() => {
                let idx = rng.below(live_scans.len() as u64) as usize;
                let (scan, _, cursor) = &live_scans[idx];
                trace.push(Step::Report {
                    scan: *scan,
                    tuples: *cursor as u64 * 100,
                });
            }
            3 if pinned.len() < max_pinned => {
                let page = rng.below(pages);
                pinned.push(page);
                trace.push(Step::Pin { page });
            }
            4 if !pinned.is_empty() => {
                let idx = rng.below(pinned.len() as u64) as usize;
                let page = pinned.remove(idx);
                trace.push(Step::Unpin { page });
            }
            5 => trace.push(Step::Prefetch {
                budget: 1 + rng.below(6) as usize,
            }),
            6 => trace.push(Step::Advance {
                millis: rng.below(400),
            }),
            n if n < 12 && !live_scans.is_empty() => {
                // Advance a scan along its plan (the PBM-relevant pattern).
                let idx = rng.below(live_scans.len() as u64) as usize;
                let (scan, plan, cursor) = &mut live_scans[idx];
                let page = plan[*cursor % plan.len()];
                *cursor += 1;
                trace.push(Step::Access {
                    scan: Some(*scan),
                    page,
                });
            }
            _ => trace.push(Step::Access {
                scan: None,
                page: rng.below(pages),
            }),
        }
    }
    // Unpin everything so later replays (and clears) stay comparable.
    for page in pinned {
        trace.push(Step::Unpin { page });
    }
    trace
}

/// Replays `trace` against `pool`, returning everything observable.
pub fn replay(pool: &mut dyn TracePool, trace: &[Step]) -> (Vec<Observation>, BufferStats) {
    let mut observations = Vec::with_capacity(trace.len());
    let mut scan_ids: Vec<ScanId> = Vec::new();
    let mut now = VirtualInstant::EPOCH;
    for step in trace {
        match step {
            Step::Register {
                pages,
                tuples_per_page,
            } => {
                let id = pool.register(&plan_over(pages, *tuples_per_page), now);
                scan_ids.push(id);
                observations.push(Observation::ScanId(id));
            }
            Step::Access { scan, page } => {
                let scan = scan.map(|idx| scan_ids[idx]);
                observations.push(Observation::Outcome(pool.request(
                    PageId::new(*page),
                    scan,
                    now,
                )));
            }
            Step::Report { scan, tuples } => pool.report(scan_ids[*scan], *tuples, now),
            Step::Unregister { scan } => pool.unregister(scan_ids[*scan], now),
            Step::Pin { page } => pool.pin(PageId::new(*page)),
            Step::Unpin { page } => pool.unpin(PageId::new(*page)),
            Step::Prefetch { budget } => {
                let candidates = pool.candidates(*budget, now);
                let admitted = candidates
                    .iter()
                    .map(|&p| pool.admit_prefetch(p, now))
                    .collect();
                observations.push(Observation::Candidates(candidates, admitted));
            }
            Step::Advance { millis } => {
                now = VirtualInstant::from_nanos(now.as_nanos() + millis * 1_000_000);
            }
        }
    }
    (observations, pool.stats())
}
