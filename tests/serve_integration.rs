//! End-to-end tests of the serving layer over a Unix-domain socket:
//! wire results match in-process engine results across concurrent
//! sessions, protocol violations and bad queries come back as typed
//! error frames, admission control sheds under overload, and shutdown
//! mid-query is clean.

#![cfg(unix)]

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::serve::loadgen::{self, LoadgenConfig, Target};
use scanshare::serve::protocol::{read_frame, Message, PROTOCOL_VERSION};

const PAGE: u64 = 64 * 1024;
const CHUNK: u64 = 10_000;
const TUPLES: u64 = 200_000;

static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Self-cleaning tempdir (no external tempfile dependency).
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let seq = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "scanshare-serve-{tag}-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn socket(&self) -> PathBuf {
        self.0.join("serve.sock")
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_engine() -> (Arc<Engine>, TableId) {
    let storage = Storage::new(PAGE, CHUNK);
    let table = storage
        .create_table_with_data(
            TableSpec::new(
                "lineitem",
                vec![
                    ColumnSpec::new("l_orderkey", ColumnType::Int64),
                    ColumnSpec::new("l_quantity", ColumnType::Int64),
                ],
                TUPLES,
            ),
            vec![
                DataGen::Sequential { start: 1, step: 1 },
                DataGen::Uniform { min: 1, max: 50 },
            ],
        )
        .unwrap();
    let engine = Engine::new(
        storage,
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: 4 << 20,
            policy: PolicyKind::Pbm,
            ..Default::default()
        },
    )
    .unwrap();
    (engine, table)
}

fn sum_request() -> QueryRequest {
    let mut request =
        QueryRequest::count_star("lineitem", vec!["l_orderkey".into(), "l_quantity".into()]);
    request.aggregates.push(Aggregate::Sum(1));
    request
}

/// Concurrent sessions over one Unix socket must each receive exactly the
/// result the in-process engine computes.
#[test]
fn concurrent_sessions_match_direct_engine_results() {
    let dir = TestDir::new("parity");
    let (engine, table) = build_engine();
    let reference = engine
        .query(table)
        .columns(["l_orderkey", "l_quantity"])
        .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(1)]))
        .run()
        .unwrap();
    let expected_count = reference[&0].count;
    let expected_sum = reference[&0].accumulators[1];

    let mut server = Server::new(engine, ServeConfig::default());
    server.bind_unix(dir.socket()).unwrap();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let socket = dir.socket();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect_unix(&socket, "tenant-a").unwrap();
                for _ in 0..3 {
                    let groups = client.query(sum_request()).unwrap();
                    assert_eq!(groups.len(), 1);
                    assert_eq!(groups[0].count, expected_count);
                    assert_eq!(groups[0].accumulators[1], expected_sum);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.shed, 0);
    server.shutdown();
}

/// The load generator multiplexes many logical sessions over few
/// connections; with generous admission limits every query is served.
#[test]
fn multiplexed_sessions_all_complete() {
    let dir = TestDir::new("loadgen");
    let (engine, _) = build_engine();
    let mut server = Server::new(
        engine,
        ServeConfig::default().with_max_queued_per_tenant(4096),
    );
    server.bind_unix(dir.socket()).unwrap();

    let mut request = sum_request();
    request.end = Some(5_000); // keep each query cheap
    let report = loadgen::run(&LoadgenConfig {
        target: Target::Unix(dir.socket()),
        tenant: "tenant-a".into(),
        connections: 4,
        sessions: 96,
        queries_per_session: 2,
        request,
    })
    .unwrap();

    assert_eq!(report.completed, 96 * 2);
    assert_eq!(report.shed, 0);
    assert_eq!(report.errors, 0);
    assert!(report.p50() <= report.p999());
    server.shutdown();
}

/// A join query over the wire (protocol v2) returns exactly the result the
/// in-process builder API computes, and an unknown build table comes back
/// as a typed UNKNOWN_TABLE frame without killing the session.
#[test]
fn join_queries_over_the_wire_match_the_engine() {
    use scanshare::serve::protocol::JoinRequest;

    let dir = TestDir::new("join");
    let (engine, table) = build_engine();
    // A 50-row "part" table keyed 1..=50, so every l_quantity value joins
    // exactly one part row.
    let part = engine
        .storage()
        .create_table_with_data(
            TableSpec::new(
                "part",
                vec![
                    ColumnSpec::new("p_key", ColumnType::Int64),
                    ColumnSpec::new("p_weight", ColumnType::Int64),
                ],
                50,
            ),
            vec![
                DataGen::Sequential { start: 1, step: 1 },
                DataGen::Sequential {
                    start: 100,
                    step: 1,
                },
            ],
        )
        .unwrap();
    // Joined layout: [l_orderkey, l_quantity, p_key, p_weight].
    let reference = engine
        .query(table)
        .columns(["l_orderkey", "l_quantity"])
        .aggregate(AggrSpec::global(vec![Aggregate::Count, Aggregate::Sum(3)]))
        .parallelism(2)
        .join(part, 1, "p_key")
        .join_columns(["p_weight"])
        .run()
        .unwrap();
    let expected = &reference[&0];
    assert_eq!(expected.count, TUPLES, "every probe row must match");

    let mut server = Server::new(engine, ServeConfig::default());
    server.bind_unix(dir.socket()).unwrap();
    let mut client = ServeClient::connect_unix(dir.socket(), "tenant-a").unwrap();

    let join = JoinRequest {
        table: "part".into(),
        left_col: 1,
        right_col: "p_key".into(),
        columns: vec!["p_weight".into()],
    };
    let mut request = sum_request();
    request.aggregates = vec![Aggregate::Count, Aggregate::Sum(3)];
    request.parallelism = 2;
    let groups = client.query(request.with_join(join.clone())).unwrap();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].count, expected.count);
    assert_eq!(groups[0].accumulators, expected.accumulators);

    // Unknown build table: typed error, session stays usable.
    let mut bad_join = join;
    bad_join.table = "no_such_dim".into();
    match client.query(sum_request().with_join(bad_join)) {
        Err(scanshare::common::Error::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownTable.as_u16())
        }
        other => panic!("expected UNKNOWN_TABLE error frame, got {other:?}"),
    }
    let groups = client.query(sum_request()).unwrap();
    assert_eq!(groups[0].count, TUPLES);
    server.shutdown();
}

/// Server-side failures arrive as typed ERROR frames, and a failed query
/// leaves the session usable for the next one.
#[test]
fn bad_requests_get_typed_error_frames() {
    let dir = TestDir::new("errors");
    let (engine, _) = build_engine();
    let mut server = Server::new(engine, ServeConfig::default());
    server.bind_unix(dir.socket()).unwrap();

    let mut client = ServeClient::connect_unix(dir.socket(), "tenant-a").unwrap();

    let mut unknown_table = sum_request();
    unknown_table.table = "no_such_table".into();
    match client.query(unknown_table) {
        Err(scanshare::common::Error::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownTable.as_u16())
        }
        other => panic!("expected UNKNOWN_TABLE error frame, got {other:?}"),
    }

    let mut unknown_column = sum_request();
    unknown_column.columns = vec!["no_such_column".into()];
    match client.query(unknown_column) {
        Err(scanshare::common::Error::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::BadQuery.as_u16())
        }
        other => panic!("expected BAD_QUERY error frame, got {other:?}"),
    }

    // The session survives typed errors: a good query still works.
    let groups = client.query(sum_request()).unwrap();
    assert_eq!(groups[0].count, TUPLES);
    server.shutdown();
}

/// Handshake violations: a wrong protocol version and a QUERY before HELLO
/// are both rejected with the documented codes, closing the connection.
#[test]
fn handshake_violations_are_rejected() {
    let dir = TestDir::new("handshake");
    let (engine, _) = build_engine();
    let mut server = Server::new(engine, ServeConfig::default());
    server.bind_unix(dir.socket()).unwrap();

    // Wrong version.
    let mut sock = UnixStream::connect(dir.socket()).unwrap();
    sock.write_all(
        &Message::Hello {
            version: PROTOCOL_VERSION + 7,
            tenant: "tenant-a".into(),
        }
        .encode(0),
    )
    .unwrap();
    let frame = read_frame(&mut sock).unwrap().expect("an error frame");
    match Message::decode(&frame).unwrap() {
        Message::Error { code, .. } => {
            assert_eq!(code, ErrorCode::UnsupportedVersion.as_u16())
        }
        other => panic!("expected ERROR frame, got {other:?}"),
    }
    assert!(
        read_frame(&mut sock).unwrap().is_none(),
        "connection closes"
    );

    // QUERY before HELLO.
    let mut sock = UnixStream::connect(dir.socket()).unwrap();
    sock.write_all(&Message::Query(sum_request()).encode(0))
        .unwrap();
    let frame = read_frame(&mut sock).unwrap().expect("an error frame");
    match Message::decode(&frame).unwrap() {
        Message::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame.as_u16()),
        other => panic!("expected ERROR frame, got {other:?}"),
    }
    assert!(
        read_frame(&mut sock).unwrap().is_none(),
        "connection closes"
    );
    server.shutdown();
}

/// With max_inflight 1 and no queueing, a burst of closed-loop sessions is
/// visibly shed with OVERLOADED while admitted queries still complete.
#[test]
fn overload_sheds_with_typed_errors() {
    let dir = TestDir::new("overload");
    let (engine, _) = build_engine();
    let mut server = Server::new(
        engine,
        ServeConfig::default()
            .with_max_inflight(1)
            .with_max_queued_per_tenant(0),
    );
    server.bind_unix(dir.socket()).unwrap();

    let report = loadgen::run(&LoadgenConfig {
        target: Target::Unix(dir.socket()),
        tenant: "tenant-a".into(),
        connections: 2,
        sessions: 16,
        queries_per_session: 3,
        request: sum_request(), // full 200k-tuple scan: slow enough to pile up
    })
    .unwrap();

    assert_eq!(report.completed + report.shed, 16 * 3);
    assert_eq!(report.errors, 0);
    assert!(report.completed >= 1, "admitted queries must still finish");
    assert!(
        report.shed > 0,
        "a 16-session burst against max_inflight=1 with no queue must shed"
    );
    let stats = server.stats();
    assert_eq!(stats.shed, report.shed);
    server.shutdown();
}

/// Shutting the server down mid-query neither hangs the server nor the
/// client: the client observes a closed connection or a SHUTTING_DOWN
/// frame, and `shutdown()` returns promptly.
#[test]
fn shutdown_mid_query_is_clean() {
    let dir = TestDir::new("shutdown");
    let (engine, _) = build_engine();
    let mut server = Server::new(engine, ServeConfig::default());
    server.bind_unix(dir.socket()).unwrap();

    let socket = dir.socket();
    let client = std::thread::spawn(move || {
        let mut client = ServeClient::connect_unix(&socket, "tenant-a").unwrap();
        // Keep querying until the server goes away.
        loop {
            match client.query(sum_request()) {
                Ok(groups) => assert_eq!(groups[0].count, TUPLES),
                Err(error) => return error,
            }
        }
    });

    // Let at least one query get in flight, then pull the plug.
    std::thread::sleep(std::time::Duration::from_millis(50));
    server.shutdown();

    let error = client.join().unwrap();
    match error {
        scanshare::common::Error::Remote { code, .. } => {
            assert_eq!(code, ErrorCode::ShuttingDown.as_u16())
        }
        scanshare::common::Error::Protocol(_) | scanshare::common::Error::Io(_) => {}
        other => panic!("expected a shutdown-shaped error, got {other:?}"),
    }
}
