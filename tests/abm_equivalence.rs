//! The ABM decomposition invariance property.
//!
//! PR 4 split the monolithic single-lock Active Buffer Manager into a
//! sharded chunk directory, a pure relevance core and a load scheduler
//! (`scanshare_core::abm`). The refactor must not change a single
//! decision: this test replays randomized CScan traces — staggered
//! registrations, interleaved `GetChunk` calls, load planning/completion,
//! mid-flight aborts — through the frozen pre-refactor implementation
//! (`MonolithicAbm`, the executable spec) and through the decomposed ABM
//! at 1, 2 and 8 directory shards, and asserts that the **entire op-level
//! outcome log** is byte-identical: chunk-delivery order per scan, every
//! load plan (chunk, page list, byte count), starvation probes, and the
//! final statistics / cached-bytes / I/O volume.

use std::sync::Arc;

use scanshare::core::abm::{Abm, AbmConfig, CScanRequest, LoadPlan, MonolithicAbm};
use scanshare::prelude::*;
use scanshare::storage::datagen::{splitmix64, DataGen};

const PAGE: u64 = 1024;
const CHUNK: u64 = 1000;

fn setup(tuples: u64) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(PAGE, CHUNK, 23);
    let spec = TableSpec::new(
        "lineitem",
        vec![
            ColumnSpec::with_width("a", ColumnType::Int64, 4.0),
            ColumnSpec::with_width("b", ColumnType::Int64, 2.0),
            ColumnSpec::with_width("c", ColumnType::Int64, 1.0),
        ],
        tuples,
    );
    let table = storage
        .create_table_with_data(
            spec,
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Constant(1),
                DataGen::Constant(2),
            ],
        )
        .unwrap();
    (storage, table)
}

/// Both implementations behind one op interface, so the trace driver is
/// shared verbatim.
enum AbmUnderTest {
    Monolithic(MonolithicAbm),
    Decomposed(Abm),
}

impl AbmUnderTest {
    fn register(&mut self, request: CScanRequest) -> scanshare::core::abm::CScanHandle {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.register_cscan(request).unwrap(),
            AbmUnderTest::Decomposed(abm) => abm.register_cscan(request).unwrap(),
        }
    }
    fn unregister(&mut self, scan: scanshare::common::ScanId) {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.unregister_cscan(scan).unwrap(),
            AbmUnderTest::Decomposed(abm) => abm.unregister_cscan(scan).unwrap(),
        }
    }
    fn get_chunk(
        &mut self,
        scan: scanshare::common::ScanId,
    ) -> Option<scanshare::core::abm::ChunkDelivery> {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.get_chunk(scan).unwrap(),
            AbmUnderTest::Decomposed(abm) => abm.get_chunk(scan).unwrap(),
        }
    }
    fn next_load(&mut self) -> Option<LoadPlan> {
        let now = VirtualInstant::EPOCH;
        match self {
            AbmUnderTest::Monolithic(abm) => abm.next_load(now),
            AbmUnderTest::Decomposed(abm) => abm.next_load(now),
        }
    }
    fn complete_load(&mut self, plan: &LoadPlan) {
        let now = VirtualInstant::EPOCH;
        match self {
            AbmUnderTest::Monolithic(abm) => abm.complete_load(plan, now).unwrap(),
            AbmUnderTest::Decomposed(abm) => abm.complete_load(plan, now).unwrap(),
        }
    }
    fn is_finished(&self, scan: scanshare::common::ScanId) -> bool {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.is_finished(scan),
            AbmUnderTest::Decomposed(abm) => abm.is_finished(scan),
        }
    }
    fn has_cached_chunk(&self, scan: scanshare::common::ScanId) -> bool {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.has_cached_chunk(scan),
            AbmUnderTest::Decomposed(abm) => abm.has_cached_chunk(scan),
        }
    }
    fn remaining_chunks(&self, scan: scanshare::common::ScanId) -> usize {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.remaining_chunks(scan),
            AbmUnderTest::Decomposed(abm) => abm.remaining_chunks(scan),
        }
    }
    fn stats(&self) -> scanshare::core::BufferStats {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.stats(),
            AbmUnderTest::Decomposed(abm) => abm.stats(),
        }
    }
    fn cached_bytes(&self) -> u64 {
        match self {
            AbmUnderTest::Monolithic(abm) => abm.cached_bytes(),
            AbmUnderTest::Decomposed(abm) => abm.cached_bytes(),
        }
    }
}

/// The randomized scan mix for one seed: overlapping ranges (so interest
/// counts matter), a couple of duplicated full scans (sharing), different
/// column subsets (page-union loads) and an occasional in-order scan.
fn scan_requests(
    storage: &Arc<Storage>,
    table: TableId,
    tuples: u64,
    seed: u64,
) -> Vec<CScanRequest> {
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let mut rng = seed | 1;
    let mut next = |limit: u64| -> u64 {
        rng = splitmix64(rng);
        if limit == 0 {
            0
        } else {
            rng % limit
        }
    };
    (0..6)
        .map(|i| {
            let span = (tuples / 6).max(CHUNK) * (1 + next(5));
            let span = span.min(tuples);
            let start = next((tuples - span).max(1));
            let columns = match next(3) {
                0 => vec![0, 1, 2],
                1 => vec![0, 1],
                _ => vec![0, 2],
            };
            CScanRequest {
                table,
                snapshot: Arc::clone(&snapshot),
                layout: Arc::clone(&layout),
                columns,
                ranges: RangeList::single(start, start + span),
                in_order: i == 4 && next(2) == 0,
            }
        })
        .collect()
}

/// Replays one randomized trace, returning the serialized outcome of every
/// operation (the byte-identical artefact the property compares).
fn run_trace(mut abm: AbmUnderTest, requests: Vec<CScanRequest>, seed: u64) -> Vec<String> {
    let mut log: Vec<String> = Vec::new();
    let mut to_register = requests;
    let mut active: Vec<scanshare::common::ScanId> = Vec::new();
    let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = |limit: u64| -> u64 {
        rng = splitmix64(rng);
        if limit == 0 {
            0
        } else {
            rng % limit
        }
    };
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 200_000, "trace made no progress");
        let all_done = to_register.is_empty() && active.iter().all(|s| abm.is_finished(*s));
        if all_done {
            break;
        }
        let choice = next(10);
        if !to_register.is_empty() && (choice < 3 || active.is_empty()) {
            let handle = abm.register(to_register.remove(0));
            log.push(format!("register -> {handle:?}"));
            active.push(handle.id);
            continue;
        }
        let unfinished: Vec<_> = active
            .iter()
            .copied()
            .filter(|s| !abm.is_finished(*s))
            .collect();
        if unfinished.is_empty() {
            continue;
        }
        let scan = unfinished[next(unfinished.len() as u64) as usize];
        if choice == 9 && active.len() > 1 {
            // Abort a scan mid-flight.
            abm.unregister(scan);
            active.retain(|s| *s != scan);
            log.push(format!("abort {scan:?}"));
            continue;
        }
        if choice < 8 {
            log.push(format!(
                "probe {scan:?} cached={} remaining={}",
                abm.has_cached_chunk(scan),
                abm.remaining_chunks(scan)
            ));
            let delivery = abm.get_chunk(scan);
            log.push(format!("get {scan:?} -> {delivery:?}"));
            if delivery.is_some() {
                continue;
            }
        }
        // Starved (or a scheduled load step): drive the loader once.
        let plan = abm.next_load();
        log.push(format!("load -> {plan:?}"));
        if let Some(plan) = plan {
            abm.complete_load(&plan);
        }
    }
    // Unregister the survivors in randomized order.
    while !active.is_empty() {
        let scan = active.remove(next(active.len() as u64) as usize);
        abm.unregister(scan);
        log.push(format!("unregister {scan:?}"));
    }
    log.push(format!(
        "final stats={:?} cached_bytes={}",
        abm.stats(),
        abm.cached_bytes()
    ));
    log
}

#[test]
fn decomposed_abm_matches_the_monolithic_spec_at_every_shard_count() {
    const TUPLES: u64 = 12_000;
    let (storage, table) = setup(TUPLES);
    // Capacity of ~8 chunks of the widest column mix: real replacement
    // pressure, so KeepRelevance eviction and the protection rule fire.
    let capacity = 56 * PAGE;
    for seed in [1u64, 7, 42, 1234, 0xdead] {
        let requests = scan_requests(&storage, table, TUPLES, seed);
        let reference = run_trace(
            AbmUnderTest::Monolithic(MonolithicAbm::new(AbmConfig::new(capacity, PAGE))),
            requests.clone(),
            seed,
        );
        assert!(
            reference.iter().any(|line| line.starts_with("get")),
            "seed {seed}: trace must deliver chunks"
        );
        for shards in [1usize, 2, 8] {
            let decomposed = run_trace(
                AbmUnderTest::Decomposed(Abm::new(
                    AbmConfig::new(capacity, PAGE).with_shards(shards),
                )),
                requests.clone(),
                seed,
            );
            assert_eq!(
                decomposed.len(),
                reference.len(),
                "seed {seed} shards {shards}: trace lengths diverge"
            );
            for (idx, (got, want)) in decomposed.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    got, want,
                    "seed {seed} shards {shards}: divergence at op {idx}"
                );
            }
        }
    }
}

#[test]
fn headroom_traces_are_also_invariant_and_load_each_page_once() {
    const TUPLES: u64 = 10_000;
    let (storage, table) = setup(TUPLES);
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    // Two identical full scans plus a suffix scan, plenty of buffer.
    let requests: Vec<CScanRequest> = [
        (0u64, TUPLES, vec![0usize, 1, 2]),
        (0, TUPLES, vec![0, 1, 2]),
        (5 * CHUNK, TUPLES, vec![0, 1, 2]),
    ]
    .into_iter()
    .map(|(start, end, columns)| CScanRequest {
        table,
        snapshot: Arc::clone(&snapshot),
        layout: Arc::clone(&layout),
        columns,
        ranges: RangeList::single(start, end),
        in_order: false,
    })
    .collect();
    let reference = run_trace(
        AbmUnderTest::Monolithic(MonolithicAbm::new(AbmConfig::new(1 << 22, PAGE))),
        requests.clone(),
        3,
    );
    // With headroom, the trace ends with every distinct page loaded once:
    // 4+2+1 bytes/tuple over 10k tuples = 70 pages.
    let last = reference.last().unwrap();
    assert!(
        last.contains("io_bytes: 71680"),
        "unexpected final line {last}"
    );
    for shards in [2usize, 8] {
        let decomposed = run_trace(
            AbmUnderTest::Decomposed(Abm::new(AbmConfig::new(1 << 22, PAGE).with_shards(shards))),
            requests.clone(),
            3,
        );
        assert_eq!(decomposed, reference, "shards {shards}");
    }
}
