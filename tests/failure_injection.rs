//! Failure-injection style integration tests: transactions that abort,
//! conflicting committers, scans abandoned mid-flight, and checkpoints racing
//! already-running scans. The system must stay consistent in every case.

use std::sync::Arc;

use scanshare::core::abm::{Abm, AbmConfig, CScanRequest};
use scanshare::prelude::*;

fn lineitem(tuples: u64) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(64 * 1024, 10_000, 99);
    let table = scanshare::workload::microbench::setup_lineitem(&storage, tuples).unwrap();
    (storage, table)
}

fn engine(policy: PolicyKind, storage: &Arc<Storage>) -> Arc<Engine> {
    Engine::new(
        Arc::clone(storage),
        ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: 2 << 20,
            policy,
            ..Default::default()
        },
    )
    .unwrap()
}

fn count_rows(engine: &Arc<Engine>, table: TableId) -> u64 {
    let result = engine
        .query(table)
        .columns(["l_quantity"])
        .aggregate(AggrSpec::global(vec![Aggregate::Count]))
        .parallelism(2)
        .run()
        .unwrap();
    result[&0].count
}

#[test]
fn aborted_appends_are_never_visible() {
    let (storage, table) = lineitem(20_000);
    let engine = engine(PolicyKind::Pbm, &storage);
    assert_eq!(count_rows(&engine, table), 20_000);

    let mut tx = storage.begin_append(table).unwrap();
    tx.append_rows(&[
        vec![1; 500],
        vec![2; 500],
        vec![3; 500],
        vec![4; 500],
        vec![0; 500],
        vec![1; 500],
        vec![9000; 500],
    ])
    .unwrap();
    // The transaction itself sees its rows ...
    assert_eq!(tx.snapshot().stable_tuples(), 20_500);
    // ... but after abort the master snapshot and every query are unchanged.
    tx.abort();
    assert_eq!(
        storage.master_snapshot(table).unwrap().stable_tuples(),
        20_000
    );
    assert_eq!(count_rows(&engine, table), 20_000);
}

#[test]
fn only_one_of_two_conflicting_appenders_wins() {
    let (storage, table) = lineitem(10_000);
    let engine = engine(PolicyKind::Lru, &storage);

    let row = |v: i64| vec![vec![v; 10]; 7];
    let mut t1 = storage.begin_append(table).unwrap();
    let mut t2 = storage.begin_append(table).unwrap();
    t1.append_rows(&row(1)).unwrap();
    t2.append_rows(&row(2)).unwrap();
    t1.commit().unwrap();
    assert!(t2.commit().is_err(), "second committer must conflict");
    assert_eq!(count_rows(&engine, table), 10_010);
}

#[test]
fn abandoning_a_scan_mid_flight_leaves_the_system_usable() {
    let (storage, table) = lineitem(50_000);
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let engine = engine(policy, &storage);
        // Start a scan, consume only a couple of batches, then drop it.
        {
            let mut op = engine
                .scan(
                    table,
                    &["l_quantity", "l_shipdate"],
                    TupleRange::new(0, 50_000),
                )
                .unwrap();
            let first = op.next_batch().unwrap().expect("at least one batch");
            assert!(!first.is_empty());
            let _ = op.next_batch().unwrap();
            // Dropped here: the operator unregisters from its buffer manager.
        }
        // A fresh scan still sees the whole table and completes.
        assert_eq!(count_rows(&engine, table), 50_000, "policy {policy}");
    }
}

#[test]
fn scans_started_before_a_checkpoint_keep_their_snapshot() {
    let (storage, table) = lineitem(30_000);
    let engine = engine(PolicyKind::Pbm, &storage);

    // Open a scan on the current state.
    let mut old_scan = engine
        .scan(table, &["l_quantity"], TupleRange::new(0, 30_000))
        .unwrap();
    let first = old_scan.next_batch().unwrap().expect("batch");
    assert!(!first.is_empty());

    // Delete rows and checkpoint while the old scan is still open.
    for _ in 0..100 {
        engine.delete_row(table, 0).unwrap();
    }
    let new_snapshot = engine.checkpoint(table).unwrap();
    assert_eq!(new_snapshot.stable_tuples(), 29_900);

    // The old scan keeps producing from its original snapshot + PDT state.
    let mut produced = first.len();
    while let Some(batch) = old_scan.next_batch().unwrap() {
        produced += batch.len();
    }
    assert_eq!(produced, 30_000, "pre-checkpoint scan sees the old state");

    // New queries see the checkpointed state under every policy.
    drop(old_scan);
    for policy in [PolicyKind::Lru, PolicyKind::CScan] {
        let fresh = Engine::new(
            Arc::clone(&storage),
            ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: 2 << 20,
                policy,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(count_rows(&fresh, table), 29_900);
    }
}

#[test]
fn abm_unregisters_cleanly_when_a_cscan_aborts_half_way() {
    let (storage, table) = lineitem(40_000);
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let abm = Abm::new(AbmConfig::new(4 << 20, 64 * 1024));

    let request = |range: TupleRange| CScanRequest {
        table,
        snapshot: Arc::clone(&snapshot),
        layout: Arc::clone(&layout),
        columns: vec![0, 1, 6],
        ranges: RangeList::from_ranges([range]),
        in_order: false,
    };
    let doomed = abm
        .register_cscan(request(TupleRange::new(0, 40_000)))
        .unwrap();
    let survivor = abm
        .register_cscan(request(TupleRange::new(0, 40_000)))
        .unwrap();
    assert_eq!(abm.registered_scans(), 2);

    // Let the doomed scan consume a single chunk, then unregister it.
    let now = VirtualInstant::EPOCH;
    while abm.get_chunk(doomed.id).unwrap().is_none() {
        match abm.next_action(now) {
            scanshare::core::abm::AbmAction::Load(plan) => abm.complete_load(&plan, now).unwrap(),
            scanshare::core::abm::AbmAction::Idle => panic!("nothing to load"),
        }
    }
    abm.unregister_cscan(doomed.id).unwrap();
    assert_eq!(abm.registered_scans(), 1);
    assert!(
        abm.get_chunk(doomed.id).is_err(),
        "the aborted scan is gone"
    );

    // The surviving scan still receives every one of its chunks.
    let mut delivered = 0;
    let mut guard = 0;
    while !abm.is_finished(survivor.id) {
        guard += 1;
        assert!(guard < 10_000, "survivor made no progress");
        if abm.get_chunk(survivor.id).unwrap().is_some() {
            delivered += 1;
        } else {
            match abm.next_action(now) {
                scanshare::core::abm::AbmAction::Load(plan) => {
                    abm.complete_load(&plan, now).unwrap()
                }
                scanshare::core::abm::AbmAction::Idle => panic!("survivor starved"),
            }
        }
    }
    assert_eq!(delivered, survivor.total_chunks);

    // With the last scan gone, the ABM destroys the table metadata.
    abm.unregister_cscan(survivor.id).unwrap();
    assert_eq!(abm.version_count(table), 0);
    assert_eq!(abm.registered_scans(), 0);
}
