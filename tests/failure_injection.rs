//! Failure-injection style integration tests: transactions that abort,
//! conflicting committers, scans abandoned mid-flight, and checkpoints racing
//! already-running scans. The system must stay consistent in every case.

use std::sync::Arc;

use scanshare::core::abm::{Abm, AbmConfig, CScanRequest};
use scanshare::prelude::*;

fn lineitem(tuples: u64) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(64 * 1024, 10_000, 99);
    let table = scanshare::workload::microbench::setup_lineitem(&storage, tuples).unwrap();
    (storage, table)
}

fn engine(policy: PolicyKind, storage: &Arc<Storage>) -> Arc<Engine> {
    Engine::new(
        Arc::clone(storage),
        ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: 2 << 20,
            policy,
            ..Default::default()
        },
    )
    .unwrap()
}

fn count_rows(engine: &Arc<Engine>, table: TableId) -> u64 {
    let result = engine
        .query(table)
        .columns(["l_quantity"])
        .aggregate(AggrSpec::global(vec![Aggregate::Count]))
        .parallelism(2)
        .run()
        .unwrap();
    result[&0].count
}

#[test]
fn aborted_appends_are_never_visible() {
    let (storage, table) = lineitem(20_000);
    let engine = engine(PolicyKind::Pbm, &storage);
    assert_eq!(count_rows(&engine, table), 20_000);

    let mut tx = storage.begin_append(table).unwrap();
    tx.append_rows(&[
        vec![1; 500],
        vec![2; 500],
        vec![3; 500],
        vec![4; 500],
        vec![0; 500],
        vec![1; 500],
        vec![9000; 500],
    ])
    .unwrap();
    // The transaction itself sees its rows ...
    assert_eq!(tx.snapshot().stable_tuples(), 20_500);
    // ... but after abort the master snapshot and every query are unchanged.
    tx.abort();
    assert_eq!(
        storage.master_snapshot(table).unwrap().stable_tuples(),
        20_000
    );
    assert_eq!(count_rows(&engine, table), 20_000);
}

#[test]
fn only_one_of_two_conflicting_appenders_wins() {
    let (storage, table) = lineitem(10_000);
    let engine = engine(PolicyKind::Lru, &storage);

    let row = |v: i64| vec![vec![v; 10]; 7];
    let mut t1 = storage.begin_append(table).unwrap();
    let mut t2 = storage.begin_append(table).unwrap();
    t1.append_rows(&row(1)).unwrap();
    t2.append_rows(&row(2)).unwrap();
    t1.commit().unwrap();
    assert!(t2.commit().is_err(), "second committer must conflict");
    assert_eq!(count_rows(&engine, table), 10_010);
}

#[test]
fn abandoning_a_scan_mid_flight_leaves_the_system_usable() {
    let (storage, table) = lineitem(50_000);
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let engine = engine(policy, &storage);
        // Start a scan, consume only a couple of batches, then drop it.
        {
            let mut op = engine
                .scan(
                    table,
                    &["l_quantity", "l_shipdate"],
                    TupleRange::new(0, 50_000),
                )
                .unwrap();
            let first = op.next_batch().unwrap().expect("at least one batch");
            assert!(!first.is_empty());
            let _ = op.next_batch().unwrap();
            // Dropped here: the operator unregisters from its buffer manager.
        }
        // A fresh scan still sees the whole table and completes.
        assert_eq!(count_rows(&engine, table), 50_000, "policy {policy}");
    }
}

#[test]
fn scans_started_before_a_checkpoint_keep_their_snapshot() {
    let (storage, table) = lineitem(30_000);
    let engine = engine(PolicyKind::Pbm, &storage);

    // Open a scan on the current state.
    let mut old_scan = engine
        .scan(table, &["l_quantity"], TupleRange::new(0, 30_000))
        .unwrap();
    let first = old_scan.next_batch().unwrap().expect("batch");
    assert!(!first.is_empty());

    // Delete rows and checkpoint while the old scan is still open.
    for _ in 0..100 {
        engine.delete_row(table, 0).unwrap();
    }
    let new_snapshot = engine.checkpoint(table).unwrap();
    assert_eq!(new_snapshot.stable_tuples(), 29_900);

    // The old scan keeps producing from its original snapshot + PDT state.
    let mut produced = first.len();
    while let Some(batch) = old_scan.next_batch().unwrap() {
        produced += batch.len();
    }
    assert_eq!(produced, 30_000, "pre-checkpoint scan sees the old state");

    // New queries see the checkpointed state under every policy.
    drop(old_scan);
    for policy in [PolicyKind::Lru, PolicyKind::CScan] {
        let fresh = Engine::new(
            Arc::clone(&storage),
            ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: 2 << 20,
                policy,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(count_rows(&fresh, table), 29_900);
    }
}

#[test]
fn abm_unregisters_cleanly_when_a_cscan_aborts_half_way() {
    let (storage, table) = lineitem(40_000);
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let abm = Abm::new(AbmConfig::new(4 << 20, 64 * 1024));

    let request = |range: TupleRange| CScanRequest {
        table,
        snapshot: Arc::clone(&snapshot),
        layout: Arc::clone(&layout),
        columns: vec![0, 1, 6],
        ranges: RangeList::from_ranges([range]),
        in_order: false,
    };
    let doomed = abm
        .register_cscan(request(TupleRange::new(0, 40_000)))
        .unwrap();
    let survivor = abm
        .register_cscan(request(TupleRange::new(0, 40_000)))
        .unwrap();
    assert_eq!(abm.registered_scans(), 2);

    // Let the doomed scan consume a single chunk, then unregister it.
    let now = VirtualInstant::EPOCH;
    while abm.get_chunk(doomed.id).unwrap().is_none() {
        match abm.next_action(now) {
            scanshare::core::abm::AbmAction::Load(plan) => abm.complete_load(&plan, now).unwrap(),
            scanshare::core::abm::AbmAction::Idle => panic!("nothing to load"),
        }
    }
    abm.unregister_cscan(doomed.id).unwrap();
    assert_eq!(abm.registered_scans(), 1);
    assert!(
        abm.get_chunk(doomed.id).is_err(),
        "the aborted scan is gone"
    );

    // The surviving scan still receives every one of its chunks.
    let mut delivered = 0;
    let mut guard = 0;
    while !abm.is_finished(survivor.id) {
        guard += 1;
        assert!(guard < 10_000, "survivor made no progress");
        if abm.get_chunk(survivor.id).unwrap().is_some() {
            delivered += 1;
        } else {
            match abm.next_action(now) {
                scanshare::core::abm::AbmAction::Load(plan) => {
                    abm.complete_load(&plan, now).unwrap()
                }
                scanshare::core::abm::AbmAction::Idle => panic!("survivor starved"),
            }
        }
    }
    assert_eq!(delivered, survivor.total_chunks);

    // With the last scan gone, the ABM destroys the table metadata.
    abm.unregister_cscan(survivor.id).unwrap();
    assert_eq!(abm.version_count(table), 0);
    assert_eq!(abm.registered_scans(), 0);
}

// ---------------------------------------------------------------------------
// Device faults: a failing BlockDevice must surface as typed Error::Io
// values on the stream that hit it — never a panic, never a wedged workload.
// ---------------------------------------------------------------------------

mod device_faults {
    use std::sync::Arc;

    use scanshare::common::Error;
    use scanshare::core::registry::PolicyRegistry;
    use scanshare::iosim::{FaultInjectingDevice, FaultKind};
    use scanshare::prelude::*;
    use scanshare::workload::microbench::{self, MicrobenchConfig};

    const PAGE: u64 = 16 * 1024;

    fn workload() -> (Arc<Storage>, WorkloadSpec) {
        let micro = MicrobenchConfig {
            streams: 3,
            queries_per_stream: 2,
            lineitem_tuples: 30_000,
            ..MicrobenchConfig::tiny()
        };
        microbench::build(&micro, PAGE, 5_000).unwrap()
    }

    fn config(policy: PolicyKind) -> ScanShareConfig {
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: 5_000,
            buffer_pool_bytes: 64 * PAGE,
            policy,
            ..Default::default()
        }
    }

    fn sim_device() -> Arc<dyn BlockDevice> {
        Arc::new(IoDevice::new(
            Bandwidth::from_mb_per_sec(700.0),
            VirtualDuration::from_micros(100),
        ))
    }

    fn engine_with_device(
        storage: &Arc<Storage>,
        policy: PolicyKind,
        device: Arc<FaultInjectingDevice>,
    ) -> Arc<Engine> {
        Engine::with_device(
            Arc::clone(storage),
            config(policy),
            &PolicyRegistry::default(),
            device,
        )
        .unwrap()
    }

    #[test]
    fn one_hard_fault_ends_exactly_one_stream_with_a_typed_io_error() {
        let (storage, workload) = workload();
        for (policy, fault) in [
            (PolicyKind::Pbm, FaultKind::HardError),
            (PolicyKind::Lru, FaultKind::ShortRead),
            (PolicyKind::CScan, FaultKind::HardError),
        ] {
            // Fault the third read: every policy reaches it (the cooperative
            // backend loads each chunk only once, so it issues far fewer
            // device requests than the per-stream policies).
            let device = Arc::new(FaultInjectingDevice::new(sim_device()).with_fault(2, fault));
            let engine = engine_with_device(&storage, policy, Arc::clone(&device));
            assert_eq!(engine.device().name(), "fault-injecting");
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert_eq!(
                report.stream_errors.len(),
                1,
                "{policy}: exactly the stream that hit the faulted read ends early"
            );
            assert!(
                matches!(report.stream_errors[0].error(), Some(Error::Io(_))),
                "{policy}: the fault surfaces as a typed I/O error, got {:?}",
                report.stream_errors[0]
            );
            // The other streams ran to completion: 3 streams x 2 queries,
            // minus the 1 or 2 the failed stream never finished.
            assert!(
                (4..6).contains(&report.queries),
                "{policy}: {} queries",
                report.queries
            );
            assert_eq!(device.injected_faults(), 1, "{policy}");
        }
    }

    #[test]
    fn a_dead_device_fails_every_stream_without_wedging_the_driver() {
        let (storage, workload) = workload();
        for policy in [PolicyKind::Pbm, PolicyKind::CScan] {
            let device = Arc::new(FaultInjectingDevice::new(sim_device()).with_fail_all_after(0));
            let engine = engine_with_device(&storage, policy, Arc::clone(&device));
            // The run completes (no panic, no deadlock) and reports the
            // failures per stream instead of returning a workload error.
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(
                !report.stream_errors.is_empty(),
                "{policy}: a dead device must surface on at least one stream"
            );
            for err in &report.stream_errors {
                assert!(
                    matches!(err.error(), Some(Error::Io(_))),
                    "{policy}: {err:?}"
                );
            }
            assert!(device.injected_faults() > 0, "{policy}");
        }
    }

    #[test]
    fn transient_faults_are_retried_inside_the_device_and_never_surface() {
        let (storage, workload) = workload();
        for policy in [PolicyKind::Pbm, PolicyKind::CScan] {
            let device = Arc::new(
                FaultInjectingDevice::new(sim_device())
                    .with_fault(2, FaultKind::Transient { failures: 3 }),
            );
            let engine = engine_with_device(&storage, policy, Arc::clone(&device));
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(report.stream_errors.is_empty(), "{policy}");
            assert_eq!(report.queries, 6, "{policy}");
            assert_eq!(device.retries_injected(), 3, "{policy}");
            assert!(report.io.bytes_read > 0, "{policy}");
        }
    }
}

// ---------------------------------------------------------------------------
// Crash/recovery kill points: simulate a crash at every WAL-append and
// checkpoint boundary by snapshotting the durability directory, then recover
// each snapshot and compare against a shadow model of the committed prefix.
// ---------------------------------------------------------------------------

mod crash_recovery {
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    use scanshare::prelude::*;
    use scanshare::storage::wal::{Wal, WalRecordKind, WAL_FILE_NAME};

    const PAGE: u64 = 16 * 1024;
    const CHUNK: u64 = 1_000;

    struct TestDir(PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU32, Ordering};
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "scanshare-crash-{tag}-{}-{seq}",
                std::process::id()
            ));
            std::fs::create_dir_all(&path).unwrap();
            Self(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Byte-for-byte snapshot of the durability directory: what a crashed
    /// process would leave behind at this instant.
    fn copy_dir(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            let to = dst.join(entry.file_name());
            if entry.file_type().unwrap().is_dir() {
                copy_dir(&entry.path(), &to);
            } else {
                std::fs::copy(entry.path(), &to).unwrap();
            }
        }
    }

    fn config() -> ScanShareConfig {
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: 64 * PAGE,
            policy: PolicyKind::Lru,
            ..Default::default()
        }
    }

    /// A durable two-column table plus its shadow model: the rows the
    /// committed state must contain, maintained alongside every operation.
    fn durable_engine(
        dir: &Path,
        tuples: u64,
        group_commit: usize,
    ) -> (Arc<Engine>, TableId, Vec<Vec<i64>>) {
        let storage = Storage::new(PAGE, CHUNK);
        let table = storage
            .create_table_with_data(
                TableSpec::new(
                    "t",
                    vec![
                        ColumnSpec::new("k", ColumnType::Int64),
                        ColumnSpec::new("v", ColumnType::Int64),
                    ],
                    tuples,
                ),
                vec![
                    DataGen::Sequential { start: 0, step: 1 },
                    DataGen::Constant(7),
                ],
            )
            .unwrap();
        let engine = Engine::new(
            storage,
            config()
                .with_wal_dir(dir)
                .with_wal_group_commit(group_commit),
        )
        .unwrap();
        let shadow = (0..tuples as i64).map(|k| vec![k, 7]).collect();
        (engine, table, shadow)
    }

    fn all_rows(engine: &Arc<Engine>, table: TableId) -> Vec<Vec<i64>> {
        engine
            .query(table)
            .columns(["k", "v"])
            .range(..)
            .in_order()
            .rows()
            .unwrap()
    }

    /// The tentpole property: snapshot the durability directory after every
    /// commit and checkpoint boundary (each snapshot is one kill point), then
    /// recover each one cold and compare it row-for-row against the shadow
    /// model of the operations committed up to that point.
    #[test]
    fn recovery_matches_the_committed_prefix_at_every_kill_point() {
        let live = TestDir::new("killpoints");
        let copies = TestDir::new("killpoints-copies");
        let (engine, table, mut shadow) = durable_engine(live.path(), 2 * CHUNK + CHUNK / 2, 1);

        let mut points: Vec<(PathBuf, Vec<Vec<i64>>)> = Vec::new();
        for step in 0..12u64 {
            match step % 4 {
                0 => {
                    // Auto-committed insert at the front of the table.
                    let row = vec![-(step as i64) - 1, 1_000 + step as i64];
                    engine.insert_row(table, 0, row.clone()).unwrap();
                    shadow.insert(0, row);
                }
                1 => {
                    // Auto-committed delete in the middle.
                    let rid = shadow.len() as u64 / 2;
                    engine.delete_row(table, rid).unwrap();
                    shadow.remove(rid as usize);
                }
                2 => {
                    // Multi-operation snapshot-isolated transaction.
                    let end = shadow.len() as u64;
                    let mut txn = engine.begin();
                    txn.insert(table, end, vec![9_000 + step as i64, -5])
                        .unwrap();
                    txn.modify(table, 1, 1, step as i64).unwrap();
                    txn.commit().unwrap();
                    shadow.push(vec![9_000 + step as i64, -5]);
                    shadow[1][1] = step as i64;
                }
                _ => {
                    // Checkpoint: new durable image + end marker.
                    engine.checkpoint(table).unwrap();
                }
            }
            let copy = copies.path().join(format!("kp{step}"));
            copy_dir(live.path(), &copy);
            points.push((copy, shadow.clone()));
        }
        drop(engine);

        for (idx, (dir, expected)) in points.iter().enumerate() {
            let recovered = Engine::recover(dir, config()).unwrap();
            assert_eq!(
                recovered.visible_rows(table).unwrap(),
                expected.len() as u64,
                "kill point {idx}: visible row count"
            );
            assert_eq!(
                &all_rows(&recovered, table),
                expected,
                "kill point {idx}: recovered rows"
            );
        }
    }

    /// A crash mid-`write(2)` leaves a torn final record; recovery must drop
    /// it and come up at the previous commit, whatever the torn length.
    #[test]
    fn a_torn_final_wal_record_rolls_back_to_the_previous_commit() {
        let live = TestDir::new("torn-wal");
        let (engine, table, mut shadow) = durable_engine(live.path(), 2 * CHUNK, 1);
        engine.insert_row(table, 0, vec![-1, -1]).unwrap();
        shadow.insert(0, vec![-1, -1]);
        let after_first = shadow.clone();
        engine.delete_row(table, 5).unwrap();
        drop(engine);

        let wal_path = live.path().join(WAL_FILE_NAME);
        let bytes = std::fs::read(&wal_path).unwrap();
        for cut in [1, 3, 8] {
            std::fs::write(&wal_path, &bytes[..bytes.len() - cut]).unwrap();
            let recovered = Engine::recover(live.path(), config()).unwrap();
            assert_eq!(
                all_rows(&recovered, table),
                after_first,
                "cut {cut} bytes: the torn record is dropped, the prefix survives"
            );
        }
    }

    /// With group commit the fsync lags the append, so a crash can lose a
    /// suffix of trailing commits. Whatever survives must be a consistent
    /// prefix: truncate the log at every record boundary and recover.
    #[test]
    fn losing_a_suffix_of_commits_leaves_a_consistent_prefix() {
        let live = TestDir::new("prefix");
        let (engine, table, mut shadow) = durable_engine(live.path(), CHUNK, 4);
        let wal_path = live.path().join(WAL_FILE_NAME);

        // (log length, shadow state) after each commit = one kill point each.
        let mut points: Vec<(u64, Vec<Vec<i64>>)> = Vec::new();
        for step in 0..6i64 {
            if step % 2 == 0 {
                engine.insert_row(table, 0, vec![-step - 1, step]).unwrap();
                shadow.insert(0, vec![-step - 1, step]);
            } else {
                engine.delete_row(table, 3).unwrap();
                shadow.remove(3);
            }
            points.push((std::fs::metadata(&wal_path).unwrap().len(), shadow.clone()));
        }
        drop(engine);

        let bytes = std::fs::read(&wal_path).unwrap();
        for (idx, (len, expected)) in points.iter().enumerate() {
            std::fs::write(&wal_path, &bytes[..*len as usize]).unwrap();
            let recovered = Engine::recover(live.path(), config()).unwrap();
            assert_eq!(
                &all_rows(&recovered, table),
                expected,
                "prefix of {} commits",
                idx + 1
            );
        }
    }

    /// A crash between the CheckpointBegin marker and the manifest install
    /// leaves Begin with no matching End and no new image. The markers are
    /// informational: recovery replays the full log over the old image, and
    /// the recovered engine checkpoints and commits normally afterwards.
    #[test]
    fn a_checkpoint_that_crashed_after_its_begin_marker_recovers_cleanly() {
        let live = TestDir::new("ckpt-begin");
        let (engine, table, mut shadow) = durable_engine(live.path(), CHUNK + CHUNK / 2, 1);
        engine.update_value(table, 3, 1, 42).unwrap();
        shadow[3][1] = 42;
        drop(engine);

        let wal = Wal::open(live.path(), 1).unwrap();
        wal.append_marker(WalRecordKind::CheckpointBegin, table, 1)
            .unwrap();
        drop(wal);

        let recovered = Engine::recover(live.path(), config()).unwrap();
        assert_eq!(all_rows(&recovered, table), shadow);

        recovered.checkpoint(table).unwrap();
        recovered.delete_row(table, 0).unwrap();
        shadow.remove(0);
        drop(recovered);
        let again = Engine::recover(live.path(), config()).unwrap();
        assert_eq!(all_rows(&again, table), shadow);
    }

    /// Checkpoints rotate the WAL: records the durable image already covers
    /// are dropped, so the log stops growing without bound. The rotation is
    /// crash-atomic — a kill point immediately after the checkpoint (and
    /// after every post-rotation commit) must still recover to exactly the
    /// committed state from the shrunken log.
    #[test]
    fn wal_rotation_after_a_checkpoint_shrinks_the_log_and_survives_a_crash() {
        let live = TestDir::new("wal-rotate");
        let copies = TestDir::new("wal-rotate-copies");
        let (engine, table, mut shadow) = durable_engine(live.path(), CHUNK + CHUNK / 2, 1);
        let wal_path = live.path().join(WAL_FILE_NAME);

        for step in 0..4i64 {
            engine.insert_row(table, 0, vec![-step - 1, step]).unwrap();
            shadow.insert(0, vec![-step - 1, step]);
        }
        let before = std::fs::metadata(&wal_path).unwrap().len();
        engine.checkpoint(table).unwrap();
        let after = std::fs::metadata(&wal_path).unwrap().len();
        assert!(
            after < before,
            "rotation must shrink the log ({after} vs {before})"
        );
        assert_eq!(engine.wal().unwrap().wal_rotated(), 1);

        // Kill point right after the rotation, and after each of a few
        // post-rotation commits appended to the rotated log.
        let mut points: Vec<(PathBuf, Vec<Vec<i64>>)> = Vec::new();
        let snap = copies.path().join("kp-rotated");
        copy_dir(live.path(), &snap);
        points.push((snap, shadow.clone()));
        for step in 0..3i64 {
            engine
                .insert_row(table, 0, vec![100 + step, -step])
                .unwrap();
            shadow.insert(0, vec![100 + step, -step]);
            let snap = copies.path().join(format!("kp-after-{step}"));
            copy_dir(live.path(), &snap);
            points.push((snap, shadow.clone()));
        }
        // A second checkpoint rotates the post-rotation commits out again.
        engine.checkpoint(table).unwrap();
        assert_eq!(engine.wal().unwrap().wal_rotated(), 2);
        let snap = copies.path().join("kp-rotated-again");
        copy_dir(live.path(), &snap);
        points.push((snap, shadow.clone()));
        drop(engine);

        for (dir, expected) in &points {
            let recovered = Engine::recover(dir, config()).unwrap();
            assert_eq!(
                &all_rows(&recovered, table),
                expected,
                "kill point {dir:?}: recovered rows"
            );
        }
    }

    /// A crash mid-manifest-install leaves a partially written `.tmp` next to
    /// the authoritative manifest; reopening must ignore it.
    #[test]
    fn a_torn_manifest_temp_file_is_ignored_at_recovery() {
        let live = TestDir::new("torn-manifest");
        let (engine, table, mut shadow) = durable_engine(live.path(), CHUNK, 1);
        engine.delete_row(table, 10).unwrap();
        shadow.remove(10);
        drop(engine);

        std::fs::write(
            live.path().join("t.manifest.tmp"),
            b"scanshare-table-manifest v1\ntable t\ntrunca",
        )
        .unwrap();
        let recovered = Engine::recover(live.path(), config()).unwrap();
        assert_eq!(all_rows(&recovered, table), shadow);
    }
}
