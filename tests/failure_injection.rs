//! Failure-injection style integration tests: transactions that abort,
//! conflicting committers, scans abandoned mid-flight, and checkpoints racing
//! already-running scans. The system must stay consistent in every case.

use std::sync::Arc;

use scanshare::core::abm::{Abm, AbmConfig, CScanRequest};
use scanshare::prelude::*;

fn lineitem(tuples: u64) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(64 * 1024, 10_000, 99);
    let table = scanshare::workload::microbench::setup_lineitem(&storage, tuples).unwrap();
    (storage, table)
}

fn engine(policy: PolicyKind, storage: &Arc<Storage>) -> Arc<Engine> {
    Engine::new(
        Arc::clone(storage),
        ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: 2 << 20,
            policy,
            ..Default::default()
        },
    )
    .unwrap()
}

fn count_rows(engine: &Arc<Engine>, table: TableId) -> u64 {
    let result = engine
        .query(table)
        .columns(["l_quantity"])
        .aggregate(AggrSpec::global(vec![Aggregate::Count]))
        .parallelism(2)
        .run()
        .unwrap();
    result[&0].count
}

#[test]
fn aborted_appends_are_never_visible() {
    let (storage, table) = lineitem(20_000);
    let engine = engine(PolicyKind::Pbm, &storage);
    assert_eq!(count_rows(&engine, table), 20_000);

    let mut tx = storage.begin_append(table).unwrap();
    tx.append_rows(&[
        vec![1; 500],
        vec![2; 500],
        vec![3; 500],
        vec![4; 500],
        vec![0; 500],
        vec![1; 500],
        vec![9000; 500],
    ])
    .unwrap();
    // The transaction itself sees its rows ...
    assert_eq!(tx.snapshot().stable_tuples(), 20_500);
    // ... but after abort the master snapshot and every query are unchanged.
    tx.abort();
    assert_eq!(
        storage.master_snapshot(table).unwrap().stable_tuples(),
        20_000
    );
    assert_eq!(count_rows(&engine, table), 20_000);
}

#[test]
fn only_one_of_two_conflicting_appenders_wins() {
    let (storage, table) = lineitem(10_000);
    let engine = engine(PolicyKind::Lru, &storage);

    let row = |v: i64| vec![vec![v; 10]; 7];
    let mut t1 = storage.begin_append(table).unwrap();
    let mut t2 = storage.begin_append(table).unwrap();
    t1.append_rows(&row(1)).unwrap();
    t2.append_rows(&row(2)).unwrap();
    t1.commit().unwrap();
    assert!(t2.commit().is_err(), "second committer must conflict");
    assert_eq!(count_rows(&engine, table), 10_010);
}

#[test]
fn abandoning_a_scan_mid_flight_leaves_the_system_usable() {
    let (storage, table) = lineitem(50_000);
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let engine = engine(policy, &storage);
        // Start a scan, consume only a couple of batches, then drop it.
        {
            let mut op = engine
                .scan(
                    table,
                    &["l_quantity", "l_shipdate"],
                    TupleRange::new(0, 50_000),
                )
                .unwrap();
            let first = op.next_batch().unwrap().expect("at least one batch");
            assert!(!first.is_empty());
            let _ = op.next_batch().unwrap();
            // Dropped here: the operator unregisters from its buffer manager.
        }
        // A fresh scan still sees the whole table and completes.
        assert_eq!(count_rows(&engine, table), 50_000, "policy {policy}");
    }
}

#[test]
fn scans_started_before_a_checkpoint_keep_their_snapshot() {
    let (storage, table) = lineitem(30_000);
    let engine = engine(PolicyKind::Pbm, &storage);

    // Open a scan on the current state.
    let mut old_scan = engine
        .scan(table, &["l_quantity"], TupleRange::new(0, 30_000))
        .unwrap();
    let first = old_scan.next_batch().unwrap().expect("batch");
    assert!(!first.is_empty());

    // Delete rows and checkpoint while the old scan is still open.
    for _ in 0..100 {
        engine.delete_row(table, 0).unwrap();
    }
    let new_snapshot = engine.checkpoint(table).unwrap();
    assert_eq!(new_snapshot.stable_tuples(), 29_900);

    // The old scan keeps producing from its original snapshot + PDT state.
    let mut produced = first.len();
    while let Some(batch) = old_scan.next_batch().unwrap() {
        produced += batch.len();
    }
    assert_eq!(produced, 30_000, "pre-checkpoint scan sees the old state");

    // New queries see the checkpointed state under every policy.
    drop(old_scan);
    for policy in [PolicyKind::Lru, PolicyKind::CScan] {
        let fresh = Engine::new(
            Arc::clone(&storage),
            ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: 2 << 20,
                policy,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(count_rows(&fresh, table), 29_900);
    }
}

#[test]
fn abm_unregisters_cleanly_when_a_cscan_aborts_half_way() {
    let (storage, table) = lineitem(40_000);
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let abm = Abm::new(AbmConfig::new(4 << 20, 64 * 1024));

    let request = |range: TupleRange| CScanRequest {
        table,
        snapshot: Arc::clone(&snapshot),
        layout: Arc::clone(&layout),
        columns: vec![0, 1, 6],
        ranges: RangeList::from_ranges([range]),
        in_order: false,
    };
    let doomed = abm
        .register_cscan(request(TupleRange::new(0, 40_000)))
        .unwrap();
    let survivor = abm
        .register_cscan(request(TupleRange::new(0, 40_000)))
        .unwrap();
    assert_eq!(abm.registered_scans(), 2);

    // Let the doomed scan consume a single chunk, then unregister it.
    let now = VirtualInstant::EPOCH;
    while abm.get_chunk(doomed.id).unwrap().is_none() {
        match abm.next_action(now) {
            scanshare::core::abm::AbmAction::Load(plan) => abm.complete_load(&plan, now).unwrap(),
            scanshare::core::abm::AbmAction::Idle => panic!("nothing to load"),
        }
    }
    abm.unregister_cscan(doomed.id).unwrap();
    assert_eq!(abm.registered_scans(), 1);
    assert!(
        abm.get_chunk(doomed.id).is_err(),
        "the aborted scan is gone"
    );

    // The surviving scan still receives every one of its chunks.
    let mut delivered = 0;
    let mut guard = 0;
    while !abm.is_finished(survivor.id) {
        guard += 1;
        assert!(guard < 10_000, "survivor made no progress");
        if abm.get_chunk(survivor.id).unwrap().is_some() {
            delivered += 1;
        } else {
            match abm.next_action(now) {
                scanshare::core::abm::AbmAction::Load(plan) => {
                    abm.complete_load(&plan, now).unwrap()
                }
                scanshare::core::abm::AbmAction::Idle => panic!("survivor starved"),
            }
        }
    }
    assert_eq!(delivered, survivor.total_chunks);

    // With the last scan gone, the ABM destroys the table metadata.
    abm.unregister_cscan(survivor.id).unwrap();
    assert_eq!(abm.version_count(table), 0);
    assert_eq!(abm.registered_scans(), 0);
}

// ---------------------------------------------------------------------------
// Device faults: a failing BlockDevice must surface as typed Error::Io
// values on the stream that hit it — never a panic, never a wedged workload.
// ---------------------------------------------------------------------------

mod device_faults {
    use std::sync::Arc;

    use scanshare::common::Error;
    use scanshare::core::registry::PolicyRegistry;
    use scanshare::iosim::{FaultInjectingDevice, FaultKind};
    use scanshare::prelude::*;
    use scanshare::workload::microbench::{self, MicrobenchConfig};

    const PAGE: u64 = 16 * 1024;

    fn workload() -> (Arc<Storage>, WorkloadSpec) {
        let micro = MicrobenchConfig {
            streams: 3,
            queries_per_stream: 2,
            lineitem_tuples: 30_000,
            ..MicrobenchConfig::tiny()
        };
        microbench::build(&micro, PAGE, 5_000).unwrap()
    }

    fn config(policy: PolicyKind) -> ScanShareConfig {
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: 5_000,
            buffer_pool_bytes: 64 * PAGE,
            policy,
            ..Default::default()
        }
    }

    fn sim_device() -> Arc<dyn BlockDevice> {
        Arc::new(IoDevice::new(
            Bandwidth::from_mb_per_sec(700.0),
            VirtualDuration::from_micros(100),
        ))
    }

    fn engine_with_device(
        storage: &Arc<Storage>,
        policy: PolicyKind,
        device: Arc<FaultInjectingDevice>,
    ) -> Arc<Engine> {
        Engine::with_device(
            Arc::clone(storage),
            config(policy),
            &PolicyRegistry::default(),
            device,
        )
        .unwrap()
    }

    #[test]
    fn one_hard_fault_ends_exactly_one_stream_with_a_typed_io_error() {
        let (storage, workload) = workload();
        for (policy, fault) in [
            (PolicyKind::Pbm, FaultKind::HardError),
            (PolicyKind::Lru, FaultKind::ShortRead),
            (PolicyKind::CScan, FaultKind::HardError),
        ] {
            // Fault the third read: every policy reaches it (the cooperative
            // backend loads each chunk only once, so it issues far fewer
            // device requests than the per-stream policies).
            let device = Arc::new(FaultInjectingDevice::new(sim_device()).with_fault(2, fault));
            let engine = engine_with_device(&storage, policy, Arc::clone(&device));
            assert_eq!(engine.device().name(), "fault-injecting");
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert_eq!(
                report.stream_errors.len(),
                1,
                "{policy}: exactly the stream that hit the faulted read ends early"
            );
            assert!(
                matches!(report.stream_errors[0].error, Error::Io(_)),
                "{policy}: the fault surfaces as a typed I/O error, got {:?}",
                report.stream_errors[0].error
            );
            // The other streams ran to completion: 3 streams x 2 queries,
            // minus the 1 or 2 the failed stream never finished.
            assert!(
                (4..6).contains(&report.queries),
                "{policy}: {} queries",
                report.queries
            );
            assert_eq!(device.injected_faults(), 1, "{policy}");
        }
    }

    #[test]
    fn a_dead_device_fails_every_stream_without_wedging_the_driver() {
        let (storage, workload) = workload();
        for policy in [PolicyKind::Pbm, PolicyKind::CScan] {
            let device = Arc::new(FaultInjectingDevice::new(sim_device()).with_fail_all_after(0));
            let engine = engine_with_device(&storage, policy, Arc::clone(&device));
            // The run completes (no panic, no deadlock) and reports the
            // failures per stream instead of returning a workload error.
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(
                !report.stream_errors.is_empty(),
                "{policy}: a dead device must surface on at least one stream"
            );
            for err in &report.stream_errors {
                assert!(
                    matches!(err.error, Error::Io(_)),
                    "{policy}: {:?}",
                    err.error
                );
            }
            assert!(device.injected_faults() > 0, "{policy}");
        }
    }

    #[test]
    fn transient_faults_are_retried_inside_the_device_and_never_surface() {
        let (storage, workload) = workload();
        for policy in [PolicyKind::Pbm, PolicyKind::CScan] {
            let device = Arc::new(
                FaultInjectingDevice::new(sim_device())
                    .with_fault(2, FaultKind::Transient { failures: 3 }),
            );
            let engine = engine_with_device(&storage, policy, Arc::clone(&device));
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(report.stream_errors.is_empty(), "{policy}");
            assert_eq!(report.queries, 6, "{policy}");
            assert_eq!(device.retries_injected(), 3, "{policy}");
            assert!(report.io.bytes_read > 0, "{policy}");
        }
    }
}
