//! Behavioural integration tests of the buffer-management policies driven
//! through the execution engine (not the simulator): the situations where
//! PBM's scan knowledge pays off over plain LRU, and where OPT bounds both.

use std::sync::Arc;

use scanshare::common::PageId;
use scanshare::core::bufferpool::BufferPool;
use scanshare::core::lru::LruPolicy;
use scanshare::core::opt::simulate_opt;
use scanshare::core::pbm::{PbmConfig, PbmPolicy};
use scanshare::core::policy::ReplacementPolicy;
use scanshare::prelude::*;

fn lineitem(tuples: u64) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(64 * 1024, 10_000, 17);
    let table = scanshare::workload::microbench::setup_lineitem(&storage, tuples).unwrap();
    (storage, table)
}

/// Replays two interleaved scans over the same table through a buffer pool
/// and returns (io_bytes, reference trace).
fn interleaved_scans(
    storage: &Arc<Storage>,
    table: TableId,
    pool_pages: usize,
    policy: Box<dyn ReplacementPolicy>,
    offset_pages: usize,
) -> (u64, Vec<PageId>) {
    let layout = storage.layout(table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let columns: Vec<usize> = vec![0, 1, 2, 6];
    let ranges = RangeList::single(0, snapshot.stable_tuples());
    let plan = layout.scan_page_plan(&snapshot, &columns, &ranges);
    let pages: Vec<(PageId, u64)> = plan
        .interleaved()
        .iter()
        .map(|p| (p.page, p.tuple_count))
        .collect();

    let mut pool = BufferPool::new(pool_pages, 64 * 1024, policy);
    let now = VirtualInstant::EPOCH;
    let scan_a = pool.register_scan(&plan, now);
    let scan_b = pool.register_scan(&plan, now);

    // Scan B trails scan A by `offset_pages`.
    let mut trace = Vec::new();
    let mut consumed_a = 0;
    let mut consumed_b = 0;
    for i in 0..pages.len() + offset_pages {
        if i < pages.len() {
            let (page, tuples) = pages[i];
            consumed_a += tuples;
            pool.request_page(page, Some(scan_a), now).unwrap();
            pool.report_scan_position(scan_a, consumed_a, now);
            trace.push(page);
        }
        if i >= offset_pages {
            let (page, tuples) = pages[i - offset_pages];
            consumed_b += tuples;
            pool.request_page(page, Some(scan_b), now).unwrap();
            pool.report_scan_position(scan_b, consumed_b, now);
            trace.push(page);
        }
    }
    pool.unregister_scan(scan_a, now);
    pool.unregister_scan(scan_b, now);
    (pool.stats().io_bytes, trace)
}

#[test]
fn pbm_beats_lru_when_a_trailing_scan_can_reuse_pages() {
    let (storage, table) = lineitem(200_000);
    // Table (4 columns) is ~44 pages; pool of 16 pages; the trailing scan is
    // 8 pages behind, so keeping just-read pages a little longer pays off.
    let pool_pages = 16;
    let offset = 8;
    let (lru_io, trace) = interleaved_scans(
        &storage,
        table,
        pool_pages,
        Box::new(LruPolicy::new()),
        offset,
    );
    let (pbm_io, _) = interleaved_scans(
        &storage,
        table,
        pool_pages,
        Box::new(PbmPolicy::new(PbmConfig {
            default_scan_speed: 1_000_000.0,
            ..PbmConfig::default()
        })),
        offset,
    );
    assert!(
        pbm_io <= lru_io,
        "PBM ({pbm_io} B) must not do more I/O than LRU ({lru_io} B) with a trailing scan"
    );

    // OPT on the same reference string is a lower bound for both.
    let opt = simulate_opt(&trace, pool_pages);
    assert!(opt.io_bytes(64 * 1024) <= pbm_io);
    assert!(opt.io_bytes(64 * 1024) <= lru_io);
}

#[test]
fn engine_level_scan_sharing_under_pbm() {
    let (storage, table) = lineitem(300_000);
    // Pool big enough for the 4 scanned columns of the table, so a second
    // query runs entirely from memory.
    let engine = Engine::new(
        Arc::clone(&storage),
        ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: 16 << 20,
            policy: PolicyKind::Pbm,
            ..Default::default()
        },
    )
    .unwrap();
    let q6 = |range: TupleRange| {
        engine
            .query(table)
            .columns(["l_quantity", "l_extendedprice", "l_discount", "l_shipdate"])
            .tuple_range(range)
            .filter(Predicate::new(0, CompareOp::Le, 24))
            .aggregate(AggrSpec::global(vec![Aggregate::Sum(1), Aggregate::Count]))
            .parallelism(2)
            .run()
            .unwrap()
    };
    let full = TupleRange::new(0, 300_000);
    let first = q6(full);
    let io_after_first = engine.buffer_stats().io_bytes;
    let second = q6(full);
    let io_after_second = engine.buffer_stats().io_bytes;
    assert_eq!(first, second, "same query, same answer");
    assert_eq!(
        io_after_first, io_after_second,
        "the second identical query is served entirely from the buffer pool"
    );

    // A partially overlapping query only loads the pages it has not seen.
    let _third = q6(TupleRange::new(150_000, 300_000));
    assert_eq!(engine.buffer_stats().io_bytes, io_after_second);
}

#[test]
fn opt_engine_reports_a_lower_bound_for_its_own_trace() {
    let (storage, table) = lineitem(150_000);
    let engine = Engine::new(
        Arc::clone(&storage),
        ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: 1 << 20, // deliberately small: 16 pages
            policy: PolicyKind::Opt,
            ..Default::default()
        },
    )
    .unwrap();
    // Two overlapping scans through the engine.
    for range in [
        TupleRange::new(0, 150_000),
        TupleRange::new(50_000, 150_000),
    ] {
        let result = engine
            .query(table)
            .columns(["l_quantity", "l_shipdate"])
            .tuple_range(range)
            .aggregate(AggrSpec::global(vec![Aggregate::Count]))
            .parallelism(2)
            .run()
            .unwrap();
        assert_eq!(result[&0].count, range.len());
    }
    let engine_stats = engine.buffer_stats();
    let opt = engine.opt_result().unwrap();
    assert!(
        opt.misses <= engine_stats.misses,
        "OPT replay cannot miss more than the PBM run"
    );
    assert!(opt.hits + opt.misses > 0);
}
