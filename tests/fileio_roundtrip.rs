//! Round-trip property test for the on-disk column segment layer: a table —
//! including a checkpoint taken mid-workload — is materialized to segment
//! files, reopened cold from nothing but the directory, and must serve
//! byte-identical pages and identical query results under every policy,
//! with the real-file I/O device doing the reads.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::workload::microbench;

const PAGE: u64 = 16 * 1024;
const CHUNK: u64 = 5_000;
const TUPLES: u64 = 30_000;

static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Self-cleaning tempdir (no external tempfile dependency).
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        let seq = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "scanshare-roundtrip-{tag}-{}-{seq}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine_for(storage: &Arc<Storage>, policy: PolicyKind, device: DeviceKind) -> Arc<Engine> {
    Engine::new(
        Arc::clone(storage),
        ScanShareConfig {
            page_size_bytes: PAGE,
            chunk_tuples: CHUNK,
            buffer_pool_bytes: 64 * PAGE,
            policy,
            device,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Count + per-column sums over the whole table: a compact fingerprint of
/// every value the scan produced.
fn fingerprint(engine: &Arc<Engine>, table: TableId) -> (u64, Vec<i64>) {
    let result = engine
        .query(table)
        .columns(["l_quantity", "l_extendedprice", "l_shipdate"])
        .aggregate(AggrSpec::global(vec![
            Aggregate::Sum(0),
            Aggregate::Sum(1),
            Aggregate::Sum(2),
        ]))
        .parallelism(2)
        .run()
        .unwrap();
    let group = &result[&0];
    (group.count, group.accumulators.clone())
}

/// Builds a lineitem table, runs a little update workload with a checkpoint
/// taken while a scan is still open, and materializes the result to `dir`.
fn build_and_materialize(dir: &std::path::Path) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(PAGE, CHUNK, 4242);
    let table = microbench::setup_lineitem(&storage, TUPLES).unwrap();
    let engine = engine_for(&storage, PolicyKind::Pbm, DeviceKind::Sim);

    // Open a scan mid-workload so the checkpoint has to race it.
    let mut open_scan = engine
        .scan(table, &["l_quantity"], TupleRange::new(0, TUPLES))
        .unwrap();
    open_scan.next_batch().unwrap().expect("first batch");

    // A handful of updates: deletes at the front, inserts past the end.
    for rid in 0..50 {
        engine.delete_row(table, rid).unwrap();
    }
    for i in 0..25 {
        // Append at the visible end (50 deletes shrank it, inserts grow it).
        engine
            .insert_row(table, TUPLES - 50 + i, vec![7, 700, 1, 1, 0, 0, 9_000])
            .unwrap();
    }
    let snapshot = engine.checkpoint(table).unwrap();
    assert_eq!(snapshot.stable_tuples(), TUPLES - 50 + 25);

    // Drain the pre-checkpoint scan: it must still see the old state.
    let mut seen = 0;
    while let Some(batch) = open_scan.next_batch().unwrap() {
        seen += batch.len();
    }
    drop(open_scan);
    assert!(seen > 0);

    // Materialize the checkpointed master snapshot as segment files.
    storage.materialize_table(table, dir).unwrap();
    (storage, table)
}

#[test]
fn cold_reopen_serves_byte_identical_pages() {
    let dir = TestDir::new("pages");
    let (storage, table) = build_and_materialize(&dir.0);
    let reopened = Storage::open_directory(&dir.0).unwrap();
    let cold_table = reopened.table_by_name("lineitem").unwrap().id;

    let layout = storage.layout(table).unwrap();
    let cold_layout = reopened.layout(cold_table).unwrap();
    let snapshot = storage.master_snapshot(table).unwrap();
    let cold = reopened.master_snapshot(cold_table).unwrap();

    assert_eq!(cold.stable_tuples(), snapshot.stable_tuples());
    for col in 0..layout.column_count() {
        // The manifest records page ids verbatim, so `Snapshot::page` maps
        // to the same ids — I/O traces are comparable across the round trip.
        assert_eq!(
            cold.column_pages(col),
            snapshot.column_pages(col),
            "column {col} page ids survive the round trip"
        );
        for page_index in 0..snapshot.column_pages(col).len() as u64 {
            let warm = storage
                .read_page(&layout, &snapshot, col, page_index)
                .unwrap();
            let disk = reopened
                .read_page(&cold_layout, &cold, col, page_index)
                .unwrap();
            assert_eq!(
                warm.values, disk.values,
                "column {col} page {page_index} is byte-identical after cold reopen"
            );
        }
    }
}

#[test]
fn cold_reopen_answers_queries_identically_under_every_policy() {
    let dir = TestDir::new("aggr");
    let (storage, table) = build_and_materialize(&dir.0);
    let reopened = Storage::open_directory(&dir.0).unwrap();
    let cold_table = reopened.table_by_name("lineitem").unwrap().id;

    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let warm = fingerprint(&engine_for(&storage, policy, DeviceKind::Sim), table);
        let disk = fingerprint(&engine_for(&reopened, policy, DeviceKind::File), cold_table);
        assert_eq!(warm, disk, "{policy}: file-backed engine matches in-memory");
        assert_eq!(warm.0, TUPLES - 50 + 25, "{policy}: count reflects updates");
    }
}

#[test]
fn file_device_reports_real_read_latencies() {
    let dir = TestDir::new("latency");
    let (_storage, _table) = build_and_materialize(&dir.0);
    let reopened = Storage::open_directory(&dir.0).unwrap();
    let cold_table = reopened.table_by_name("lineitem").unwrap().id;

    let engine = engine_for(&reopened, PolicyKind::Pbm, DeviceKind::File);
    assert_eq!(engine.device().name(), "file");
    let (count, _) = fingerprint(&engine, cold_table);
    assert_eq!(count, TUPLES - 50 + 25);

    let stats = engine.device().stats();
    assert!(stats.bytes_read > 0, "the segment files were actually read");
    let latency = engine
        .device()
        .latency()
        .expect("the file device measures wall-clock latencies");
    let demand = latency.demand;
    assert!(demand.samples > 0, "demand reads were sampled");
    assert!(demand.p50_nanos <= demand.p95_nanos && demand.p95_nanos <= demand.p99_nanos);
}
