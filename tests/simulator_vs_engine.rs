//! Integration tests tying the simulator, the workloads and the policies
//! together: determinism, policy ordering under memory pressure, and the
//! figure harness smoke test.

use std::sync::Arc;

use scanshare::prelude::*;
use scanshare::sim::experiment::{
    fig11_micro_buffer_sweep, fig14_tpch_buffer_sweep, ExperimentScale,
};
use scanshare::workload::microbench;
use scanshare::workload::spec::{QuerySpec, ScanSpec, StreamSpec};

fn micro_setup() -> (Arc<Storage>, WorkloadSpec, u64) {
    let config = MicrobenchConfig {
        streams: 4,
        queries_per_stream: 6,
        lineitem_tuples: 150_000,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
    let probe = Simulation::new(
        Arc::clone(&storage),
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .unwrap();
    let accessed = probe.accessed_volume(&workload).unwrap();
    (storage, workload, accessed)
}

fn run(
    storage: &Arc<Storage>,
    workload: &WorkloadSpec,
    policy: PolicyKind,
    pool_bytes: u64,
    bandwidth_mb: f64,
) -> SimResult {
    let config = SimConfig {
        scanshare: ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: pool_bytes,
            io_bandwidth: Bandwidth::from_mb_per_sec(bandwidth_mb),
            policy,
            ..Default::default()
        },
        cores: 8,
        sharing_sample_interval: None,
    };
    Simulation::new(Arc::clone(storage), config)
        .unwrap()
        .run(workload)
        .unwrap()
}

#[test]
fn paper_headline_ordering_under_memory_pressure() {
    let (storage, workload, accessed) = micro_setup();
    let pool = accessed * 2 / 5; // 40 %, the paper's default
    let lru = run(&storage, &workload, PolicyKind::Lru, pool, 700.0);
    let pbm = run(&storage, &workload, PolicyKind::Pbm, pool, 700.0);
    let cscan = run(&storage, &workload, PolicyKind::CScan, pool, 700.0);
    let opt = run(&storage, &workload, PolicyKind::Opt, pool, 700.0);

    // The headline result: scan-aware policies never do more I/O than LRU,
    // and OPT lower-bounds the order-preserving policies on the same trace.
    assert!(pbm.total_io_bytes <= lru.total_io_bytes);
    assert!(cscan.total_io_bytes <= lru.total_io_bytes);
    assert!(opt.total_io_bytes <= pbm.total_io_bytes);

    // Time ordering follows I/O ordering in the I/O-bound regime.
    assert!(pbm.avg_stream_time_secs().unwrap() <= lru.avg_stream_time_secs().unwrap() * 1.02);
}

#[test]
fn giant_pool_makes_all_policies_equal() {
    let (storage, workload, accessed) = micro_setup();
    // Pool larger than everything accessed: every policy reads each page once.
    let pool = accessed * 2;
    let lru = run(&storage, &workload, PolicyKind::Lru, pool, 700.0);
    let pbm = run(&storage, &workload, PolicyKind::Pbm, pool, 700.0);
    let opt = run(&storage, &workload, PolicyKind::Opt, pool, 700.0);
    assert_eq!(lru.total_io_bytes, pbm.total_io_bytes);
    assert_eq!(opt.total_io_bytes, pbm.total_io_bytes);
    // Cooperative scans load chunks for the union of columns of the scans
    // interested in them, so their volume can only be lower or equal.
    let cscan = run(&storage, &workload, PolicyKind::CScan, pool, 700.0);
    assert!(cscan.total_io_bytes <= lru.total_io_bytes);
}

#[test]
fn cpu_bound_regime_erases_policy_time_differences() {
    let (storage, workload, accessed) = micro_setup();
    let pool = accessed * 2 / 5;
    // At very high bandwidth the system becomes CPU bound: LRU and PBM finish
    // in (nearly) the same time even though their I/O volumes differ.
    let lru = run(&storage, &workload, PolicyKind::Lru, pool, 20_000.0);
    let pbm = run(&storage, &workload, PolicyKind::Pbm, pool, 20_000.0);
    let t_lru = lru.avg_stream_time_secs().unwrap();
    let t_pbm = pbm.avg_stream_time_secs().unwrap();
    // The remaining gap comes from the fixed per-request latency of the
    // simulated device (which does not shrink with bandwidth); the paper's
    // convergence is likewise "roughly disappears", not exact equality.
    assert!(
        (t_lru - t_pbm).abs() / t_pbm < 0.25,
        "lru {t_lru} vs pbm {t_pbm}"
    );
    assert!(lru.total_io_bytes >= pbm.total_io_bytes);

    // The gap at high bandwidth must be (relatively) smaller than in the
    // I/O-bound regime at 200 MB/s.
    let slow_lru = run(&storage, &workload, PolicyKind::Lru, pool, 200.0);
    let slow_pbm = run(&storage, &workload, PolicyKind::Pbm, pool, 200.0);
    let slow_gap =
        (slow_lru.avg_stream_time_secs().unwrap() - slow_pbm.avg_stream_time_secs().unwrap()).abs()
            / slow_pbm.avg_stream_time_secs().unwrap();
    let fast_gap = (t_lru - t_pbm).abs() / t_pbm;
    assert!(
        fast_gap <= slow_gap + 0.05,
        "policy gap should shrink as the system becomes CPU bound \
         (fast {fast_gap:.3} vs slow {slow_gap:.3})"
    );
}

#[test]
fn simulator_is_deterministic_across_runs() {
    let (storage, workload, accessed) = micro_setup();
    let pool = accessed / 2;
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Pbm,
        PolicyKind::CScan,
        PolicyKind::Opt,
    ] {
        let a = run(&storage, &workload, policy, pool, 700.0);
        let b = run(&storage, &workload, policy, pool, 700.0);
        assert_eq!(a.total_io_bytes, b.total_io_bytes, "{policy}");
        assert_eq!(a.stream_times, b.stream_times, "{policy}");
    }
}

// ---------------------------------------------------------------------------
// Asynchronous prefetching: engine/simulator parity and overlap
// ---------------------------------------------------------------------------

const PF_PAGE: u64 = 64 * 1024;
const PF_TUPLES: u64 = 200_000;

/// A two-column table plus the matching one-stream workload spec: the same
/// scans expressed once for the execution engine and once for the simulator.
fn prefetch_setup() -> (Arc<Storage>, TableId, WorkloadSpec) {
    let storage = Storage::with_seed(PF_PAGE, 10_000, 11);
    let spec = TableSpec::new(
        "t",
        vec![
            ColumnSpec::with_width("a", ColumnType::Int64, 8.0),
            ColumnSpec::with_width("b", ColumnType::Int64, 4.0),
        ],
        PF_TUPLES,
    );
    let table = storage
        .create_table_with_data(
            spec,
            vec![
                DataGen::Sequential { start: 0, step: 1 },
                DataGen::Constant(3),
            ],
        )
        .unwrap();
    let query = QuerySpec {
        label: "full-scan".into(),
        scans: vec![ScanSpec {
            table,
            columns: vec![0, 1],
            ranges: RangeList::single(0, PF_TUPLES),
            predicate: None,
        }],
        cpu_factor: 1.0,
        join: None,
    };
    let workload = WorkloadSpec::read_only(
        "prefetch-parity",
        vec![StreamSpec {
            label: "s0".into(),
            queries: vec![query.clone(), query],
        }],
    );
    (storage, table, workload)
}

fn prefetch_config(policy: PolicyKind, pool_bytes: u64, prefetch_pages: usize) -> ScanShareConfig {
    ScanShareConfig {
        page_size_bytes: PF_PAGE,
        chunk_tuples: 10_000,
        buffer_pool_bytes: pool_bytes,
        policy,
        prefetch_pages,
        ..Default::default()
    }
}

/// Runs the workload on the execution engine (two sequential full scans,
/// like the simulated stream) and returns the buffer-manager stats.
fn engine_io(policy: PolicyKind, pool_bytes: u64, prefetch_pages: usize) -> BufferStats {
    let (storage, table, _) = prefetch_setup();
    let engine = Engine::new(storage, prefetch_config(policy, pool_bytes, prefetch_pages)).unwrap();
    for _ in 0..2 {
        let result = engine
            .query(table)
            .columns(["a", "b"])
            .aggregate(AggrSpec::global(vec![Aggregate::Sum(1), Aggregate::Count]))
            .run()
            .unwrap();
        assert_eq!(result[&0].count, PF_TUPLES);
    }
    engine.buffer_stats()
}

/// Runs the same workload through the discrete-event simulator.
fn sim_io(policy: PolicyKind, pool_bytes: u64, prefetch_pages: usize) -> SimResult {
    let (storage, _, workload) = prefetch_setup();
    let sim = Simulation::new(
        storage,
        SimConfig {
            scanshare: prefetch_config(policy, pool_bytes, prefetch_pages),
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .unwrap();
    sim.run(&workload).unwrap()
}

#[test]
fn engine_and_simulator_agree_on_io_with_prefetch_enabled() {
    // LRU under replacement pressure (the pool holds ~40 % of the table):
    // both passes re-read everything, prefetched or not, and the engine and
    // the simulator must account the identical volume.
    let pool_small = 15 * PF_PAGE;
    for window in [0usize, 4] {
        let engine = engine_io(PolicyKind::Lru, pool_small, window);
        let sim = sim_io(PolicyKind::Lru, pool_small, window);
        assert_eq!(
            engine.io_bytes, sim.total_io_bytes,
            "lru window {window}: engine and simulator I/O volumes must match"
        );
        assert_eq!(
            engine.io_bytes, sim.buffer.io_bytes,
            "lru window {window}: sim pool stats agree with its reported total"
        );
    }

    // PBM with headroom: every distinct page is read exactly once, by
    // prefetch or by demand, in both implementations.
    let pool_large = 64 * PF_PAGE;
    for window in [0usize, 4] {
        let engine = engine_io(PolicyKind::Pbm, pool_large, window);
        let sim = sim_io(PolicyKind::Pbm, pool_large, window);
        assert_eq!(
            engine.io_bytes, sim.total_io_bytes,
            "pbm window {window}: engine and simulator I/O volumes must match"
        );
        if window > 0 {
            assert!(
                engine.prefetched_pages > 0,
                "pbm: the engine actually prefetched"
            );
            assert!(
                sim.buffer.prefetched_pages > 0,
                "pbm: the simulator actually prefetched"
            );
        }
    }
}

#[test]
fn prefetch_changes_when_pages_load_not_which() {
    // Prefetching never evicts, so the I/O volume is invariant in the
    // window for every pooled policy, under pressure and with headroom.
    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        for pool in [15 * PF_PAGE, 64 * PF_PAGE] {
            let sync = sim_io(policy, pool, 0);
            let prefetch = sim_io(policy, pool, 8);
            assert_eq!(
                sync.total_io_bytes, prefetch.total_io_bytes,
                "{policy}: prefetching must not change the I/O volume"
            );
            assert_eq!(
                prefetch.buffer.io_bytes - prefetch.buffer.prefetch_io_bytes,
                prefetch.buffer.misses * PF_PAGE,
                "{policy}: demand I/O is exactly the misses"
            );
        }
    }
}

#[test]
fn prefetch_overlap_reduces_stream_time_when_compute_can_hide_io() {
    // One stream on one core with a fast device: the bench regime where a
    // synchronous scan pays io + cpu per page while the prefetching scan
    // pays max(io, cpu). Virtual time is deterministic, so strictly less.
    let (storage, _, workload) = prefetch_setup();
    let run = |prefetch_pages: usize| {
        let mut scanshare = prefetch_config(PolicyKind::Pbm, 64 * PF_PAGE, prefetch_pages);
        scanshare.io_bandwidth = Bandwidth::from_gb_per_sec(2.0);
        scanshare.io_latency_nanos = 10_000;
        Simulation::new(
            Arc::clone(&storage),
            SimConfig {
                scanshare,
                cores: 1,
                sharing_sample_interval: None,
            },
        )
        .unwrap()
        .run(&workload)
        .unwrap()
    };
    let sync = run(0);
    let prefetch = run(8);
    assert_eq!(sync.total_io_bytes, prefetch.total_io_bytes);
    assert!(
        prefetch.avg_stream_time_secs().unwrap() < sync.avg_stream_time_secs().unwrap(),
        "prefetching must hide I/O behind compute (sync {:?} vs prefetch {:?})",
        sync.avg_stream_time_secs(),
        prefetch.avg_stream_time_secs()
    );
}

// ---------------------------------------------------------------------------
// Whole-workload parity: the WorkloadDriver runs the same specs the
// simulator executes, against the live engine
// ---------------------------------------------------------------------------

/// A microbench workload small enough that the pool holds every accessed
/// page: each distinct page is read exactly once no matter how the driver's
/// stream threads interleave, so the engine's I/O volume is deterministic
/// and must equal the simulator's.
#[test]
fn workload_driver_and_simulator_agree_on_io_with_headroom() {
    let config = MicrobenchConfig {
        streams: 4,
        queries_per_stream: 3,
        lineitem_tuples: 60_000,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
    let accessed = Simulation::new(
        Arc::clone(&storage),
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .unwrap()
    .accessed_volume(&workload)
    .unwrap();

    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        for shards in [1usize, 4] {
            let scanshare = ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: accessed * 2,
                policy,
                pool_shards: shards,
                ..Default::default()
            };
            let engine = Engine::new(Arc::clone(&storage), scanshare.clone()).unwrap();
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            let sim = Simulation::new(
                Arc::clone(&storage),
                SimConfig {
                    scanshare,
                    cores: 8,
                    sharing_sample_interval: None,
                },
            )
            .unwrap()
            .run(&workload)
            .unwrap();
            assert_eq!(
                report.buffer.io_bytes, sim.total_io_bytes,
                "{policy} shards {shards}: engine and simulator I/O volumes must match"
            );
            assert_eq!(
                report.buffer.io_bytes, accessed,
                "{policy} shards {shards}: with headroom every accessed page loads exactly once"
            );
            assert_eq!(report.queries, workload.query_count() as u64);
        }
    }
}

/// With a single stream there is no thread interleaving at all: the driver
/// issues the exact page-request sequence the simulator models, so the I/O
/// volumes must match byte-for-byte even under replacement pressure.
#[test]
fn workload_driver_matches_simulator_under_pressure_single_stream() {
    let config = MicrobenchConfig {
        streams: 1,
        queries_per_stream: 6,
        lineitem_tuples: 80_000,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        let scanshare = ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: 8 * 64 * 1024, // 8 pages: heavy replacement
            policy,
            ..Default::default()
        };
        let engine = Engine::new(Arc::clone(&storage), scanshare.clone()).unwrap();
        let report = WorkloadDriver::new(engine).run(&workload).unwrap();
        let sim = Simulation::new(
            Arc::clone(&storage),
            SimConfig {
                scanshare,
                cores: 8,
                sharing_sample_interval: None,
            },
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        assert!(
            report.buffer.evictions > 0,
            "{policy}: the pressure configuration must actually evict"
        );
        assert_eq!(
            report.buffer.io_bytes, sim.total_io_bytes,
            "{policy}: engine and simulator I/O volumes must match under pressure"
        );
    }
}

// ---------------------------------------------------------------------------
// Cooperative Scans: engine == simulator parity and sharing-potential
// sampling over the decomposed ABM
// ---------------------------------------------------------------------------

/// With a single stream there is no thread interleaving: the driver issues
/// the exact RegisterCScan / GetChunk / load sequence the simulator's
/// event loop models (extra no-op `GetChunk` probes aside), so the
/// decomposed ABM must account the identical I/O volume, hit and miss
/// counts — under replacement pressure and with headroom, at every
/// directory shard count.
#[test]
fn workload_driver_matches_simulator_under_cscan_single_stream() {
    let config = MicrobenchConfig {
        streams: 1,
        queries_per_stream: 6,
        lineitem_tuples: 80_000,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
    let accessed = Simulation::new(
        Arc::clone(&storage),
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .unwrap()
    .accessed_volume(&workload)
    .unwrap();

    for pool in [accessed * 2 / 5, accessed * 2] {
        let scanshare = ScanShareConfig {
            page_size_bytes: 64 * 1024,
            chunk_tuples: 10_000,
            buffer_pool_bytes: pool,
            policy: PolicyKind::CScan,
            ..Default::default()
        };
        let sim = Simulation::new(
            Arc::clone(&storage),
            SimConfig {
                scanshare: scanshare.clone(),
                cores: 8,
                sharing_sample_interval: None,
            },
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        for shards in [1usize, 4] {
            let engine = Engine::new(
                Arc::clone(&storage),
                ScanShareConfig {
                    pool_shards: shards,
                    ..scanshare.clone()
                },
            )
            .unwrap();
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(
                report.stream_errors.is_empty(),
                "pool {pool} shards {shards}"
            );
            assert_eq!(
                report.buffer.io_bytes, sim.total_io_bytes,
                "pool {pool} shards {shards}: engine and simulator I/O must match"
            );
            assert_eq!(
                (report.buffer.hits, report.buffer.misses),
                (sim.buffer.hits, sim.buffer.misses),
                "pool {pool} shards {shards}: delivery/load counts must match"
            );
        }
    }
}

/// The sharing-potential sampling of Figures 17/18 now covers the
/// Cooperative Scans path too: the ABM reports each scan's outstanding
/// pages, and heavily-overlapping streams must show shared outstanding
/// data.
#[test]
fn cscan_simulation_records_a_sharing_profile() {
    let config = MicrobenchConfig::tiny().with_fixed_percentage(100);
    let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
    let result = Simulation::new(
        storage,
        SimConfig {
            scanshare: ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: 4 << 20,
                policy: PolicyKind::CScan,
                ..Default::default()
            },
            cores: 8,
            sharing_sample_interval: Some(VirtualDuration::from_micros(500)),
        },
    )
    .unwrap()
    .run(&workload)
    .unwrap();
    let profile = result.sharing.expect("sampling enabled");
    assert!(!profile.is_empty());
    assert!(profile.peak_outstanding_bytes() > 0);
    assert!(
        profile.avg_shared_fraction() > 0.0,
        "full-table streams must overlap in their outstanding data"
    );
}

// ---------------------------------------------------------------------------
// Mixed read/write workloads: update streams + checkpoints, engine == sim
// ---------------------------------------------------------------------------

use scanshare::workload::spec::{UpdateMix, UpdateStreamSpec};

/// A single-stream microbench workload with one update stream on `lineitem`
/// (rounds barrier-synchronize updates and queries, so the engine's thread
/// interleaving cannot perturb the I/O; see `WorkloadDriver::run`).
fn mixed_setup(rate: u64, checkpoint_every: Option<u64>) -> (Arc<Storage>, WorkloadSpec) {
    let config = MicrobenchConfig {
        streams: 1,
        queries_per_stream: 6,
        lineitem_tuples: 80_000,
        ..Default::default()
    };
    let (storage, workload) = microbench::build(&config, 64 * 1024, 10_000).unwrap();
    let table = storage.table_ids()[0];
    let workload = workload.with_update_stream(UpdateStreamSpec {
        label: "updates".into(),
        table,
        ops_per_round: rate,
        mix: UpdateMix::balanced(),
        checkpoint_every,
        seed: 0xbeef,
    });
    (storage, workload)
}

/// Mixed runs mutate storage (checkpoints install snapshots), so the engine
/// and the simulator each run against their own deterministically rebuilt
/// instance; page-id allocation replays identically on both.
#[test]
fn workload_driver_matches_simulator_for_mixed_read_write_workloads() {
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        for rate in [16u64, 96] {
            let scanshare = ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: 24 * 64 * 1024, // pressure: ~1/3 of the table
                policy,
                ..Default::default()
            };
            let (engine_storage, workload) = mixed_setup(rate, Some(2));
            let engine = Engine::new(engine_storage, scanshare.clone()).unwrap();
            let report = WorkloadDriver::new(engine).run(&workload).unwrap();
            assert!(report.stream_errors.is_empty(), "{policy} rate {rate}");
            assert_eq!(report.update_ops, rate * 6, "{policy} rate {rate}");
            assert_eq!(report.checkpoints, 3, "{policy} rate {rate}");

            let (sim_storage, workload) = mixed_setup(rate, Some(2));
            let sim = Simulation::new(
                sim_storage,
                SimConfig {
                    scanshare,
                    cores: 8,
                    sharing_sample_interval: None,
                },
            )
            .unwrap()
            .run(&workload)
            .unwrap();
            assert_eq!(
                report.buffer.io_bytes, sim.total_io_bytes,
                "{policy} rate {rate}: engine and simulator I/O must match under updates"
            );
            assert_eq!(
                report.buffer.invalidated_pages, sim.buffer.invalidated_pages,
                "{policy} rate {rate}: checkpoint invalidation must match"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Broadcast hash joins: engine == simulator parity (build scan registers and
// drains first, probe scans stream through the shared-scan machinery)
// ---------------------------------------------------------------------------

use scanshare::workload::spec::JoinSpec;

/// `lineitem` plus a 3000-row dimension table keyed so every `l_shipdate`
/// value (8000..10500) matches exactly one dimension row, and a one-stream
/// workload of two join queries over overlapping probe ranges. The build
/// columns are deliberately listed probe-key-last so the simulator's
/// key-first projection reorder is exercised.
fn join_setup() -> (Arc<Storage>, WorkloadSpec) {
    let storage = Storage::with_seed(64 * 1024, 10_000, 11);
    let lineitem = microbench::setup_lineitem(&storage, 80_000).unwrap();
    let dim = storage
        .create_table_with_data(
            TableSpec::new(
                "dim",
                vec![
                    ColumnSpec::with_width("d_weight", ColumnType::Decimal, 2.0),
                    ColumnSpec::with_width("d_key", ColumnType::Int64, 8.0),
                ],
                3000,
            ),
            vec![
                DataGen::Uniform { min: 1, max: 9 },
                DataGen::Sequential {
                    start: 8000,
                    step: 1,
                },
            ],
        )
        .unwrap();
    let join_query = |label: &str, range: TupleRange| QuerySpec {
        label: label.into(),
        scans: vec![
            ScanSpec {
                table: dim,
                columns: vec![0, 1],
                ranges: RangeList::single(0, 3000),
                predicate: None,
            },
            ScanSpec {
                table: lineitem,
                columns: vec![0, 6],
                ranges: RangeList::from_ranges([range]),
                predicate: None,
            },
        ],
        cpu_factor: 1.0,
        join: Some(JoinSpec {
            left_col: 1,
            right_col: 1,
        }),
    };
    let workload = WorkloadSpec::read_only(
        "join-parity",
        vec![StreamSpec {
            label: "s0".into(),
            queries: vec![
                join_query("j0", TupleRange::new(0, 60_000)),
                join_query("j1", TupleRange::new(20_000, 80_000)),
            ],
        }],
    );
    (storage, workload)
}

/// Single stream, so both executors issue the identical request sequence:
/// the driver's lowered join (build first, then the probe) must account the
/// byte-identical I/O the simulator's deferred-probe registration models —
/// under replacement pressure and with headroom, at every shard count.
#[test]
fn workload_driver_matches_simulator_for_join_queries() {
    let (storage, workload) = join_setup();
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        for pool in [24 * 64 * 1024, 8 << 20] {
            let scanshare = ScanShareConfig {
                page_size_bytes: 64 * 1024,
                chunk_tuples: 10_000,
                buffer_pool_bytes: pool,
                policy,
                ..Default::default()
            };
            let sim = Simulation::new(
                Arc::clone(&storage),
                SimConfig {
                    scanshare: scanshare.clone(),
                    cores: 8,
                    sharing_sample_interval: None,
                },
            )
            .unwrap()
            .run(&workload)
            .unwrap();
            for shards in [1usize, 4] {
                let engine = Engine::new(
                    Arc::clone(&storage),
                    ScanShareConfig {
                        pool_shards: shards,
                        ..scanshare.clone()
                    },
                )
                .unwrap();
                let report = WorkloadDriver::new(engine).run(&workload).unwrap();
                assert!(
                    report.stream_errors.is_empty(),
                    "{policy} pool {pool} shards {shards}: {:?}",
                    report.stream_errors
                );
                assert_eq!(
                    report.buffer.io_bytes, sim.total_io_bytes,
                    "{policy} pool {pool} shards {shards}: engine and simulator I/O must match \
                     for join queries"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zone-map data skipping: engine == simulator parity with pruning enabled
// ---------------------------------------------------------------------------

/// Runs the skipping workload on both executors and asserts they account
/// the identical I/O volume and skipped-tuple count.
fn assert_skipping_parity(
    config: &scanshare::workload::skipping::SkippingConfig,
    policy: PolicyKind,
    zone_maps: bool,
    shards: usize,
    label: &str,
) {
    use scanshare::workload::skipping;
    let scanshare = ScanShareConfig {
        page_size_bytes: 16 * 1024,
        chunk_tuples: 1000,
        buffer_pool_bytes: 8 << 20, // headroom: order-insensitive page sets
        policy,
        pool_shards: shards,
        zone_maps,
        ..Default::default()
    };
    let (storage, workload) = skipping::build(config, 16 * 1024, 1000).unwrap();
    let engine = Engine::new(Arc::clone(&storage), scanshare.clone()).unwrap();
    let report = WorkloadDriver::new(engine).run(&workload).unwrap();
    assert!(
        report.stream_errors.is_empty(),
        "{label}: {:?}",
        report.stream_errors
    );
    let sim = Simulation::new(
        Arc::clone(&storage),
        SimConfig {
            scanshare,
            cores: 8,
            sharing_sample_interval: None,
        },
    )
    .unwrap()
    .run(&workload)
    .unwrap();
    assert_eq!(
        report.buffer.io_bytes, sim.total_io_bytes,
        "{label}: engine and simulator I/O must match"
    );
    assert_eq!(
        report.buffer.pruned_tuples, sim.buffer.pruned_tuples,
        "{label}: engine and simulator pruning must match"
    );
    if zone_maps {
        assert!(
            report.buffer.pruned_tuples > 0,
            "{label}: selective streams must prune"
        );
    } else {
        assert_eq!(report.buffer.pruned_tuples, 0, "{label}");
    }
}

/// The skipping workload on the pooled policies, multi-stream with mixed
/// selectivities and buffer headroom so each surviving page loads exactly
/// once regardless of thread interleaving: both executors must prune the
/// identical chunk sets (identical I/O and skipped-tuple counts), and
/// turning zone maps off must restore the identical unpruned volume.
#[test]
fn workload_driver_matches_simulator_with_zone_skipping() {
    use scanshare::workload::skipping::SkippingConfig;
    let config = SkippingConfig {
        streams: 3,
        queries_per_stream: 2,
        tuples: 40_000,
        selectivities: vec![0.01, 0.10, 1.0],
        value_span: 10_000,
        seed: 0x5eed,
    };
    for policy in [PolicyKind::Lru, PolicyKind::Pbm] {
        for zone_maps in [true, false] {
            for shards in [1usize, 4] {
                let label = format!("{policy} zones {zone_maps} shards {shards}");
                assert_skipping_parity(&config, policy, zone_maps, shards, &label);
            }
        }
    }
}

/// Cooperative Scans skipping parity, single-stream (like the other CScan
/// parity tests: with one stream there is no thread interleaving, so the
/// ABM's chunk-load sequence is deterministic and must match the simulator
/// byte for byte) at each selectivity, with zone maps on and off.
#[test]
fn workload_driver_matches_simulator_with_zone_skipping_under_cscan() {
    use scanshare::workload::skipping::SkippingConfig;
    for selectivity in [0.01, 0.10] {
        for zone_maps in [true, false] {
            let config = SkippingConfig {
                streams: 1,
                queries_per_stream: 3,
                tuples: 40_000,
                selectivities: vec![selectivity],
                value_span: 10_000,
                seed: 0x5eed,
            };
            let label = format!("cscan sel {selectivity} zones {zone_maps}");
            assert_skipping_parity(&config, PolicyKind::CScan, zone_maps, 1, &label);
        }
    }
}

#[test]
fn figure_harness_smoke_test() {
    let scale = ExperimentScale::test();
    let fig11 = fig11_micro_buffer_sweep(&scale).unwrap();
    assert_eq!(fig11.len(), scale.buffer_fractions.len() * 4);
    let fig14 = fig14_tpch_buffer_sweep(&scale).unwrap();
    assert_eq!(fig14.len(), scale.buffer_fractions.len() * 4);
    // Larger pools never increase I/O for any policy.
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Pbm,
        PolicyKind::CScan,
        PolicyKind::Opt,
    ] {
        for rows in [&fig11, &fig14] {
            let mut ios: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.policy == policy)
                .map(|r| (r.x_value, r.total_io_gb))
                .collect();
            ios.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in ios.windows(2) {
                assert!(
                    pair[1].1 <= pair[0].1 * 1.01 + 1e-9,
                    "{policy}: I/O must not grow with pool size ({pair:?})"
                );
            }
        }
    }
}
