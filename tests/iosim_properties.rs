//! Randomized property tests for the queueing invariants of the simulated
//! I/O device, exercised through its asynchronous submission API.
//!
//! Like `property_invariants.rs`, these use the in-repo deterministic
//! xorshift generator instead of an external property-testing crate: every
//! run exercises the same case set and a failing case reproduces from its
//! printed seed.

use scanshare::common::{Bandwidth, VirtualDuration, VirtualInstant};
use scanshare::iosim::{IoCompletion, IoDevice, IoKind};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

fn random_device(rng: &mut Rng) -> IoDevice {
    IoDevice::new(
        Bandwidth::from_mb_per_sec(rng.range(50, 3_000) as f64),
        VirtualDuration::from_nanos(rng.below(300_000)),
    )
}

/// Submits a random request sequence with non-decreasing submission times
/// (each caller submits "now or later", like the engine's monotone virtual
/// clock) and returns the completions in submission order.
fn random_sequence(rng: &mut Rng, device: &IoDevice) -> Vec<IoCompletion> {
    let mut now = VirtualInstant::EPOCH;
    let count = rng.range(1, 60);
    let mut completions = Vec::with_capacity(count as usize);
    for _ in 0..count {
        // Sometimes jump far ahead (idle gaps), sometimes stay put
        // (back-to-back submissions that must queue).
        if rng.below(3) == 0 {
            now = now.after(VirtualDuration::from_nanos(rng.below(50_000_000)));
        }
        let bytes = rng.range(1, 4 << 20);
        let kind = if rng.below(2) == 0 {
            IoKind::Demand
        } else {
            IoKind::Prefetch
        };
        completions.push(device.submit_async(now, bytes, kind));
    }
    completions
}

/// FIFO service: completion (and start) times are monotone in submission
/// order, and every request's latency partitions exactly into queue wait
/// plus service time.
#[test]
fn completion_times_are_monotone_in_submission_order() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed + 1);
        let device = random_device(&mut rng);
        let completions = random_sequence(&mut rng, &device);
        for pair in completions.windows(2) {
            assert!(
                pair[1].started_at >= pair[0].done_at,
                "seed {seed}: the device serves one request at a time"
            );
            assert!(
                pair[1].done_at >= pair[0].done_at,
                "seed {seed}: FIFO completions must be monotone"
            );
        }
        for (i, c) in completions.iter().enumerate() {
            assert!(c.started_at >= c.submitted_at, "seed {seed} request {i}");
            assert!(c.done_at > c.started_at, "seed {seed} request {i}");
            assert_eq!(
                c.done_at.since(c.submitted_at),
                c.queue_wait() + c.service_time(),
                "seed {seed} request {i}: wait + service must partition the latency"
            );
            assert!(
                c.service_time() >= device.request_latency(),
                "seed {seed} request {i}: service time includes the fixed latency"
            );
        }
    }
}

/// `busy_until` never regresses, tracks the last completion, and an idle
/// device starts new requests immediately.
#[test]
fn busy_horizon_never_regresses() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed + 1_000);
        let device = random_device(&mut rng);
        let mut now = VirtualInstant::EPOCH;
        let mut last_busy = VirtualInstant::EPOCH;
        for _ in 0..rng.range(1, 80) {
            if rng.below(3) == 0 {
                now = now.after(VirtualDuration::from_nanos(rng.below(20_000_000)));
            }
            let was_idle = device.is_idle_at(now);
            let completion = device.submit_async(now, rng.range(1, 1 << 20), IoKind::Demand);
            let busy = device.busy_until();
            assert!(busy >= last_busy, "seed {seed}: busy_until regressed");
            assert_eq!(
                busy, completion.done_at,
                "seed {seed}: busy_until tracks the newest completion"
            );
            if was_idle {
                assert_eq!(
                    completion.queue_wait(),
                    VirtualDuration::ZERO,
                    "seed {seed}: an idle device starts immediately"
                );
            }
            last_busy = busy;
        }
        // Statistics survive a reset of the counters, the horizon does not move.
        device.reset_stats();
        assert_eq!(device.stats().requests, 0);
        assert_eq!(device.busy_until(), last_busy);
    }
}

/// The demand/prefetch split always sums to the totals, and the accumulated
/// wait/service nanoseconds equal the per-completion sums.
#[test]
fn stats_split_sums_to_totals() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed + 2_000);
        let device = random_device(&mut rng);
        let completions = random_sequence(&mut rng, &device);

        let stats = device.stats();
        assert_eq!(
            stats.demand_bytes + stats.prefetch_bytes,
            stats.bytes_read,
            "seed {seed}"
        );
        assert_eq!(
            stats.demand_requests + stats.prefetch_requests,
            stats.requests,
            "seed {seed}"
        );
        assert_eq!(stats.requests, completions.len() as u64, "seed {seed}");

        let bytes: u64 = completions.iter().map(|c| c.bytes).sum();
        assert_eq!(stats.bytes_read, bytes, "seed {seed}");
        let demand: u64 = completions
            .iter()
            .filter(|c| c.kind == IoKind::Demand)
            .map(|c| c.bytes)
            .sum();
        assert_eq!(stats.demand_bytes, demand, "seed {seed}");

        let wait: u64 = completions.iter().map(|c| c.queue_wait().as_nanos()).sum();
        let service: u64 = completions
            .iter()
            .map(|c| c.service_time().as_nanos())
            .sum();
        assert_eq!(stats.queue_wait_nanos, wait, "seed {seed}");
        assert_eq!(stats.service_nanos, service, "seed {seed}");
    }
}

/// The blocking wrappers (`submit`, `submit_pages`) agree with the
/// asynchronous primitive: same horizon arithmetic, demand accounting.
#[test]
fn blocking_wrappers_agree_with_submit_async() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed + 3_000);
        let a = random_device(&mut rng);
        let bw = a.bandwidth();
        let latency = a.request_latency();
        let b = IoDevice::new(bw, latency);
        let mut now = VirtualInstant::EPOCH;
        for _ in 0..rng.range(1, 40) {
            now = now.after(VirtualDuration::from_nanos(rng.below(5_000_000)));
            let bytes = rng.range(1, 2 << 20);
            let done_sync = a.submit(now, bytes);
            let done_async = b.submit_async(now, bytes, IoKind::Demand).done_at;
            assert_eq!(done_sync, done_async, "seed {seed}");
        }
        assert_eq!(a.stats(), b.stats(), "seed {seed}");
        assert_eq!(a.stats().prefetch_requests, 0, "seed {seed}");
    }
}
