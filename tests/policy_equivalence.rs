//! Cross-crate integration tests: every buffer-management policy must return
//! byte-identical query results on the same database state, including under
//! trickle updates, bulk appends and checkpoints.

use std::sync::Arc;

use scanshare::prelude::*;

fn build(policy: PolicyKind, storage: &Arc<Storage>) -> Arc<Engine> {
    let config = ScanShareConfig {
        page_size_bytes: 64 * 1024,
        chunk_tuples: 10_000,
        buffer_pool_bytes: 2 << 20,
        policy,
        ..Default::default()
    };
    Engine::new(Arc::clone(storage), config).expect("engine")
}

fn lineitem_storage(tuples: u64) -> (Arc<Storage>, TableId) {
    let storage = Storage::with_seed(64 * 1024, 10_000, 21);
    let table = scanshare::workload::microbench::setup_lineitem(&storage, tuples).unwrap();
    (storage, table)
}

fn q1(engine: &Arc<Engine>, table: TableId, rows: u64) -> Vec<(i64, i64, u64)> {
    let result = engine
        .query(table)
        .columns([
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
        ])
        .range(..rows)
        .filter(Predicate::new(6, CompareOp::Le, 10_200))
        .aggregate(AggrSpec::grouped(
            4,
            vec![Aggregate::Sum(0), Aggregate::Count],
        ))
        .parallelism(4)
        .run()
        .expect("q1");
    result
        .iter()
        .map(|(k, g)| (*k, g.accumulators[0], g.count))
        .collect()
}

#[test]
fn all_policies_agree_on_a_read_only_workload() {
    let (storage, table) = lineitem_storage(120_000);
    let mut reference = None;
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Pbm,
        PolicyKind::Opt,
        PolicyKind::CScan,
    ] {
        let engine = build(policy, &storage);
        let rows = engine.visible_rows(table).unwrap();
        let answer = q1(&engine, table, rows);
        assert!(!answer.is_empty());
        match &reference {
            None => reference = Some(answer),
            Some(expected) => assert_eq!(expected, &answer, "policy {policy} diverged"),
        }
        // Every policy must actually have performed I/O through its manager.
        assert!(engine.buffer_stats().io_bytes > 0, "{policy} did no I/O");
    }
}

#[test]
fn all_policies_agree_after_updates_appends_and_checkpoint() {
    let (storage, table) = lineitem_storage(60_000);

    // Apply trickle updates through one engine (the PDT is shared via storage
    // state? No: PDTs are engine-local, so apply them via a single engine and
    // checkpoint to make them durable for all engines).
    let writer = build(PolicyKind::Pbm, &storage);
    for i in 0..50 {
        writer.delete_row(table, i * 7).unwrap();
    }
    for i in 0..20 {
        writer
            .insert_row(table, i * 11, vec![1, 2, 3, 4, 0, 1, 9_000 + i as i64])
            .unwrap();
    }
    for i in 0..30 {
        writer.update_value(table, i * 13, 1, -5).unwrap();
    }
    let visible_before = writer.visible_rows(table).unwrap();
    let expected = q1(&writer, table, visible_before);

    // Checkpoint so the merged state becomes the stable image every engine sees.
    let snapshot = writer.checkpoint(table).unwrap();
    assert_eq!(snapshot.stable_tuples(), visible_before);

    // A bulk append on top of the checkpointed image.
    let mut tx = storage.begin_append(table).unwrap();
    tx.append_rows(&[
        vec![5; 100],
        vec![50; 100],
        vec![1; 100],
        vec![1; 100],
        vec![0; 100],
        vec![1; 100],
        vec![9_100; 100],
    ])
    .unwrap();
    tx.commit().unwrap();

    let mut reference = None;
    for policy in [PolicyKind::Lru, PolicyKind::Pbm, PolicyKind::CScan] {
        let engine = build(policy, &storage);
        let rows = engine.visible_rows(table).unwrap();
        assert_eq!(rows, visible_before + 100);
        let answer = q1(&engine, table, rows);
        match &reference {
            None => reference = Some(answer),
            Some(exp) => assert_eq!(exp, &answer, "policy {policy} diverged after updates"),
        }
    }
    // The checkpoint must have changed the answer relative to the pre-update
    // state in a predictable way (more rows with the appended shipdate 9100).
    let post = reference.unwrap();
    let total_rows: u64 = post.iter().map(|(_, _, c)| c).sum();
    let expected_rows: u64 = expected.iter().map(|(_, _, c)| c).sum();
    assert_eq!(total_rows, expected_rows + 100);
}

#[test]
fn scan_and_cscan_coexist_on_the_same_abm_engine() {
    let (storage, table) = lineitem_storage(50_000);
    let engine = build(PolicyKind::CScan, &storage);
    // In-order CScan (drop-in Scan replacement) and a normal out-of-order
    // CScan running against the same ABM must both return the full table.
    let mut in_order = engine
        .scan_in_order(
            table,
            &["l_quantity", "l_shipdate"],
            TupleRange::new(0, 50_000),
        )
        .unwrap();
    let mut out_of_order = engine
        .scan(
            table,
            &["l_quantity", "l_shipdate"],
            TupleRange::new(0, 50_000),
        )
        .unwrap();

    let mut rows_in_order = 0usize;
    let mut rows_out_of_order = 0usize;
    loop {
        let a = in_order.next_batch().unwrap();
        let b = out_of_order.next_batch().unwrap();
        if let Some(batch) = &a {
            rows_in_order += batch.len();
        }
        if let Some(batch) = &b {
            rows_out_of_order += batch.len();
        }
        if a.is_none() && b.is_none() {
            break;
        }
    }
    assert_eq!(rows_in_order, 50_000);
    assert_eq!(rows_out_of_order, 50_000);
}
